"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with one ``except`` clause while still
letting programming errors (``TypeError`` and friends) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly (e.g. scheduling an
    event in the past, or running a stopped engine)."""


class NetworkError(ReproError):
    """Malformed packet, unroutable address, or misconfigured topology."""


class CodecError(NetworkError):
    """A TCP options block could not be encoded or decoded."""


class PuzzleError(ReproError):
    """Puzzle construction, solving, or verification failed structurally
    (distinct from a well-formed solution that is simply *wrong*)."""


class GameError(ReproError):
    """The game-theoretic model was given parameters outside its domain
    (e.g. an infeasible difficulty, or a load exceeding the service rate)."""


class ExperimentError(ReproError):
    """An experiment configuration is inconsistent."""
