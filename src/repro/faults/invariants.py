"""Runtime invariant checker — an engine tap that audits the stack mid-run.

Fault injection is only useful if broken bookkeeping is *caught*, not
averaged away. :class:`InvariantChecker` runs as a periodic engine event
on the server listener and asserts the handshake state machine and queue
accounting after every tick:

* occupancy never exceeds the configured backlog (listen and accept);
* queue flows conserve: every admitted entry is still queued or was
  completed, expired, or reclaimed — nothing leaks, nothing double-counts;
* every live half-open TCB has an armed retransmit timer and is younger
  than the worst-case backoff schedule (no immortal half-opens);
* the SNMP counters agree with the listener's own statistics (the two
  bookkeeping systems are updated at different sites — divergence means
  an instrumentation path was missed);
* SYN-cache occupancy respects capacity and its insert/complete/evict/
  expire accounting balances.

A failed check raises :class:`InvariantViolation` carrying the host, the
simulation time, and (when tracing is enabled) the most recent handshake
spans — enough context to replay the offending window. The exception is
picklable so it survives the trip back through a process-pool worker.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ReproError
from repro.tcp.constants import MAX_SYNACK_TIMEOUT

#: Safety factor over the deterministic backoff sum: per-arm jitter is at
#: most ``timeout_scale (<= 1.3) * 1.1 = 1.43``; 1.5 plus a one-second
#: margin absorbs event-ordering slack without masking real leaks.
_LIFETIME_SLACK = 1.5
_LIFETIME_MARGIN = 1.0


def _rebuild_violation(invariant: str, detail: str, host: str,
                       sim_time: float,
                       spans: Tuple[str, ...]) -> "InvariantViolation":
    """Unpickle helper (module-level so pickle can import it)."""
    return InvariantViolation(invariant, detail, host=host,
                              sim_time=sim_time, spans=spans)


class InvariantViolation(ReproError):
    """A runtime invariant failed mid-simulation."""

    def __init__(self, invariant: str, detail: str, host: str = "",
                 sim_time: float = 0.0,
                 spans: Tuple[str, ...] = ()) -> None:
        self.invariant = invariant
        self.detail = detail
        self.host = host
        self.sim_time = sim_time
        self.spans = tuple(spans)
        message = (f"invariant {invariant!r} violated at "
                   f"t={sim_time:.6f}s on {host or '?'}: {detail}")
        if self.spans:
            message += ("\nmost recent handshake spans:\n"
                        + "\n".join(f"  {span}" for span in self.spans))
        super().__init__(message)

    def __reduce__(self):
        # Default pickling would re-call __init__ with the full rendered
        # message as `invariant`; rebuild from the structured fields so a
        # violation raised inside a pool worker arrives intact.
        return (_rebuild_violation,
                (self.invariant, self.detail, self.host, self.sim_time,
                 self.spans))


class InvariantChecker:
    """Periodic engine tap asserting listener/queue invariants.

    ``start()`` schedules a self-rechaining tick every *interval*
    simulation seconds; ``final_check()`` runs once more after the run
    (call it *before* ``engine.drain()`` so timer state is still live).
    """

    def __init__(self, listener, interval: float = 0.25,
                 tracer=None) -> None:
        self.listener = listener
        self.engine = listener.host.engine
        self.interval = interval
        self.tracer = tracer
        self.checks_run = 0
        self._timer = None
        config = listener.config
        backoff_sum = sum(
            min(config.synack_timeout * (2 ** i), MAX_SYNACK_TIMEOUT)
            for i in range(config.synack_retries + 1))
        self.max_half_open_lifetime = (
            _LIFETIME_SLACK * backoff_sum + _LIFETIME_MARGIN)
        self._checks = (
            ("listen-occupancy", self._check_listen_occupancy),
            ("accept-occupancy", self._check_accept_occupancy),
            ("listen-conservation", self._check_listen_conservation),
            ("accept-conservation", self._check_accept_conservation),
            ("half-open-timers", self._check_half_open_timers),
            ("half-open-lifetime", self._check_half_open_lifetime),
            ("mib-agreement", self._check_mib_agreement),
            ("syncache-accounting", self._check_syncache),
        )

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.interval <= 0:
            return
        self._timer = self.engine.schedule(self.interval, self._tick)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        self.check_now()
        self._timer = self.engine.schedule(self.interval, self._tick)

    # ------------------------------------------------------------------
    def check_now(self) -> None:
        """Run every invariant once; raises on the first failure."""
        self.checks_run += 1
        for name, check in self._checks:
            problem = check()
            if problem is not None:
                raise InvariantViolation(
                    name, problem, host=self.listener.host.name,
                    sim_time=self.engine.now, spans=self._recent_spans())

    def final_check(self) -> None:
        """One last audit at end of run (before the engine drains)."""
        self.stop()
        self.check_now()

    # ------------------------------------------------------------------
    def _recent_spans(self) -> Tuple[str, ...]:
        tracer = self.tracer
        if tracer is None or not getattr(tracer, "enabled", False):
            return ()
        from repro.obs.spans import build_spans

        rendered: List[str] = []
        for span in build_spans(tracer)[-3:]:
            phases = ", ".join(p.name for p in span.phases) or "-"
            rendered.append(
                f"flow={span.flow} outcome={span.outcome} "
                f"t=[{span.start:.6f}, {span.end:.6f}] phases: {phases}")
        return tuple(rendered)

    # ------------------------------------------------------------------
    def _check_listen_occupancy(self) -> Optional[str]:
        queue = self.listener.listen_queue
        if len(queue) > queue.backlog:
            return (f"listen queue holds {len(queue)} entries, "
                    f"backlog is {queue.backlog}")
        return None

    def _check_accept_occupancy(self) -> Optional[str]:
        queue = self.listener.accept_queue
        if len(queue) > queue.backlog:
            return (f"accept queue holds {len(queue)} entries, "
                    f"backlog is {queue.backlog}")
        return None

    def _check_listen_conservation(self) -> Optional[str]:
        queue = self.listener.listen_queue
        accounted = (queue.completed + queue.expired
                     + queue.pressure_evicted + len(queue))
        if queue.admitted != accounted:
            return (f"admitted {queue.admitted} != completed "
                    f"{queue.completed} + expired {queue.expired} + "
                    f"reclaimed {queue.pressure_evicted} + live "
                    f"{len(queue)}")
        return None

    def _check_accept_conservation(self) -> Optional[str]:
        queue = self.listener.accept_queue
        accounted = (queue.accepted + queue.pressure_evicted + len(queue))
        if queue.enqueued != accounted:
            return (f"enqueued {queue.enqueued} != accepted "
                    f"{queue.accepted} + reclaimed "
                    f"{queue.pressure_evicted} + live {len(queue)}")
        return None

    def _check_half_open_timers(self) -> Optional[str]:
        for tcb in self.listener.listen_queue.values():
            timer = tcb.timer
            if timer is None or getattr(timer, "cancelled", False):
                return (f"half-open {tcb.flow} has no armed SYN-ACK "
                        f"retransmit timer (it would never expire)")
        return None

    def _check_half_open_lifetime(self) -> Optional[str]:
        now = self.engine.now
        bound = self.max_half_open_lifetime
        for tcb in self.listener.listen_queue.values():
            age = now - tcb.created_at
            if age > bound:
                return (f"half-open {tcb.flow} is {age:.3f}s old, "
                        f"worst-case backoff schedule allows "
                        f"{bound:.3f}s — leaked TCB")
        return None

    def _check_mib_agreement(self) -> Optional[str]:
        from repro.obs.counters import established_total

        stats = self.listener.stats
        mib = self.listener.mib
        pairs = (
            ("Estab*", established_total(mib), stats.established_total()),
            ("HalfOpenExpired", mib["HalfOpenExpired"],
             stats.half_open_expired),
            ("ListenOverflows", mib["ListenOverflows"],
             stats.syn_drops_queue_full),
            ("AcceptOverflows", mib["AcceptOverflows"],
             stats.accept_drops_full),
            ("AdmissionDrops", mib["AdmissionDrops"],
             stats.syns_rejected_admission),
            ("SynCacheCookieFallback", mib["SynCacheCookieFallback"],
             stats.synacks_cookie_fallback),
        )
        for name, mib_value, stat_value in pairs:
            if mib_value != stat_value:
                return (f"SNMP counter {name} = {mib_value} but listener "
                        f"stats say {stat_value} — an instrumentation "
                        f"site diverged")
        return None

    def _check_syncache(self) -> Optional[str]:
        cache = self.listener.config.syncache
        if cache is None:
            return None
        live = len(cache)
        recount = cache.occupancy_recount()
        if live != recount:
            return (f"syncache incremental occupancy {live} != bucket "
                    f"recount {recount} — the O(1) len drifted")
        if live > cache.capacity:
            return (f"syncache holds {live} records, capacity is "
                    f"{cache.capacity}")
        if live > cache.max_entries:
            return (f"syncache holds {live} records, memory budget "
                    f"allows {cache.max_entries}")
        accounted = (cache.completions + cache.evictions + cache.expired
                     + live)
        if cache.insertions != accounted:
            return (f"syncache insertions {cache.insertions} != "
                    f"completions {cache.completions} + evictions "
                    f"{cache.evictions} + expired {cache.expired} + "
                    f"live {live}")
        lifetime = getattr(self.listener.config, "syncache_lifetime", None)
        if lifetime:
            oldest = cache.oldest_created_at()
            # Entries overstay by at most one reaper sweep (lifetime/4).
            bound = lifetime * 1.25 + _LIFETIME_MARGIN
            if oldest is not None and self.engine.now - oldest > bound:
                return (f"syncache record is {self.engine.now - oldest:.3f}s "
                        f"old, lifetime bound is {bound:.3f}s — the "
                        f"reaper is not running")
        return None
