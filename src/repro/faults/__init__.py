"""Deterministic fault injection and runtime invariant checking.

The package splits into three layers:

* :mod:`repro.faults.schedule` — the declarative, hashable fault plan
  (:class:`FaultSchedule` and its per-class entries);
* :mod:`repro.faults.injectors` — :class:`FaultInjector`, which wires a
  schedule into a built scenario's links, network, engine clock, queues,
  and puzzle secret;
* :mod:`repro.faults.invariants` — :class:`InvariantChecker`, the
  periodic engine tap that audits queue accounting and the handshake
  state machine mid-run, raising :class:`InvariantViolation`.

:mod:`repro.faults.chaos` (imported on demand, not here — it pulls in
the full experiments stack) packages the canonical fault matrix behind
``tcp-puzzles chaos``.
"""

from repro.faults.injectors import FaultInjector, FaultStats
from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.faults.schedule import (ClockSkew, FaultSchedule, LinkFlap,
                                   LossBurst, MemoryPressure,
                                   OptionCorruption, SecretRotation)

__all__ = [
    "ClockSkew",
    "FaultInjector",
    "FaultSchedule",
    "FaultStats",
    "InvariantChecker",
    "InvariantViolation",
    "LinkFlap",
    "LossBurst",
    "MemoryPressure",
    "OptionCorruption",
    "SecretRotation",
]
