"""Seeded fault injectors — turning a :class:`FaultSchedule` into events.

One :class:`FaultInjector` owns the whole schedule. ``install()`` wires
each fault class into the layer it perturbs:

* loss bursts / link flaps attach a classifier to matching
  :class:`~repro.net.link.Link` objects (consulted per offered frame);
* option corruption hooks :attr:`Network.packet_fault` and rewrites
  puzzle option blocks in flight (byte lengths preserved, so wire-size
  accounting stays exact);
* clock skews schedule engine events that move one host's wall-clock
  offset (:meth:`Engine.set_clock_offset`);
* memory pressure schedules capacity shrinks/restores through
  :meth:`Listener.apply_memory_pressure`;
* secret rotations call :meth:`SecretKey.rotate` mid-run.

Determinism: every random decision draws from ``RngStreams(seed)``
streams named ``faults/...`` — disjoint from the host streams by
construction — so the same ``(seed, schedule)`` pair replays the exact
fault sequence, and an empty schedule leaves the simulation untouched
(no stream is even created).
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from fnmatch import fnmatch
from typing import Dict, List, Optional, Tuple

from repro.faults.schedule import (FaultSchedule, LinkFlap, LossBurst,
                                   OptionCorruption)
from repro.net.packet import Packet, flip_bit
from repro.sim.rng import RngStreams


class FaultStats:
    """Counter bag shared by every injector of one run."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: Dict[str, int] = {}

    def incr(self, name: str, n: int = 1) -> None:
        values = self._values
        values[name] = values.get(name, 0) + n

    def get(self, name: str) -> int:
        return self._values.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        return dict(sorted(self._values.items()))


class LinkFault:
    """Per-link flap/burst classifier (duck-typed ``link.fault``).

    The link consults :meth:`classify` once per offered frame *before*
    queueing. ``"down"`` models an interface outage (the frame vanishes,
    no airtime), ``"loss"`` models wire loss (the frame burns its
    serialization slot, then dies) — matching how a real NIC versus a
    noisy medium would behave.
    """

    __slots__ = ("flaps", "bursts", "rng", "stats", "_bad")

    def __init__(self, flaps: Tuple[LinkFlap, ...],
                 bursts: Tuple[LossBurst, ...], rng,
                 stats: FaultStats) -> None:
        self.flaps = flaps
        self.bursts = bursts
        self.rng = rng
        self.stats = stats
        self._bad = False  # Gilbert–Elliott state, shared across bursts

    def classify(self, now: float) -> Optional[str]:
        for flap in self.flaps:
            if flap.start <= now < flap.end:
                self.stats.incr("link_flap_drops")
                return "down"
        for burst in self.bursts:
            if burst.start <= now < burst.end:
                rng = self.rng
                if self._bad:
                    if rng.random() < burst.p_bad_good:
                        self._bad = False
                elif rng.random() < burst.p_good_bad:
                    self._bad = True
                loss = burst.loss_bad if self._bad else burst.loss_good
                if loss > 0.0 and rng.random() < loss:
                    self.stats.incr("link_burst_losses")
                    return "loss"
                return None
        return None


class OptionCorruptor:
    """Bit-flips puzzle option blocks on packets entering the network."""

    __slots__ = ("windows", "rng", "stats")

    def __init__(self, windows: Tuple[OptionCorruption, ...], rng,
                 stats: FaultStats) -> None:
        self.windows = windows
        self.rng = rng
        self.stats = stats

    def __call__(self, now: float, packet: Packet) -> None:
        options = packet.options
        if options.challenge is None and options.solution is None:
            return
        for window in self.windows:
            if window.start <= now < window.end:
                if self.rng.random() < window.probability:
                    self._corrupt(packet)
                return

    def _corrupt(self, packet: Packet) -> None:
        options = packet.options
        bit = self.rng.getrandbits(16)
        if options.solution is not None:
            solution = options.solution
            flipped = list(solution.solutions)
            flipped[0] = flip_bit(flipped[0], bit)
            options.solution = dc_replace(solution, solutions=flipped)
            self.stats.incr("corrupted_solutions")
        else:
            challenge = options.challenge
            options.challenge = dc_replace(
                challenge, preimage=flip_bit(challenge.preimage, bit))
            self.stats.incr("corrupted_challenges")


class FaultInjector:
    """Installs a :class:`FaultSchedule` into a built scenario."""

    def __init__(self, schedule: FaultSchedule, seed: int = 0) -> None:
        self.schedule = schedule
        self.seed = seed
        self.stats = FaultStats()
        self._streams = RngStreams(seed)
        self._pressure_originals: Dict[int, Tuple] = {}

    # ------------------------------------------------------------------
    def install(self, engine, network, listener=None) -> None:
        """Wire every scheduled fault into the given layers.

        *listener* may be None when only network-level faults are wanted
        (memory pressure and secret rotation are then skipped).
        """
        schedule = self.schedule
        if schedule.loss_bursts or schedule.link_flaps:
            self._install_link_faults(network)
        if schedule.corruption:
            network.packet_fault = OptionCorruptor(
                schedule.corruption,
                self._streams.get("faults/corruption"), self.stats)
        for skew in schedule.clock_skews:
            engine.schedule_at(skew.at, self._apply_skew, engine, skew)
        if listener is not None:
            for index, pressure in enumerate(schedule.memory_pressure):
                engine.schedule_at(pressure.start, self._apply_pressure,
                                   listener, pressure, index)
                engine.schedule_at(pressure.end, self._restore_pressure,
                                   listener, index)
            for rotation in schedule.secret_rotations:
                for at in rotation.times:
                    engine.schedule_at(at, self._rotate_secret,
                                       listener, at)

    # ------------------------------------------------------------------
    def _install_link_faults(self, network) -> None:
        schedule = self.schedule
        for link in network.topology.all_links():
            flaps = tuple(f for f in schedule.link_flaps
                          if fnmatch(link.name, f.links))
            bursts = tuple(b for b in schedule.loss_bursts
                           if fnmatch(link.name, b.links))
            if not flaps and not bursts:
                continue
            link.fault = LinkFault(
                flaps, bursts,
                self._streams.get(f"faults/link/{link.name}"), self.stats)

    # ------------------------------------------------------------------
    def _apply_skew(self, engine, skew) -> None:
        engine.set_clock_offset(skew.host, skew.offset)
        self.stats.incr("clock_skew_steps")
        if skew.jitter > 0:
            rng = self._streams.get(f"faults/clock/{skew.host}")
            engine.schedule(skew.interval, self._rejitter_skew,
                            engine, skew, rng)

    def _rejitter_skew(self, engine, skew, rng) -> None:
        offset = skew.offset + rng.uniform(-skew.jitter, skew.jitter)
        engine.set_clock_offset(skew.host, offset)
        self.stats.incr("clock_jitter_redraws")
        engine.schedule(skew.interval, self._rejitter_skew,
                        engine, skew, rng)

    # ------------------------------------------------------------------
    def _apply_pressure(self, listener, pressure, index: int) -> None:
        listen_queue = listener.listen_queue
        accept_queue = listener.accept_queue
        syncache = listener.config.syncache
        self._pressure_originals[index] = (
            listen_queue.backlog, accept_queue.backlog,
            syncache.bucket_limit if syncache is not None else None)
        kwargs = {}
        if pressure.listen_factor < 1.0:
            kwargs["listen_backlog"] = max(
                1, int(listen_queue.backlog * pressure.listen_factor))
        if pressure.accept_factor < 1.0:
            kwargs["accept_backlog"] = max(
                1, int(accept_queue.backlog * pressure.accept_factor))
        if pressure.syncache_factor < 1.0 and syncache is not None:
            kwargs["syncache_limit"] = max(
                1, int(syncache.bucket_limit * pressure.syncache_factor))
        if not kwargs:
            return
        evicted = listener.apply_memory_pressure(**kwargs)
        self.stats.incr("pressure_events")
        for queue_name, count in evicted.items():
            if count:
                self.stats.incr(f"pressure_evicted_{queue_name}", count)

    def _restore_pressure(self, listener, index: int) -> None:
        original = self._pressure_originals.pop(index, None)
        if original is None:
            return
        listen_backlog, accept_backlog, bucket_limit = original
        listener.apply_memory_pressure(
            listen_backlog=listen_backlog, accept_backlog=accept_backlog,
            syncache_limit=bucket_limit)
        self.stats.incr("pressure_restores")

    # ------------------------------------------------------------------
    def _rotate_secret(self, listener, at: float) -> None:
        listener.config.scheme.secret.rotate(now=at)
        self.stats.incr("secret_rotations")

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        """Name-sorted fault event counts (what the summary exports)."""
        return self.stats.snapshot()
