"""The chaos harness: a canonical fault matrix and its resilience report.

``tcp-puzzles chaos`` runs the same scenario once per fault class (plus a
fault-free baseline), with the runtime invariant checker attached to
every cell, and reports how much each degraded condition costs in client
goodput, handshake completion, and latency. The cells are ordinary
:class:`~repro.runner.SweepRunner` cells — cached, parallel-safe, and
keyed by ``(config, schedule)`` — so re-running a matrix after a code
change only recomputes what the change invalidated.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.faults.schedule import (ClockSkew, FaultSchedule, LinkFlap,
                                   LossBurst, MemoryPressure,
                                   OptionCorruption, SecretRotation)

#: Histogram the latency column reads (recorded by the benign clients).
LATENCY_HIST = "handshake_latency.client"


@dataclass(frozen=True)
class ChaosSpec:
    """One chaos cell: a scenario config plus the faults to inject.

    Frozen and built from hashable parts, so it canonicalizes into a
    sweep cache key exactly like a plain config does.
    """

    config: object                      # ScenarioConfig
    schedule: FaultSchedule
    invariant_interval: float = 0.25


def run_chaos_summary(spec: ChaosSpec):
    """The chaos sweep cell: one faulted scenario run, summarized.

    Module-level and driven entirely by the picklable spec, per the
    :mod:`repro.runner` determinism contract. An invariant violation
    propagates — a chaos matrix with broken bookkeeping must fail loud,
    not average the corruption into a summary row.
    """
    from repro.experiments.scenario import Scenario
    from repro.experiments.summary import summarize

    scenario = Scenario(spec.config, faults=spec.schedule,
                        invariant_interval=spec.invariant_interval)
    return summarize(scenario.run())


def default_fault_matrix(config) -> "OrderedDict[str, FaultSchedule]":
    """One schedule per fault class, windowed to the attack interval.

    The baseline (empty schedule) comes first — the report computes
    degradation relative to it.
    """
    start, end = config.attack_start, config.attack_end
    if end <= start:
        start, end = 0.0, config.duration
    span = end - start
    mid = (start + end) / 2.0
    matrix: "OrderedDict[str, FaultSchedule]" = OrderedDict()
    matrix["baseline"] = FaultSchedule()
    matrix["loss-burst"] = FaultSchedule(
        loss_bursts=(LossBurst(start, end),))
    matrix["link-flap"] = FaultSchedule(
        link_flaps=(LinkFlap(mid - span / 8, mid + span / 8,
                             links="server->r1"),))
    matrix["corruption"] = FaultSchedule(
        corruption=(OptionCorruption(start, end, probability=0.3),))
    # A +5 s wall-clock step dwarfs the scheme's replay window, so every
    # in-flight challenge goes stale at the step; jitter keeps it noisy.
    matrix["clock-skew"] = FaultSchedule(
        clock_skews=(ClockSkew(host="server", at=mid, offset=5.0,
                               jitter=0.5),))
    matrix["memory-pressure"] = FaultSchedule(
        memory_pressure=(MemoryPressure(start, end, listen_factor=0.25,
                                        accept_factor=0.5),))
    matrix["secret-rotation"] = FaultSchedule(
        secret_rotations=(SecretRotation(times=(start, mid, end)),))
    return matrix


#: Eviction policy exercised by each sustained-overload row.
OVERLOAD_POLICIES = OrderedDict((
    ("overload-oldest", "oldest-per-bucket"),
    ("overload-random", "random-evict"),
    ("overload-reject", "reject-new"),
))


def overload_matrix(config, invariant_interval: float = 0.25,
                    ) -> "OrderedDict[str, ChaosSpec]":
    """Sustained-overload cells: one 10x-capacity SYN flood per policy.

    Every row runs the full graceful-degradation ladder — a small
    memory-budgeted sharded syncache (256-entry budget against a
    multi-thousand-SYN/s spoofed flood), syncookie fallback above the
    high watermark, admission control, and the overload watchdog — with
    an empty fault schedule: the *flood itself* is the fault. The row
    label selects the overflow policy under test.
    """
    from dataclasses import replace

    from repro.tcp.constants import DefenseMode
    from repro.tcp.overload import OverloadConfig
    from repro.tcp.syncache import ENTRY_BYTES

    matrix: "OrderedDict[str, ChaosSpec]" = OrderedDict()
    for label, policy in OVERLOAD_POLICIES.items():
        overload = OverloadConfig(
            syncache_buckets=64,
            syncache_bucket_limit=8,
            syncache_policy=policy,
            syncache_memory_budget=256 * ENTRY_BYTES,
            syncache_lifetime=0.5,
            high_watermark=0.85,
            low_watermark=0.60,
            # Generous global bucket (never throttles the benign load);
            # the per-prefix tiers clamp sources the SpaceSaving sketch
            # flags as heavy.
            syn_rate_limit=10_000.0,
            syn_burst=256.0,
            heavy_hitter_slots=16,
            heavy_hitter_rate=100.0,
            heavy_hitter_min=256,
            prefix_bits=16,
            watchdog_interval=0.25,
            # The cookie fallback caps occupancy at the high watermark
            # (0.85), so the OVERLOAD threshold must sit below it or the
            # watchdog plateaus in PRESSURE forever.
            pressure_occupancy=0.50,
            overload_occupancy=0.80,
            recovery_hold=1.0,
        )
        cell = replace(config, defense=DefenseMode.SYNCACHE,
                       attack_style="syn", attack_enabled=True,
                       overload=overload)
        matrix[label] = ChaosSpec(cell, FaultSchedule(),
                                  invariant_interval=invariant_interval)
    return matrix


def sustained_overload_verdict(summary,
                               latency_bound_s: float = 5.0,
                               ) -> Dict[str, object]:
    """Pass/fail checks for one sustained-overload row.

    A row passes when the watchdog actually visited OVERLOAD and walked
    back to NORMAL, the memory budget held at peak, the benign p99
    handshake latency stayed bounded, and every established connection
    is MIB-attributed to exactly one serving path (syncache or the
    cookie fallback — never the stock or puzzle paths, which a SYNCACHE
    defense must not take).
    """
    snapshot = summary.overload or {}
    transitions = snapshot.get("transitions", {})
    reached = any(key.endswith("->OVERLOAD") for key in transitions)
    recovered = snapshot.get("state") == "NORMAL"
    syncache = snapshot.get("syncache") or {}
    budget = syncache.get("memory_budget")
    peak_bytes = snapshot.get("peak_occupancy_bytes", 0)
    memory_bounded = budget is None or peak_bytes <= budget
    hist = summary.histograms.get(LATENCY_HIST)
    p99 = hist.quantile(0.99) if hist is not None and hist.count else None
    latency_bounded = p99 is not None and p99 <= latency_bound_s
    mib = summary.counters.get("server", {})
    estab_cache = mib.get("EstabSynCache", 0)
    estab_cookie = mib.get("EstabCookie", 0)
    stray = mib.get("EstabNormal", 0) + mib.get("EstabPuzzle", 0)
    attributed = (stray == 0
                  and estab_cache + estab_cookie
                  == summary.listener_stats.established_total())
    checks = {
        "reached_overload": reached,
        "recovered_to_normal": recovered,
        "memory_bounded": memory_bounded,
        "latency_bounded": latency_bounded,
        "paths_attributed": attributed,
    }
    return {
        "ok": all(checks.values()),
        "checks": checks,
        "peak_occupancy_bytes": peak_bytes,
        "memory_budget": budget,
        "latency_p99_s": p99,
        "estab_syncache": estab_cache,
        "estab_cookie_fallback": estab_cookie,
        "cookie_fallbacks": snapshot.get("cookie_fallbacks", 0),
        "rejected": syncache.get("rejected", 0),
        "transitions": dict(transitions),
    }


def render_overload_report(labels: Sequence[str],
                           verdicts: Sequence[Dict[str, object]]) -> str:
    """Monospace sustained-overload verdict table."""
    from repro.experiments.report import render_table

    headers = ("cell", "verdict", "peak bytes", "budget", "p99 s",
               "estab cache", "estab cookie", "rejected")
    rows = []
    for label, verdict in zip(labels, verdicts):
        failed = [name for name, ok in verdict["checks"].items()
                  if not ok]
        status = "PASS" if verdict["ok"] else "FAIL:" + ",".join(failed)
        rows.append((label, status, verdict["peak_occupancy_bytes"],
                     verdict["memory_budget"], verdict["latency_p99_s"],
                     verdict["estab_syncache"],
                     verdict["estab_cookie_fallback"],
                     verdict["rejected"]))
    return render_table(headers, rows)


# ----------------------------------------------------------------------
def _latency_p95_ms(summary) -> float:
    hist = summary.histograms.get(LATENCY_HIST)
    if hist is None or not hist.count:
        return float("nan")
    return hist.quantile(0.95) * 1000.0


def resilience_report(labels: Sequence[str],
                      summaries: Sequence) -> List[Dict[str, object]]:
    """Per-fault-class degradation rows; ``labels[0]`` is the baseline."""
    rows: List[Dict[str, object]] = []
    baseline_goodput: Optional[float] = None
    baseline_p95: Optional[float] = None
    for label, summary in zip(labels, summaries):
        goodput = summary.client_throughput_during_attack().mean
        p95_ms = _latency_p95_ms(summary)
        if baseline_goodput is None:
            baseline_goodput, baseline_p95 = goodput, p95_ms
        goodput_drop = float("nan")
        if baseline_goodput and not math.isnan(goodput):
            goodput_drop = 100.0 * (1.0 - goodput / baseline_goodput)
        latency_increase = float("nan")
        if (baseline_p95 and not math.isnan(p95_ms)
                and not math.isnan(baseline_p95)):
            latency_increase = 100.0 * (p95_ms / baseline_p95 - 1.0)
        fault_stats = summary.fault_stats or {}
        rows.append({
            "fault": label,
            "goodput_mbps": goodput,
            "goodput_drop_pct": goodput_drop,
            "completion_pct": summary.client_completion_percent(),
            "latency_p95_ms": p95_ms,
            "latency_increase_pct": latency_increase,
            "invariant_checks": summary.invariant_checks,
            "fault_events": sum(fault_stats.values()),
            "fault_stats": fault_stats,
        })
    return rows


def render_resilience(rows: Sequence[Dict[str, object]]) -> str:
    """Monospace resilience table for terminal output."""
    from repro.experiments.report import render_table

    headers = ("fault", "goodput Mb/s", "drop %", "completion %",
               "p95 ms", "p95 +%", "inv checks", "fault events")
    return render_table(headers, [
        (row["fault"], row["goodput_mbps"], row["goodput_drop_pct"],
         row["completion_pct"], row["latency_p95_ms"],
         row["latency_increase_pct"], row["invariant_checks"],
         row["fault_events"])
        for row in rows
    ])
