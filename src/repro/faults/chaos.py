"""The chaos harness: a canonical fault matrix and its resilience report.

``tcp-puzzles chaos`` runs the same scenario once per fault class (plus a
fault-free baseline), with the runtime invariant checker attached to
every cell, and reports how much each degraded condition costs in client
goodput, handshake completion, and latency. The cells are ordinary
:class:`~repro.runner.SweepRunner` cells — cached, parallel-safe, and
keyed by ``(config, schedule)`` — so re-running a matrix after a code
change only recomputes what the change invalidated.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.faults.schedule import (ClockSkew, FaultSchedule, LinkFlap,
                                   LossBurst, MemoryPressure,
                                   OptionCorruption, SecretRotation)

#: Histogram the latency column reads (recorded by the benign clients).
LATENCY_HIST = "handshake_latency.client"


@dataclass(frozen=True)
class ChaosSpec:
    """One chaos cell: a scenario config plus the faults to inject.

    Frozen and built from hashable parts, so it canonicalizes into a
    sweep cache key exactly like a plain config does.
    """

    config: object                      # ScenarioConfig
    schedule: FaultSchedule
    invariant_interval: float = 0.25


def run_chaos_summary(spec: ChaosSpec):
    """The chaos sweep cell: one faulted scenario run, summarized.

    Module-level and driven entirely by the picklable spec, per the
    :mod:`repro.runner` determinism contract. An invariant violation
    propagates — a chaos matrix with broken bookkeeping must fail loud,
    not average the corruption into a summary row.
    """
    from repro.experiments.scenario import Scenario
    from repro.experiments.summary import summarize

    scenario = Scenario(spec.config, faults=spec.schedule,
                        invariant_interval=spec.invariant_interval)
    return summarize(scenario.run())


def default_fault_matrix(config) -> "OrderedDict[str, FaultSchedule]":
    """One schedule per fault class, windowed to the attack interval.

    The baseline (empty schedule) comes first — the report computes
    degradation relative to it.
    """
    start, end = config.attack_start, config.attack_end
    if end <= start:
        start, end = 0.0, config.duration
    span = end - start
    mid = (start + end) / 2.0
    matrix: "OrderedDict[str, FaultSchedule]" = OrderedDict()
    matrix["baseline"] = FaultSchedule()
    matrix["loss-burst"] = FaultSchedule(
        loss_bursts=(LossBurst(start, end),))
    matrix["link-flap"] = FaultSchedule(
        link_flaps=(LinkFlap(mid - span / 8, mid + span / 8,
                             links="server->r1"),))
    matrix["corruption"] = FaultSchedule(
        corruption=(OptionCorruption(start, end, probability=0.3),))
    # A +5 s wall-clock step dwarfs the scheme's replay window, so every
    # in-flight challenge goes stale at the step; jitter keeps it noisy.
    matrix["clock-skew"] = FaultSchedule(
        clock_skews=(ClockSkew(host="server", at=mid, offset=5.0,
                               jitter=0.5),))
    matrix["memory-pressure"] = FaultSchedule(
        memory_pressure=(MemoryPressure(start, end, listen_factor=0.25,
                                        accept_factor=0.5),))
    matrix["secret-rotation"] = FaultSchedule(
        secret_rotations=(SecretRotation(times=(start, mid, end)),))
    return matrix


# ----------------------------------------------------------------------
def _latency_p95_ms(summary) -> float:
    hist = summary.histograms.get(LATENCY_HIST)
    if hist is None or not hist.count:
        return float("nan")
    return hist.quantile(0.95) * 1000.0


def resilience_report(labels: Sequence[str],
                      summaries: Sequence) -> List[Dict[str, object]]:
    """Per-fault-class degradation rows; ``labels[0]`` is the baseline."""
    rows: List[Dict[str, object]] = []
    baseline_goodput: Optional[float] = None
    baseline_p95: Optional[float] = None
    for label, summary in zip(labels, summaries):
        goodput = summary.client_throughput_during_attack().mean
        p95_ms = _latency_p95_ms(summary)
        if baseline_goodput is None:
            baseline_goodput, baseline_p95 = goodput, p95_ms
        goodput_drop = float("nan")
        if baseline_goodput and not math.isnan(goodput):
            goodput_drop = 100.0 * (1.0 - goodput / baseline_goodput)
        latency_increase = float("nan")
        if (baseline_p95 and not math.isnan(p95_ms)
                and not math.isnan(baseline_p95)):
            latency_increase = 100.0 * (p95_ms / baseline_p95 - 1.0)
        fault_stats = summary.fault_stats or {}
        rows.append({
            "fault": label,
            "goodput_mbps": goodput,
            "goodput_drop_pct": goodput_drop,
            "completion_pct": summary.client_completion_percent(),
            "latency_p95_ms": p95_ms,
            "latency_increase_pct": latency_increase,
            "invariant_checks": summary.invariant_checks,
            "fault_events": sum(fault_stats.values()),
            "fault_stats": fault_stats,
        })
    return rows


def render_resilience(rows: Sequence[Dict[str, object]]) -> str:
    """Monospace resilience table for terminal output."""
    from repro.experiments.report import render_table

    headers = ("fault", "goodput Mb/s", "drop %", "completion %",
               "p95 ms", "p95 +%", "inv checks", "fault events")
    return render_table(headers, [
        (row["fault"], row["goodput_mbps"], row["goodput_drop_pct"],
         row["completion_pct"], row["latency_p95_ms"],
         row["latency_increase_pct"], row["invariant_checks"],
         row["fault_events"])
        for row in rows
    ])
