"""Declarative fault schedules — the hashable "chaos config".

A :class:`FaultSchedule` is a frozen dataclass of frozen dataclasses, so
it canonicalizes through :func:`repro.runner.hashing.canonicalize` with
no special casing: folding a schedule into a sweep spec automatically
gives every ``(config, schedule)`` pair its own cache key, and two runs
with the same pair are byte-identical (the injectors draw from RNG
streams derived only from the scenario seed and fault names).

Six fault classes cover the degraded conditions the robustness work
targets:

* :class:`LossBurst`   — Gilbert–Elliott bursty loss on matching links;
* :class:`LinkFlap`    — a link outage window (frames dropped outright);
* :class:`OptionCorruption` — bit-flips in TCP puzzle option blocks,
  exercising the codec reject paths and the RST-on-data deception;
* :class:`ClockSkew`   — a step (plus optional jitter) in one host's
  wall-clock view, stressing the timestamp replay window;
* :class:`MemoryPressure` — queue/syncache capacity shrinks mid-run;
* :class:`SecretRotation` — mid-flight puzzle-secret rotations.

Times are absolute simulation seconds (already scaled — build windows
from ``config.attack_start``/``config.attack_end``).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Tuple

from repro.errors import ExperimentError


def _check_window(start: float, end: float) -> None:
    if start < 0 or end < start:
        raise ExperimentError(
            f"need 0 <= start <= end, got [{start!r}, {end!r})")


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ExperimentError(f"{name} must be in [0, 1], got {value!r}")


@dataclass(frozen=True)
class LossBurst:
    """Gilbert–Elliott two-state loss on links matching *links*.

    While the window is open, each offered packet advances a good/bad
    Markov chain (``p_good_bad``/``p_bad_good`` transition probabilities)
    and is lost with ``loss_bad`` in the bad state, ``loss_good`` in the
    good state — bursty loss rather than the independent Bernoulli the
    link's own ``loss_rate`` models.
    """

    start: float
    end: float
    p_good_bad: float = 0.05
    p_bad_good: float = 0.3
    loss_bad: float = 0.5
    loss_good: float = 0.0
    #: fnmatch pattern over link names (``"a->b"``); ``"*"`` = all links.
    links: str = "*"

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
        for name in ("p_good_bad", "p_bad_good", "loss_bad", "loss_good"):
            _check_probability(name, getattr(self, name))


@dataclass(frozen=True)
class LinkFlap:
    """A hard outage window on links matching *links*: every offered
    frame is dropped without consuming airtime (the interface is down)."""

    start: float
    end: float
    links: str = "*"

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)


@dataclass(frozen=True)
class OptionCorruption:
    """Bit-flip corruption of puzzle option blocks in flight.

    Packets carrying a challenge or solution option are corrupted with
    *probability* while the window is open: one bit of the challenge
    pre-image or of a solution string is inverted, leaving lengths (and
    hence wire size accounting) intact. Corrupted solutions exercise the
    verifier's reject path; corrupted challenges make the client compute
    a solution the server will refuse — both ending in the deception
    behaviour (the peer believes it connected and its data draws an RST).
    """

    start: float
    end: float
    probability: float = 0.25

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
        _check_probability("probability", self.probability)


@dataclass(frozen=True)
class ClockSkew:
    """A wall-clock step on one host at time *at*.

    ``offset`` shifts the host's timestamp reads (puzzle challenge
    generation/verification, cookie timestamps) from *at* onward; with
    ``jitter > 0`` the offset is re-drawn in ``offset ± jitter`` every
    *interval* seconds, modelling an unstable clock. Engine timers are
    unaffected — skew perturbs what the host *reads*, not when it runs.
    """

    host: str
    at: float
    offset: float
    jitter: float = 0.0
    interval: float = 0.5

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ExperimentError(f"at must be >= 0, got {self.at!r}")
        if self.jitter < 0:
            raise ExperimentError(
                f"jitter must be >= 0, got {self.jitter!r}")
        if self.jitter > 0 and self.interval <= 0:
            raise ExperimentError(
                f"jittered skew needs interval > 0, got {self.interval!r}")


@dataclass(frozen=True)
class MemoryPressure:
    """Shrink server queue capacities over a window.

    At *start* each capacity is multiplied by its factor (floored at 1)
    and the overflow is reclaimed immediately; at *end* the original
    capacity is restored. A factor of 1.0 leaves that queue alone.
    """

    start: float
    end: float
    listen_factor: float = 0.25
    accept_factor: float = 1.0
    syncache_factor: float = 1.0

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
        for name in ("listen_factor", "accept_factor", "syncache_factor"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ExperimentError(
                    f"{name} must be in (0, 1], got {value!r}")


@dataclass(frozen=True)
class SecretRotation:
    """Rotate the puzzle secret at each listed time.

    Each rotation keeps the previous key valid (the scheme's grace
    window), so only challenges already two generations old fail —
    back-to-back rotations inside one solve time are the stress case.
    """

    times: Tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "times", tuple(self.times))
        for t in self.times:
            if t < 0:
                raise ExperimentError(f"rotation time must be >= 0: {t!r}")


@dataclass(frozen=True)
class FaultSchedule:
    """The full fault plan for one run — hashable, picklable, declarative."""

    loss_bursts: Tuple[LossBurst, ...] = ()
    link_flaps: Tuple[LinkFlap, ...] = ()
    corruption: Tuple[OptionCorruption, ...] = ()
    clock_skews: Tuple[ClockSkew, ...] = ()
    memory_pressure: Tuple[MemoryPressure, ...] = ()
    secret_rotations: Tuple[SecretRotation, ...] = ()

    def __post_init__(self) -> None:
        # Accept lists for ergonomics but store tuples so the schedule
        # stays hashable and canonicalizable.
        for spec in fields(self):
            object.__setattr__(self, spec.name,
                               tuple(getattr(self, spec.name)))

    def is_empty(self) -> bool:
        """True when no fault class has any entries."""
        return not any(getattr(self, spec.name) for spec in fields(self))

    def fingerprint(self) -> str:
        """Stable content hash (same machinery as sweep cache keys)."""
        from repro.runner.hashing import stable_hash

        return stable_hash(self)
