"""Connection endpoints: the client handshake state machine and the
server-side established connection.

Data transfer after the handshake is deliberately thin — the evaluation's
metrics (throughput, connection time, completion rate) need request and
response *bytes with correct timing*, not sequence-number bookkeeping. A
response is sent as one aggregated burst packet whose ``extra_frames``
preserves per-segment header overhead (see :mod:`repro.net.packet`).
Lost data is not retransmitted; the client application layers a request
timeout on top, which is how the experiments count failures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

from repro.net.packet import (FLAG_ACK, FLAG_PSHACK, FLAG_RST,
                              FLAG_SYN, Packet, TCPOptions)
from repro.puzzles.juels import Challenge, ModeledSolver, Solution
from repro.tcp.constants import (
    DEFAULT_MSS,
    DEFAULT_SYN_RETRIES,
    DEFAULT_SYN_TIMEOUT,
    DEFAULT_WSCALE,
)
from repro.tcp.tcb import EstablishPath, TCBState

if TYPE_CHECKING:  # pragma: no cover
    from repro.tcp.stack import TCPStack


@dataclass
class ClientConnConfig:
    """Client-side handshake behaviour.

    ``supports_puzzles`` models whether the machine runs the kernel patch;
    an unpatched machine ignores the unknown challenge option and sends a
    plain ACK (Experiment 5's "NC"/"NA" behaviours). ``solve_puzzles``
    lets a patched machine decline solving (sysctl opt-out, §7).
    """

    supports_puzzles: bool = True
    solve_puzzles: bool = True
    mss: int = DEFAULT_MSS
    wscale: int = DEFAULT_WSCALE
    use_timestamps: bool = True
    syn_timeout: float = DEFAULT_SYN_TIMEOUT
    syn_retries: int = DEFAULT_SYN_RETRIES
    solver: object = field(default_factory=ModeledSolver)
    #: Abandon a challenge when the CPU already has this many seconds of
    #: queued solve work — a kernel cannot queue puzzle work unboundedly,
    #: and a solution computed after the expiry window is wasted anyway.
    solve_backlog_limit: float = 1.0


class ClientConnection:
    """Active-open endpoint: SYN → (solve?) → ACK → ESTABLISHED → data."""

    def __init__(self, stack: "TCPStack", local_port: int, remote_ip: int,
                 remote_port: int, config: ClientConnConfig) -> None:
        self.stack = stack
        self.host = stack.host
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.config = config
        self.state = TCBState.CLOSED
        self.isn = stack.new_isn()
        self.remote_isn: Optional[int] = None
        self.started_at: Optional[float] = None
        self.established_at: Optional[float] = None
        self.was_challenged = False
        self.solve_attempts = 0
        self._solve_started: Optional[float] = None
        self._syn_timer = None
        self._syn_sent = 0
        # Application callbacks.
        self.on_established: Optional[Callable[["ClientConnection"], None]] = None
        self.on_data: Optional[Callable[["ClientConnection", int, object],
                                        None]] = None
        self.on_reset: Optional[Callable[["ClientConnection"], None]] = None
        self.on_failed: Optional[Callable[["ClientConnection", str],
                                          None]] = None

    # ------------------------------------------------------------------
    # Active open
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.state = TCBState.SYN_SENT
        self.started_at = self.host.engine.now
        self._send_syn()

    def _syn_options(self) -> TCPOptions:
        options = TCPOptions(mss=self.config.mss, wscale=self.config.wscale)
        if self.config.use_timestamps:
            options.ts_val = int(self.host.engine.now * 1000) & 0xFFFFFFFF
        return options

    def _send_syn(self) -> None:
        packet = Packet(src_ip=self.host.address, dst_ip=self.remote_ip,
                        src_port=self.local_port, dst_port=self.remote_port,
                        seq=self.isn, flags=FLAG_SYN,
                        options=self._syn_options())
        self.host.send(packet)
        self._syn_sent += 1
        if self._syn_sent > 1:
            self.host.mib.incr("SynRetrans")
        if self._syn_sent <= self.config.syn_retries:
            timeout = self.config.syn_timeout * (2 ** (self._syn_sent - 1))
            self._syn_timer = self.host.engine.schedule(
                timeout, self._syn_timeout)
        else:
            self._syn_timer = self.host.engine.schedule(
                self.config.syn_timeout * (2 ** (self._syn_sent - 1)),
                self._give_up)

    def _syn_timeout(self) -> None:
        if self.state is not TCBState.SYN_SENT:
            return
        self._send_syn()

    def _give_up(self) -> None:
        if self.state is not TCBState.SYN_SENT:
            return
        self.state = TCBState.CLOSED
        self.stack.forget(self)
        if self.on_failed is not None:
            self.on_failed(self, "syn-timeout")

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------
    def handle(self, packet: Packet) -> None:
        if packet.is_rst:
            self._handle_rst()
            return
        if packet.is_synack:
            self._handle_synack(packet)
            return
        if packet.payload_bytes > 0 and self.state is TCBState.ESTABLISHED:
            if self.on_data is not None:
                self.on_data(self, packet.payload_bytes,
                             getattr(packet, "app_data", None))

    def _handle_rst(self) -> None:
        if self.state in (TCBState.CLOSED, TCBState.RESET):
            return
        self._cancel_syn_timer()
        self.state = TCBState.RESET
        self.stack.forget(self)
        if self.on_reset is not None:
            self.on_reset(self)

    def _handle_synack(self, packet: Packet) -> None:
        if self.state not in (TCBState.SYN_SENT, TCBState.SOLVING):
            return  # duplicate SYN-ACK retransmission
        challenge = packet.options.challenge
        if self.state is TCBState.SOLVING:
            return  # already working on an earlier copy
        self._cancel_syn_timer()
        self.remote_isn = packet.seq
        if (challenge is not None and self.config.supports_puzzles
                and self.config.solve_puzzles):
            self._begin_solving(challenge)
            return
        # No challenge — or one this machine cannot/will not parse: plain
        # ACK. (An unpatched host skips unknown options; RFC 1122 §4.2.2.5.)
        self._establish(solution=None)

    def _begin_solving(self, challenge: Challenge) -> None:
        self.was_challenged = True
        self.host.mib.incr("ChallengesReceived")
        if (self.host.cpu.backlog_seconds()
                > self.config.solve_backlog_limit):
            # The solve queue is already deep enough that this solution
            # would go out stale; drop the attempt instead of queueing.
            self.host.mib.incr("ChallengesAbandoned")
            self.state = TCBState.CLOSED
            self.stack.forget(self)
            if self.on_failed is not None:
                self.on_failed(self, "challenge-abandoned")
            return
        self.state = TCBState.SOLVING
        self._solve_started = self.host.engine.now
        solution = self.config.solver.solve(
            challenge, self.host.rng, counter=self.host.hash_counter)
        self.solve_attempts = solution.attempts
        solution.mss = self.config.mss
        solution.wscale = self.config.wscale
        # The brute force occupies the host CPU; the ACK leaves when the
        # (serialised) work completes — this is the rate limiter.
        self.host.cpu.run(solution.attempts,
                          lambda: self._establish(solution=solution))

    def _establish(self, solution: Optional[Solution]) -> None:
        if self.state in (TCBState.CLOSED, TCBState.RESET):
            return  # aborted while solving
        if solution is not None:
            self.host.mib.incr("PuzzlesSolved")
            if self._solve_started is not None:
                self.host.obs.hist.record(
                    "puzzle_solve",
                    self.host.engine.now - self._solve_started)
        options = TCPOptions()
        if self.config.use_timestamps:
            options.ts_val = int(self.host.engine.now * 1000) & 0xFFFFFFFF
        options.solution = solution
        ack_packet = Packet(
            src_ip=self.host.address, dst_ip=self.remote_ip,
            src_port=self.local_port, dst_port=self.remote_port,
            seq=self.isn + 1,
            ack=(self.remote_isn or 0) + 1,
            flags=FLAG_ACK, options=options)
        self.host.send(ack_packet)
        # TCP enters ESTABLISHED on sending the ACK — even when the server
        # silently ignores it (the paper's deception mechanism, §5).
        self.state = TCBState.ESTABLISHED
        self.established_at = self.host.engine.now
        if self.on_established is not None:
            self.on_established(self)

    # ------------------------------------------------------------------
    # Data and teardown
    # ------------------------------------------------------------------
    def send_data(self, payload_bytes: int, app_data: object = None) -> None:
        if self.state is not TCBState.ESTABLISHED:
            return
        packet = Packet(src_ip=self.host.address, dst_ip=self.remote_ip,
                        src_port=self.local_port, dst_port=self.remote_port,
                        seq=self.isn + 1, ack=(self.remote_isn or 0) + 1,
                        flags=FLAG_PSHACK,
                        payload_bytes=payload_bytes)
        packet.app_data = app_data
        self.host.send(packet)

    def abort(self) -> None:
        """Local teardown without notifying anyone (attacker hygiene)."""
        self._cancel_syn_timer()
        self.state = TCBState.CLOSED
        self.stack.forget(self)

    def _cancel_syn_timer(self) -> None:
        if self._syn_timer is not None:
            self._syn_timer.cancel()
            self._syn_timer = None

    @property
    def connect_time(self) -> Optional[float]:
        """Handshake latency: SYN sent → ESTABLISHED (Figure 6's metric)."""
        if self.started_at is None or self.established_at is None:
            return None
        return self.established_at - self.started_at


class ServerConnection:
    """Passive-open endpoint created when a handshake completes."""

    def __init__(self, stack: "TCPStack", local_port: int, remote_ip: int,
                 remote_port: int, path: EstablishPath, mss: int,
                 wscale: Optional[int]) -> None:
        self.stack = stack
        self.host = stack.host
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.path = path
        self.mss = mss
        self.wscale = wscale
        self.state = TCBState.ESTABLISHED
        self.established_at = stack.host.engine.now
        self._pending: list = []  # buffered (payload_bytes, app_data)
        self.on_data: Optional[Callable[["ServerConnection", int, object],
                                        None]] = None

    @property
    def flow(self) -> tuple:
        return (self.remote_ip, self.remote_port, self.local_port)

    def handle(self, packet: Packet) -> None:
        if packet.is_rst:
            self.state = TCBState.RESET
            self.stack.forget_server(self)
            return
        if packet.payload_bytes > 0:
            app_data = getattr(packet, "app_data", None)
            if self.on_data is not None:
                self.on_data(self, packet.payload_bytes, app_data)
            else:
                self._pending.append((packet.payload_bytes, app_data))

    def attach_reader(self, on_data: Callable[["ServerConnection", int,
                                               object], None]) -> None:
        """App accepted the connection: deliver buffered + future data."""
        self.on_data = on_data
        pending, self._pending = self._pending, []
        for payload_bytes, app_data in pending:
            on_data(self, payload_bytes, app_data)

    def send_data(self, payload_bytes: int, app_data: object = None) -> None:
        if self.state is not TCBState.ESTABLISHED:
            return
        # Aggregate the response into one burst packet; extra_frames keeps
        # the per-MSS-segment header overhead in the byte accounting.
        frames = max(1, math.ceil(payload_bytes / max(1, self.mss)))
        packet = Packet(src_ip=self.host.address, dst_ip=self.remote_ip,
                        src_port=self.local_port, dst_port=self.remote_port,
                        flags=FLAG_PSHACK,
                        payload_bytes=payload_bytes,
                        extra_frames=frames - 1)
        packet.app_data = app_data
        self.host.send(packet)

    def close(self, reset: bool = False) -> None:
        """Tear down; with *reset*, notify the peer with an RST (how the
        app sheds idle/undead connections)."""
        if self.state is TCBState.CLOSED:
            return
        self.state = TCBState.CLOSED
        self.stack.forget_server(self)
        if reset:
            packet = Packet(src_ip=self.host.address, dst_ip=self.remote_ip,
                            src_port=self.local_port,
                            dst_port=self.remote_port,
                            flags=FLAG_RST)
            self.host.send(packet)
