"""The listen (half-open) and accept (established) queues.

These two bounded structures are the attack surface: a SYN flood aims to
fill the listen queue with half-open state; a connection flood aims to fill
the accept queue with completed handshakes (§2.1). Both expose occupancy
and drop counters for the Figure 10 measurements.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Iterator, Optional, Tuple, TYPE_CHECKING

from repro.errors import SimulationError
from repro.tcp.tcb import HalfOpenTCB

if TYPE_CHECKING:  # pragma: no cover
    from repro.tcp.connection import ServerConnection

Flow = Tuple[int, int, int]  # (remote_ip, remote_port, local_port)


class ListenQueue:
    """Bounded half-open connection table, insertion-ordered.

    Keyed by flow for O(1) completion on ACK; ordered for oldest-first
    reaping. ``backlog`` bounds the element count, mirroring the listen
    backlog parameter that bounds kernel memory (§2.1).
    """

    def __init__(self, backlog: int) -> None:
        if backlog < 1:
            raise SimulationError(f"backlog must be >= 1, got {backlog}")
        self.backlog = backlog
        self._table: "OrderedDict[Flow, HalfOpenTCB]" = OrderedDict()
        self.drops_full = 0        # SYNs rejected because the queue was full
        self.expired = 0           # half-opens reaped after retry exhaustion
        self.completed = 0         # half-opens promoted to ESTABLISHED
        self.admitted = 0          # half-opens actually inserted
        self.pressure_evicted = 0  # reclaimed by injected memory pressure
        #: Optional repro.obs CounterScope; the owning listener attaches
        #: its host's so queue events land in the SNMP counters too.
        self.mib = None

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, flow: Flow) -> bool:
        return flow in self._table

    @property
    def full(self) -> bool:
        return len(self._table) >= self.backlog

    def get(self, flow: Flow) -> Optional[HalfOpenTCB]:
        return self._table.get(flow)

    def try_add(self, tcb: HalfOpenTCB) -> bool:
        """Insert a half-open TCB; False (and a drop count) when full."""
        if tcb.flow in self._table:
            # Retransmitted SYN for an existing half-open: not a new
            # entry — recognised even when the queue is full, as a real
            # stack's reqsk lookup would.
            return True
        if self.full:
            self.drops_full += 1
            if self.mib is not None:
                self.mib.incr("ListenOverflows")
            return False
        self._table[tcb.flow] = tcb
        self.admitted += 1
        return True

    def complete(self, flow: Flow) -> Optional[HalfOpenTCB]:
        """Remove and return the half-open entry for a completing ACK."""
        tcb = self._table.pop(flow, None)
        if tcb is not None:
            tcb.cancel_timer()
            # The backoff schedule is per-handshake: a retransmission
            # count carried past completion would inflate the timeout of
            # any code path that reuses the TCB.
            tcb.retransmits = 0
            self.completed += 1
        return tcb

    def expire(self, flow: Flow) -> Optional[HalfOpenTCB]:
        """Reap a half-open entry whose retransmissions were exhausted."""
        tcb = self._table.pop(flow, None)
        if tcb is not None:
            tcb.cancel_timer()
            self.expired += 1
            if self.mib is not None:
                self.mib.incr("HalfOpenExpired")
        return tcb

    def resize(self, backlog: int) -> int:
        """Change the backlog bound, evicting oldest-first on shrink.

        Models memory-pressure reclaim (``tcp_syn_retries`` pruning under
        ``tcp_mem`` pressure): entries beyond the new bound are reaped
        immediately, their timers cancelled. Returns the eviction count.
        """
        if backlog < 1:
            raise SimulationError(f"backlog must be >= 1, got {backlog}")
        evicted = 0
        while len(self._table) > backlog:
            _, tcb = self._table.popitem(last=False)
            tcb.cancel_timer()
            evicted += 1
        self.pressure_evicted += evicted
        if evicted and self.mib is not None:
            self.mib.incr("MemoryPressureReclaims", evicted)
        self.backlog = backlog
        return evicted

    def values(self) -> Iterator[HalfOpenTCB]:
        return iter(self._table.values())

    def clear(self) -> None:
        for tcb in self._table.values():
            tcb.cancel_timer()
        self._table.clear()


class AcceptQueue:
    """Bounded FIFO of established connections awaiting ``accept()``."""

    def __init__(self, backlog: int) -> None:
        if backlog < 1:
            raise SimulationError(f"backlog must be >= 1, got {backlog}")
        self.backlog = backlog
        self._queue: Deque["ServerConnection"] = deque()
        self.drops_full = 0
        self.enqueued = 0
        self.accepted = 0
        self.pressure_evicted = 0  # reclaimed by injected memory pressure
        self.mib = None  # see ListenQueue.mib

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.backlog

    def try_add(self, connection: "ServerConnection") -> bool:
        if self.full:
            self.drops_full += 1
            if self.mib is not None:
                self.mib.incr("AcceptOverflows")
            return False
        self._queue.append(connection)
        self.enqueued += 1
        return True

    def pop(self) -> Optional["ServerConnection"]:
        """Dequeue the oldest established connection (app ``accept()``)."""
        if not self._queue:
            return None
        self.accepted += 1
        return self._queue.popleft()

    def resize(self, backlog: int) -> list:
        """Change the backlog bound; returns connections evicted on shrink.

        Newest entries go first — they are the ones the application has
        never seen, so shedding them is the least-surprising reclaim. The
        caller must deregister the returned connections from the stack.
        """
        if backlog < 1:
            raise SimulationError(f"backlog must be >= 1, got {backlog}")
        evicted = []
        while len(self._queue) > backlog:
            evicted.append(self._queue.pop())
        self.pressure_evicted += len(evicted)
        if evicted and self.mib is not None:
            self.mib.incr("MemoryPressureReclaims", len(evicted))
        self.backlog = backlog
        return evicted

    def clear(self) -> None:
        self._queue.clear()
