"""Adaptive difficulty: the closed control loop §7 sketches as future work.

    "Another possibility would be to adapt the difficulty of the sent
    puzzles based on the behavior of the observed traffic at the server,
    thus forming a closed control loop."

The controller watches the listener's own counters — exactly the signals a
kernel has — and retunes ``m`` through the sysctl interface each interval:

* while protection is engaged, if the *established-connection* inflow
  exceeds a target fraction of the accept-drain capacity, the puzzles are
  too easy for the offered load → raise ``m``;
* if inflow is far below target (clients over-throttled or attack waning)
  → lower ``m``;
* with no pressure at all, decay toward the floor so post-attack clients
  stop paying quickly.

Because each ``m`` step doubles the price, the controller converges in
O(log) steps to the neighbourhood of the Nash difficulty for whatever
population is actually attacking — without knowing ``w_av`` in advance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ExperimentError
from repro.sim.engine import Engine
from repro.sim.process import PeriodicProcess
from repro.tcp.listener import ListenSocket


@dataclass
class AdaptiveConfig:
    """Controller tuning."""

    interval: float = 2.0        # seconds between control decisions
    m_floor: int = 8             # never easier than this while engaged
    m_ceiling: int = 22          # wire/usability cap
    #: Target established-connections inflow, as a fraction of the
    #: accept-drain capacity the operator provisions for.
    target_inflow: float = 50.0  # connections/second
    #: Hysteresis band around the target (fractions of it).
    low_water: float = 0.25
    high_water: float = 1.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ExperimentError("interval must be positive")
        if not 0 <= self.m_floor <= self.m_ceiling:
            raise ExperimentError("need 0 <= m_floor <= m_ceiling")
        if self.target_inflow <= 0:
            raise ExperimentError("target_inflow must be positive")
        if not 0 < self.low_water < self.high_water:
            raise ExperimentError("need 0 < low_water < high_water")


def escalated_params(params, bump: int, ceiling: int):
    """The (k, m) an overload escalation retunes to: ``m`` raised by
    *bump* and clamped at *ceiling* (the same wire/usability cap as
    :attr:`AdaptiveConfig.m_ceiling`). Shared by the closed-loop
    controller's emergency path and the overload watchdog, so both
    escalate through identical sysctl values.
    """
    return params.k, min(params.m + bump, ceiling)


class AdaptiveDifficultyController:
    """Retunes a listener's ``m`` from its own observed counters."""

    def __init__(self, engine: Engine, listener: ListenSocket,
                 config: Optional[AdaptiveConfig] = None) -> None:
        self.engine = engine
        self.listener = listener
        self.config = config if config is not None else AdaptiveConfig()
        self.history: List[Tuple[float, int, float]] = []  # (t, m, inflow)
        self._last_established = 0
        self._last_challenges = 0
        self._process = PeriodicProcess(engine, self._decide,
                                        interval=self.config.interval)

    def start(self, delay: float = 0.0) -> None:
        self._process.start(delay if delay else self.config.interval)

    def stop(self) -> None:
        self._process.stop()

    # ------------------------------------------------------------------
    @property
    def current_m(self) -> int:
        return self.listener.config.puzzle_params.m

    def _decide(self) -> None:
        stats = self.listener.stats
        established = stats.established_total()
        challenges = stats.synacks_challenge
        inflow = (established - self._last_established) \
            / self.config.interval
        challenge_rate = (challenges - self._last_challenges) \
            / self.config.interval
        self._last_established = established
        self._last_challenges = challenges

        m = self.current_m
        engaged = challenge_rate > 0 or self.listener.protection_active
        if engaged:
            if inflow > self.config.target_inflow * self.config.high_water:
                m = min(m + 1, self.config.m_ceiling)
            elif inflow < self.config.target_inflow * self.config.low_water:
                m = max(m - 1, self.config.m_floor)
        else:
            # No pressure: decay so legitimate clients stop paying.
            m = max(m - 1, self.config.m_floor)

        if m != self.current_m:
            params = self.listener.config.puzzle_params
            self.listener.set_difficulty(params.k, m)
        self.history.append((self.engine.now, self.current_m, inflow))
