"""The listening socket and its opportunistic protection controller (§5).

Behavioural contract, straight from the paper:

* Challenges (and cookies) are **off** during normal operation; the stock
  three-way handshake with half-open state runs while the queues have room.
* Protection engages when a queue fills. Puzzles take precedence over
  cookies; with ``DefenseMode.PUZZLES`` the socket sends a challenge even
  when the *accept* queue is the one overflowing — throttling everyone
  rather than silently refusing.
* On an ACK carrying a solution: if the accept queue is full the ACK is
  **ignored** (the sender is left believing it connected; data it sends
  later is RST — the deception mechanism); otherwise the solution is
  verified statelessly and, only if valid, state is created directly in the
  accept queue.
* ``k`` and ``m`` are dynamically tunable (:meth:`ListenSocket.set_difficulty`
  mirrors the kernel's sysctl interface).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

from repro.errors import NetworkError
from repro.net.floodpath import (MSS_SYNACK_SIZE, challenge_synack_size,
                                 plain_synack_size)
from repro.net.packet import (FLAG_SYNACK, Packet, TCPOptions,
                              mss_options)
from repro.puzzles.juels import FlowBinding, JuelsBrainardScheme, \
    VerifyStatus
from repro.puzzles.params import PuzzleParams
from repro.tcp.constants import (
    DEFAULT_ACCEPT_BACKLOG,
    DEFAULT_BACKLOG,
    DEFAULT_MSS,
    DEFAULT_SYNACK_RETRIES,
    DEFAULT_SYNACK_TIMEOUT,
    MAX_SYNACK_TIMEOUT,
    DefenseMode,
)
from repro.tcp.connection import ServerConnection
from repro.tcp.fairness import FairQueuingPolicy
from repro.tcp.queues import AcceptQueue, ListenQueue
from repro.tcp.syncache import CacheEntry, SynCache
from repro.tcp.syncookies import fallback_codec
from repro.tcp.tcb import EstablishPath, HalfOpenTCB

if TYPE_CHECKING:  # pragma: no cover
    from repro.tcp.stack import TCPStack


@dataclass
class DefenseConfig:
    """Server-side defense configuration (the sysctl surface)."""

    mode: DefenseMode = DefenseMode.NONE
    puzzle_params: PuzzleParams = field(
        default_factory=lambda: PuzzleParams(k=2, m=17))
    scheme: Optional[JuelsBrainardScheme] = None
    backlog: int = DEFAULT_BACKLOG
    accept_backlog: int = DEFAULT_ACCEPT_BACKLOG
    synack_timeout: float = DEFAULT_SYNACK_TIMEOUT
    synack_retries: int = DEFAULT_SYNACK_RETRIES
    syncache: Optional[SynCache] = None
    #: Challenge every SYN regardless of queue pressure. Used by the
    #: Figure 6 connection-time measurements and the controller ablation;
    #: the paper's deployed configuration is opportunistic (False).
    always_challenge: bool = False
    #: Puzzle Fair Queuing (§7 extension): per-source difficulty
    #: escalation. None = the paper's uniform pricing.
    fairness: Optional["FairQueuingPolicy"] = None
    #: Seconds the *ACK discipline* (plain completions refused, §5's
    #: verify-only rule) outlives the last queue-full observation. The
    #: challenge trigger stays instantaneous — challenging SYNs only while
    #: a queue is exactly full preserves the stranded-half-open supply
    #: that locks the listen queue — but the completion rule must ride
    #: through the sub-millisecond occupancy dips that expiry and
    #: completion churn create, or in-flight plain ACKs chain through the
    #: transient gaps at the accept-drain rate (see DESIGN.md).
    ack_discipline_hold: float = 2.0
    #: Reap SYN-cache records older than this many seconds (BSD reaps a
    #: syncache entry once its SYN-ACK retries are exhausted). ``None``
    #: (the default) keeps the churn-only baseline the paper discusses;
    #: the chaos harness sets it so the "cache entries always expire"
    #: invariant is enforceable.
    syncache_lifetime: Optional[float] = None
    #: Syncache occupancy fraction at which the listener stops inserting
    #: and serves stateless cookies instead (the FreeBSD-style overload
    #: fallback). ``None`` (the default) disables the fallback rung
    #: entirely — the cache churns exactly as the paper describes.
    syncache_high_watermark: Optional[float] = None
    #: Occupancy fraction below which cache service re-arms. The gap to
    #: the high watermark is the hysteresis band that keeps the listener
    #: from flapping between cache and cookie service every few SYNs.
    syncache_low_watermark: float = 0.60


@dataclass
class ListenerStats:
    """Counters behind Figures 7–11's per-path analysis."""

    syns_received: int = 0
    synacks_plain: int = 0           # SYN-ACK without challenge/cookie
    synacks_challenge: int = 0       # SYN-ACK carrying a challenge
    synacks_cookie: int = 0
    #: Cookies served *because* the syncache crossed its high watermark
    #: (counted in addition to synacks_cookie, which covers all cookies).
    synacks_cookie_fallback: int = 0
    #: SYNs refused by the token-bucket admission control rung.
    syns_rejected_admission: int = 0
    syn_drops_queue_full: int = 0    # nodefense: SYN dropped, queue full
    established_normal: int = 0
    established_cookie: int = 0
    established_puzzle: int = 0
    established_syncache: int = 0
    acks_ignored_queue_full: int = 0  # the §5 deception path
    solutions_invalid: int = 0
    cookies_invalid: int = 0
    accept_drops_full: int = 0
    half_open_expired: int = 0

    def established_total(self) -> int:
        return (self.established_normal + self.established_cookie
                + self.established_puzzle + self.established_syncache)


class ListenSocket:
    """A passive-open socket with pluggable state-exhaustion defenses."""

    def __init__(self, stack: "TCPStack", port: int,
                 config: Optional[DefenseConfig] = None) -> None:
        self.stack = stack
        self.host = stack.host
        self.port = port
        self.config = config if config is not None else DefenseConfig()
        self.listen_queue = ListenQueue(self.config.backlog)
        self.accept_queue = AcceptQueue(self.config.accept_backlog)
        # The queues' containers are created once and never swapped
        # (resize mutates them in place), so the per-SYN fullness probes
        # can be plain len() calls instead of property frames. ``backlog``
        # is still read live — fault injectors retune it mid-run.
        self._lq_table = self.listen_queue._table
        self._aq_queue = self.accept_queue._queue
        self.stats = ListenerStats()
        # Observability: SNMP counters land in the host's MIB scope, and
        # handshake tracepoints go to the engine-wide tracer (default off).
        self.mib = self.host.mib
        self._mib_incr = self.mib.incr  # bound once: hot on every SYN
        self._mib_values = self.mib._values  # ...and the flood-rate
        # counters skip even that frame with plain dict updates.
        self._tracer = self.host.obs.tracer
        #: Optional bounded-memory per-source attribution
        #: (:class:`repro.obs.sketch.SourceAttribution`). None (the
        #: default) keeps every emit site a single attribute test.
        self.attribution = None
        #: Optional graceful-degradation rungs (:mod:`repro.tcp.overload`):
        #: the front-door SYN rate limiter and the state-machine watchdog.
        #: Both default to None so every emit site stays one attribute
        #: test and detached runs are byte-identical.
        self.admission = None
        self.watchdog = None
        # Syncookie-fallback hysteresis latch: set when syncache occupancy
        # crosses the high watermark, cleared below the low watermark.
        self._fallback_engaged = False
        self.listen_queue.mib = self.mib
        self.accept_queue.mib = self.mib
        if self.config.scheme is None:
            self.config.scheme = JuelsBrainardScheme()
        self._cookie_codec = fallback_codec(
            self.config.scheme.secret.current)
        if (self.config.mode is DefenseMode.SYNCACHE
                and self.config.syncache is None):
            self.config.syncache = SynCache()
        if self.config.syncache is not None:
            self.config.syncache.mib = self.mib
        self._syncache_reaper = None
        if (self.config.syncache is not None
                and self.config.syncache_lifetime is not None):
            self._arm_syncache_reaper()
        self._attack_until = 0.0
        # Flyweight reply pipeline for blackholed SYN-ACKs (see
        # repro.net.floodpath); resolved lazily on first use. None =
        # unresolved, False = unavailable (batched path off, or the host
        # has no fabric to shortcut through).
        self._fast_reply = None
        # (params, on-wire size) of the last challenge SYN-ACK shape —
        # fairness policies swap params per source, so key by identity.
        self._challenge_size = None
        #: Called whenever a connection lands in the accept queue.
        self.on_acceptable: Optional[Callable[[], None]] = None
        #: Observability hook: (remote_ip, path) on every establishment —
        #: how experiments measure the server-side effective attack rate.
        self.on_established_hook: Optional[
            Callable[[int, EstablishPath], None]] = None

    # ------------------------------------------------------------------
    # Tracepoints
    # ------------------------------------------------------------------
    def _trace(self, event: str, flow, **detail) -> None:
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(self.host.engine.now, self.host.name, event, flow,
                        **detail)

    # ------------------------------------------------------------------
    # sysctl-style tuning
    # ------------------------------------------------------------------
    def set_difficulty(self, k: int, m: int) -> None:
        """Dynamically retune (k, m) — the kernel patch's sysctl knobs."""
        old = self.config.puzzle_params
        self.config.puzzle_params = PuzzleParams(
            k=k, m=m, length_bytes=old.length_bytes)

    # ------------------------------------------------------------------
    # Controller predicates
    # ------------------------------------------------------------------
    @property
    def protection_active(self) -> bool:
        """Opportunistic challenge trigger: any *currently* full queue.

        Deliberately instantaneous (the paper's "enabled when the
        socket's queue is full"): SYNs arriving in momentary openings take
        the stock path, which is what keeps the listen queue supplied
        with strandable half-opens during an attack.
        """
        if self.config.mode is DefenseMode.NONE:
            return False
        if self.config.mode is DefenseMode.PUZZLES:
            pressured = (self.config.always_challenge
                         or self.listen_queue.full
                         or self.accept_queue.full)
            if pressured:
                self._attack_until = (self.host.engine.now
                                      + self.config.ack_discipline_hold)
            return pressured
        # Cookies/cache engage on listen-queue pressure only (stock Linux).
        return self.listen_queue.full

    @property
    def under_attack(self) -> bool:
        """Sticky attack state gating the ACK discipline (§5's "while
        under attack ... only performs the verification procedure").

        Refreshed by every queue-full observation; survives the
        sub-millisecond occupancy dips between an expiry/completion and
        the flood's refill — the window through which in-flight plain
        ACKs would otherwise cascade (completion opens a slot, the refill
        SYN's own ACK completes through another completion's gap, ad
        infinitum at the drain rate).
        """
        if self.protection_active:
            return True
        if self.config.mode is not DefenseMode.PUZZLES:
            return False
        return self.host.engine.now < self._attack_until

    # ------------------------------------------------------------------
    # SYN handling
    # ------------------------------------------------------------------
    def handle_syn(self, packet: Packet) -> None:
        stats = self.stats
        stats.syns_received += 1
        values = self._mib_values
        values["SynsRecv"] = values.get("SynsRecv", 0) + 1
        if self.attribution is not None:
            self.attribution.on_syn(packet.src_ip)
        # Tracer guards inlined on the flood-rate sites: when tracing is
        # off (the default) this skips building the flow tuple and the
        # _trace call frame for every SYN.
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(self.host.engine.now, self.host.name, "syn-in",
                        (packet.src_ip, packet.src_port, self.port))
        if self.admission is not None and not self.admission.admit(
                packet.src_ip, self.host.engine.now):
            # Degradation-ladder front door: over-rate SYNs are shed
            # before any state, hash, or reply is spent on them.
            stats.syns_rejected_admission += 1
            values["AdmissionDrops"] = values.get("AdmissionDrops", 0) + 1
            if self.attribution is not None:
                self.attribution.on_drop(packet.src_ip, "AdmissionDrops")
            if tracer.enabled:
                tracer.emit(self.host.engine.now, self.host.name, "drop",
                            (packet.src_ip, packet.src_port, self.port),
                            reason="admission")
            return
        config = self.config
        mode = config.mode

        if mode is DefenseMode.PUZZLES:
            # protection_active inlined (its property frame is measurable
            # at flood rates), as are both queue-full probes: any
            # currently full queue — or the always-challenge override —
            # triggers a challenge, and every such observation refreshes
            # the sticky attack window.
            if (config.always_challenge
                    or len(self._lq_table) >= self.listen_queue.backlog
                    or len(self._aq_queue) >= self.accept_queue.backlog):
                self._attack_until = (self.host.engine.now
                                      + config.ack_discipline_hold)
                self._send_challenge(packet)
                return
        elif (mode is DefenseMode.SYNCOOKIES
                and len(self._lq_table) >= self.listen_queue.backlog):
            self._send_cookie_synack(packet)
            return
        elif mode is DefenseMode.SYNCACHE:
            self._syncache_insert(packet)
            return

        # Stock path: allocate half-open state if the backlog allows.
        if len(self._lq_table) >= self.listen_queue.backlog:
            stats.syn_drops_queue_full += 1
            values["ListenOverflows"] = values.get("ListenOverflows", 0) + 1
            if self.attribution is not None:
                self.attribution.on_drop(packet.src_ip, "ListenOverflows")
            if tracer.enabled:
                tracer.emit(self.host.engine.now, self.host.name, "drop",
                            (packet.src_ip, packet.src_port, self.port),
                            reason="listen-overflow")
            return
        self._stock_half_open(packet)

    def _stock_half_open(self, packet: Packet) -> None:
        flow = (packet.src_ip, packet.src_port, self.port)
        existing = self.listen_queue.get(flow)
        if existing is not None:
            self._send_plain_synack(existing)
            return
        tcb = HalfOpenTCB(
            remote_ip=packet.src_ip, remote_port=packet.src_port,
            local_port=self.port, remote_isn=packet.seq,
            local_isn=self.stack.new_isn(),
            mss=packet.options.mss or DEFAULT_MSS,
            wscale=packet.options.wscale,
            created_at=self.host.engine.now,
            timeout_scale=self.host.rng.uniform(0.7, 1.3))
        if not self.listen_queue.try_add(tcb):
            # The queue's own mib hook counted the ListenOverflow.
            self.stats.syn_drops_queue_full += 1
            if self.attribution is not None:
                self.attribution.on_drop(tcb.remote_ip, "ListenOverflows")
            self._trace("drop", tcb.flow, reason="listen-overflow")
            return
        self._send_plain_synack(tcb)
        self._arm_synack_timer(tcb)

    def _resolve_fast_reply(self):
        """Resolve (once) the flyweight pipeline for blackholed replies.

        Returns the :class:`~repro.net.floodpath.ReplyFastPath`, or
        ``False`` when this host cannot use one (batched fast path
        disabled, a bare test host without a fabric, or a host the
        topology cannot route an uplink for)."""
        network = getattr(self.host, "network", None)
        fast = None
        if network is not None:
            try:
                fast = network.reply_fast_path(self.host)
            except NetworkError:
                fast = None
        fast = fast if fast is not None else False
        self._fast_reply = fast
        return fast

    def _send_plain_synack(self, tcb: HalfOpenTCB) -> None:
        self.stats.synacks_plain += 1
        self._mib_incr("SynAcksSent")
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(self.host.engine.now, self.host.name, "synack-out",
                        tcb.flow, retrans=tcb.retransmits)
        fast = self._fast_reply
        if fast is None:
            fast = self._resolve_fast_reply()
        if fast is not False and fast.sendable(tcb.remote_ip):
            # Spoofed peer, no packet observers: the SYN-ACK is pure
            # uplink bytes. Same counters and fold, no materialization.
            fast.send(plain_synack_size(tcb.wscale), tcb.remote_ip,
                      tcb.remote_port)
            return
        options = TCPOptions(mss=DEFAULT_MSS, wscale=tcb.wscale)
        packet = Packet(src_ip=self.host.address, dst_ip=tcb.remote_ip,
                        src_port=self.port, dst_port=tcb.remote_port,
                        seq=tcb.local_isn, ack=tcb.remote_isn + 1,
                        flags=FLAG_SYNACK, options=options)
        self.host.send(packet)

    def _arm_synack_timer(self, tcb: HalfOpenTCB) -> None:
        # Per-step ±10% jitter (timer wheel) on top of the entry's own
        # lifetime scale (see HalfOpenTCB.timeout_scale): together they
        # spread a burst-created cohort's expiries over tens of seconds,
        # so the listen queue's strand lock erodes as a trickle of
        # individually-refilled openings instead of periodic mass waves.
        jitter = tcb.timeout_scale * self.host.rng.uniform(0.9, 1.1)
        # Exponential backoff clamped at MAX_SYNACK_TIMEOUT (TCP_RTO_MAX):
        # past the cap every further retry waits the cap, not 2x more.
        base = min(self.config.synack_timeout * (2 ** tcb.retransmits),
                   MAX_SYNACK_TIMEOUT)
        tcb.timer = self.host.engine.schedule(
            base * jitter, self._synack_timeout, tcb)

    def _synack_timeout(self, tcb: HalfOpenTCB) -> None:
        if self.listen_queue.get(tcb.flow) is not tcb:
            return  # completed or already reaped
        if tcb.retransmits >= self.config.synack_retries:
            # The queue's mib hook counts HalfOpenExpired.
            self.listen_queue.expire(tcb.flow)
            self.stats.half_open_expired += 1
            if self.attribution is not None:
                self.attribution.on_drop(tcb.remote_ip, "HalfOpenExpired")
            self._trace("expire", tcb.flow, retrans=tcb.retransmits)
            return
        tcb.retransmits += 1
        self._mib_incr("SynAckRetrans")
        self._send_plain_synack(tcb)
        self._arm_synack_timer(tcb)

    def _arm_syncache_reaper(self) -> None:
        # Rotating shard sweep: each timer-wheel tick reaps one shard,
        # and every shard is visited once per quarter lifetime — so
        # entries overstay by at most lifetime/4 (within the invariant
        # checker's bound) while each tick touches only buckets/shards
        # buckets instead of stalling on the whole table.
        cache = self.config.syncache
        interval = self.config.syncache_lifetime / (4.0 * cache.shard_count)
        self._reap_shard = 0
        self._syncache_reaper = self.host.engine.schedule(
            interval, self._syncache_reap, interval)

    def _syncache_reap(self, interval: float) -> None:
        cache = self.config.syncache
        cutoff = self.host.engine.now - self.config.syncache_lifetime
        cache.expire_shard_older_than(self._reap_shard, cutoff)
        self._reap_shard = (self._reap_shard + 1) % cache.shard_count
        self._syncache_reaper = self.host.engine.schedule(
            interval, self._syncache_reap, interval)

    def _send_challenge(self, packet: Packet) -> None:
        config = self.config
        scheme = config.scheme
        params = config.puzzle_params
        if config.fairness is not None:
            params = config.fairness.difficulty_for(
                packet.src_ip, self.host.engine.now)
        fast = self._fast_reply
        if fast is None:
            fast = self._resolve_fast_reply()
        if fast is not False and fast.sendable(packet.src_ip):
            # Spoofed peer, no packet observers: the challenge block is
            # never read, so issue it from struct-packed material (same
            # hash and counter accounting, same ISN draw) and fold just
            # the response's bytes through the uplink.
            host = self.host
            scheme.issue_preimage(
                params, packet.src_ip, packet.dst_ip, packet.src_port,
                packet.dst_port, packet.seq, host.now,
                counter=host.hash_counter)
            host.cpu.consume(1)
            self.stats.synacks_challenge += 1
            values = self._mib_values
            values["PuzzlesIssued"] = values.get("PuzzlesIssued", 0) + 1
            tracer = self._tracer
            if tracer.enabled:
                tracer.emit(host.engine.now, host.name,
                            "challenge-out",
                            (packet.src_ip, packet.src_port, self.port),
                            k=params.k, m=params.m)
            # stack.new_isn() inlined — the same single getrandbits(32)
            # draw, minus two frames per challenge.
            host.rng.getrandbits(32)
            size = self._challenge_size
            if size is None or size[0] is not params:
                size = (params, challenge_synack_size(params))
                self._challenge_size = size
            fast.send(size[1], packet.src_ip, packet.src_port)
            return
        binding = FlowBinding(src_ip=packet.src_ip, dst_ip=packet.dst_ip,
                              src_port=packet.src_port,
                              dst_port=packet.dst_port, isn=packet.seq)
        # Timestamp reads go through the host's wall-clock view (engine
        # time plus injected skew) — timers elsewhere stay monotonic.
        challenge = scheme.make_challenge(
            params, binding, self.host.now,
            counter=self.host.hash_counter)
        self.host.cpu.consume(1)  # g(p) = 1 hash of server CPU time
        self.stats.synacks_challenge += 1
        self._mib_incr("PuzzlesIssued")
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(self.host.engine.now, self.host.name,
                        "challenge-out",
                        (packet.src_ip, packet.src_port, self.port),
                        k=params.k, m=params.m)
        options = TCPOptions(mss=DEFAULT_MSS, challenge=challenge)
        response = Packet(src_ip=self.host.address, dst_ip=packet.src_ip,
                          src_port=self.port, dst_port=packet.src_port,
                          seq=self.stack.new_isn(), ack=packet.seq + 1,
                          flags=FLAG_SYNACK, options=options)
        self.host.send(response)

    def _send_cookie_synack(self, packet: Packet) -> None:
        cookie = self._cookie_codec.encode(
            self.host.now, packet.src_ip, packet.src_port,
            self.port, packet.seq, packet.options.mss or DEFAULT_MSS)
        self.stats.synacks_cookie += 1
        self._mib_incr("SynCookiesSent")
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(self.host.engine.now, self.host.name, "cookie-out",
                        (packet.src_ip, packet.src_port, self.port))
        fast = self._fast_reply
        if fast is None:
            fast = self._resolve_fast_reply()
        if fast is not False and fast.sendable(packet.src_ip):
            # The cookie is already minted (and its encoding cost paid);
            # a spoofed peer will never echo it, so only bytes remain.
            fast.send(MSS_SYNACK_SIZE, packet.src_ip, packet.src_port)
            return
        # wscale is lost with cookies; the MSS-only shape is interned.
        options = mss_options(DEFAULT_MSS)
        response = Packet(src_ip=self.host.address, dst_ip=packet.src_ip,
                          src_port=self.port, dst_port=packet.src_port,
                          seq=cookie, ack=packet.seq + 1,
                          flags=FLAG_SYNACK, options=options)
        self.host.send(response)

    def _syncache_insert(self, packet: Packet) -> None:
        config = self.config
        cache = config.syncache
        if config.syncache_high_watermark is not None:
            # FreeBSD-style overload fallback with hysteresis: above the
            # high watermark the listener stops inserting and serves
            # stateless cookies; cache service re-arms only once
            # occupancy has drained below the low watermark.
            occupancy = cache.occupancy_fraction
            if self._fallback_engaged:
                if occupancy <= config.syncache_low_watermark:
                    self._fallback_engaged = False
            elif occupancy >= config.syncache_high_watermark:
                self._fallback_engaged = True
            if self._fallback_engaged:
                self.stats.synacks_cookie_fallback += 1
                self._mib_incr("SynCacheCookieFallback")
                self._send_cookie_synack(packet)
                return
        entry = CacheEntry(
            flow=(packet.src_ip, packet.src_port, self.port),
            remote_isn=packet.seq, local_isn=self.stack.new_isn(),
            mss=packet.options.mss or DEFAULT_MSS,
            wscale=packet.options.wscale,
            created_at=self.host.engine.now)
        if not cache.insert(entry):
            # reject-new policy: no record, no SYN-ACK — the client
            # retries into (hopefully) a less loaded cache. The cache's
            # own rejected counter / SynCacheRejects MIB carry the tally.
            if self.attribution is not None:
                self.attribution.on_drop(packet.src_ip, "SynCacheRejects")
            self._trace("drop", entry.flow, reason="syncache-reject")
            return
        tcb = HalfOpenTCB(
            remote_ip=packet.src_ip, remote_port=packet.src_port,
            local_port=self.port, remote_isn=packet.seq,
            local_isn=entry.local_isn, mss=entry.mss, wscale=entry.wscale,
            created_at=entry.created_at)
        self._send_plain_synack(tcb)

    # ------------------------------------------------------------------
    # ACK handling
    # ------------------------------------------------------------------
    def handle_ack(self, packet: Packet) -> bool:
        """Process a handshake-completing ACK; False → caller sends RST.

        §5 semantics: while the protection is in effect every completing
        ACK goes through the verification procedure — a plain ACK cannot
        complete **even an existing half-open**. This is what keeps the
        listen queue saturated with stranded half-opens during an attack
        (Figure 10) and limits attackers to the solving path.
        """
        flow = (packet.src_ip, packet.src_port, self.port)
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(self.host.engine.now, self.host.name, "ack-in",
                        flow,
                        solution=packet.options.solution is not None,
                        payload=packet.payload_bytes)

        tcb = self.listen_queue.get(flow)
        if tcb is not None:
            if (self.config.mode is DefenseMode.PUZZLES
                    and self.under_attack
                    and packet.options.solution is None):
                # Under attack, unverified completions are ignored; the
                # half-open is left stranded until its timer reaps it.
                self.stats.acks_ignored_queue_full += 1
                self._mib_incr("DeceptionAcksIgnored")
                if self.attribution is not None:
                    self.attribution.on_drop(packet.src_ip,
                                             "DeceptionAcksIgnored")
                self._trace("ignore", flow, reason="plain-ack-under-attack")
                return True
            return self._complete_stock(tcb)

        if packet.options.solution is not None and \
                self.config.mode is DefenseMode.PUZZLES:
            return self._complete_puzzle(packet)

        if self.config.mode is DefenseMode.SYNCACHE:
            entry = self.config.syncache.complete(flow)
            if entry is not None:
                return self._install(packet, EstablishPath.SYNCACHE,
                                     entry.mss, entry.wscale)
            if self.config.syncache_high_watermark is not None:
                # Fallback rung armed: this ACK may answer a cookie the
                # overloaded cache served instead of a record. Validate
                # statelessly before declaring a miss.
                state = self._cookie_codec.decode(
                    self.host.now, (packet.ack - 1) & 0xFFFFFFFF,
                    packet.src_ip, packet.src_port, self.port,
                    (packet.seq - 1) & 0xFFFFFFFF)
                if state is not None:
                    self._mib_incr("SynCookiesRecv")
                    return self._complete_cookie(packet, state)
            self._mib_incr("SynCacheMisses")
            if self.attribution is not None:
                self.attribution.on_drop(packet.src_ip, "SynCacheMisses")
            self._trace("reject", flow, reason="syncache-miss")
            return False

        if self.config.mode is DefenseMode.SYNCOOKIES:
            state = self._cookie_codec.decode(
                self.host.now, (packet.ack - 1) & 0xFFFFFFFF,
                packet.src_ip, packet.src_port, self.port,
                (packet.seq - 1) & 0xFFFFFFFF)
            if state is not None:
                self._mib_incr("SynCookiesRecv")
                return self._complete_cookie(packet, state)
            self.stats.cookies_invalid += 1
            self._mib_incr("SynCookiesFailed")
            if self.attribution is not None:
                self.attribution.on_drop(packet.src_ip, "SynCookiesFailed")
            self._trace("reject", flow, reason="bad-cookie")
            return False

        if self.config.mode is DefenseMode.PUZZLES \
                and packet.payload_bytes == 0 and self.under_attack:
            # Pure plain ACK while puzzles are demanded — e.g. an
            # unpatched host answering a challenge. Silently ignored: the
            # host believes it connected; data it sends later carries a
            # payload, falls through here, and draws an RST (§5).
            self.stats.solutions_invalid += 1
            self._mib_incr("PlainAcksIgnored")
            if self.attribution is not None:
                self.attribution.on_drop(packet.src_ip, "PlainAcksIgnored")
            self._trace("ignore", flow, reason="plain-ack")
            return True
        return False

    def _complete_stock(self, tcb: HalfOpenTCB) -> bool:
        if self.accept_queue.full:
            # Stock Linux: leave the connection half-open; the SYN-ACK
            # timer keeps running and may later find room.
            self.stats.accept_drops_full += 1
            self._mib_incr("AcceptOverflows")
            if self.attribution is not None:
                self.attribution.on_drop(tcb.remote_ip, "AcceptOverflows")
            self._trace("ignore", tcb.flow, reason="accept-overflow")
            return True
        self.listen_queue.complete(tcb.flow)
        self._install_tcb(tcb.remote_ip, tcb.remote_port,
                          EstablishPath.NORMAL, tcb.mss, tcb.wscale)
        return True

    def _complete_puzzle(self, packet: Packet) -> bool:
        flow = (packet.src_ip, packet.src_port, self.port)
        # §5: verify only when there is room; otherwise ignore the ACK.
        if self.accept_queue.full:
            self.stats.acks_ignored_queue_full += 1
            self._mib_incr("DeceptionAcksIgnored")
            if self.attribution is not None:
                self.attribution.on_drop(packet.src_ip,
                                         "DeceptionAcksIgnored")
            self._trace("ignore", flow, reason="accept-full-deception")
            return True
        solution = packet.options.solution
        binding = FlowBinding(src_ip=packet.src_ip, dst_ip=packet.dst_ip,
                              src_port=packet.src_port,
                              dst_port=packet.dst_port,
                              isn=(packet.seq - 1) & 0xFFFFFFFF)
        scheme = self.config.scheme
        expected = self.config.puzzle_params
        if self.config.fairness is not None:
            # Fair queuing: accept any difficulty at or above this
            # source's current requirement (the solution echoes its own
            # parameters; a requirement that rose mid-handshake just
            # costs the client a retry).
            required = self.config.fairness.difficulty_for(
                packet.src_ip, self.host.engine.now)
            if (solution.params.k != required.k
                    or solution.params.m < required.m
                    or solution.params.length_bytes
                    != required.length_bytes):
                self.stats.solutions_invalid += 1
                self._mib_incr("PuzzlesRejected")
                if self.attribution is not None:
                    self.attribution.on_drop(packet.src_ip,
                                             "PuzzlesRejected")
                    self.attribution.on_puzzle_failure(packet.src_ip)
                self._trace("reject", flow, reason="fairness-difficulty")
                return True
            expected = solution.params
        result = scheme.verify(
            solution, binding, self.host.now,
            expected, rng=self.host.rng,
            counter=self.host.hash_counter)
        self.host.cpu.consume(result.hashes_spent)
        if not result.ok:
            self.stats.solutions_invalid += 1
            # Stale/future timestamps are the replay window at work; the
            # rest are genuinely bad solutions.
            if result.status in (VerifyStatus.EXPIRED,
                                 VerifyStatus.FUTURE_TIMESTAMP):
                cause = "ReplaysBlocked"
            else:
                cause = "PuzzlesRejected"
            self._mib_incr(cause)
            if self.attribution is not None:
                self.attribution.on_drop(packet.src_ip, cause)
                self.attribution.on_puzzle_failure(packet.src_ip)
            self._trace("reject", flow, reason=result.status.value)
            return True  # silently dropped, no RST: stateless server
        self._mib_incr("PuzzlesVerified")
        return self._install(packet, EstablishPath.PUZZLE,
                             solution.mss, solution.wscale)

    def _complete_cookie(self, packet: Packet, state) -> bool:
        if self.accept_queue.full:
            self.stats.accept_drops_full += 1
            self._mib_incr("AcceptOverflows")
            if self.attribution is not None:
                self.attribution.on_drop(packet.src_ip, "AcceptOverflows")
            self._trace("ignore",
                        (packet.src_ip, packet.src_port, self.port),
                        reason="accept-overflow")
            return True
        return self._install(packet, EstablishPath.COOKIE, state.mss,
                             state.wscale)

    def _install(self, packet: Packet, path: EstablishPath, mss: int,
                 wscale) -> bool:
        return self._install_tcb(packet.src_ip, packet.src_port, path, mss,
                                 wscale)

    def _install_tcb(self, remote_ip: int, remote_port: int,
                     path: EstablishPath, mss: int, wscale) -> bool:
        connection = ServerConnection(
            self.stack, self.port, remote_ip, remote_port, path, mss,
            wscale)
        flow = (remote_ip, remote_port, self.port)
        if not self.accept_queue.try_add(connection):
            # The queue's mib hook counted the AcceptOverflow.
            self.stats.accept_drops_full += 1
            if self.attribution is not None:
                self.attribution.on_drop(remote_ip, "AcceptOverflows")
            self._trace("ignore", flow, reason="accept-overflow")
            return True
        self.stack.register_server(connection)
        if path is EstablishPath.NORMAL:
            self.stats.established_normal += 1
            self._mib_incr("EstabNormal")
        elif path is EstablishPath.COOKIE:
            self.stats.established_cookie += 1
            self._mib_incr("EstabCookie")
        elif path is EstablishPath.PUZZLE:
            self.stats.established_puzzle += 1
            self._mib_incr("EstabPuzzle")
        else:
            self.stats.established_syncache += 1
            self._mib_incr("EstabSynCache")
        self._trace("accept", flow, path=path.value)
        if self.config.fairness is not None:
            self.config.fairness.record_established(
                remote_ip, self.host.engine.now)
        if self.on_established_hook is not None:
            self.on_established_hook(remote_ip, path)
        if self.on_acceptable is not None:
            self.on_acceptable()
        return True

    # ------------------------------------------------------------------
    # Fault injection: memory pressure
    # ------------------------------------------------------------------
    def apply_memory_pressure(self, listen_backlog: Optional[int] = None,
                              accept_backlog: Optional[int] = None,
                              syncache_limit: Optional[int] = None
                              ) -> dict:
        """Resize queue capacities mid-run, reclaiming overflow.

        Passing a smaller bound evicts entries immediately (oldest
        half-opens, newest un-accepted connections, oldest cache records);
        a larger bound restores headroom without creating state. Returns
        ``{"listen": n, "accept": n, "syncache": n}`` eviction counts.
        """
        evicted = {"listen": 0, "accept": 0, "syncache": 0}
        if listen_backlog is not None:
            evicted["listen"] = self.listen_queue.resize(listen_backlog)
        if accept_backlog is not None:
            shed = self.accept_queue.resize(accept_backlog)
            for connection in shed:
                self.stack.forget_server(connection)
            evicted["accept"] = len(shed)
        if syncache_limit is not None and self.config.syncache is not None:
            evicted["syncache"] = self.config.syncache.set_bucket_limit(
                syncache_limit)
        return evicted

    # ------------------------------------------------------------------
    # App interface
    # ------------------------------------------------------------------
    def accept(self) -> Optional[ServerConnection]:
        """Dequeue the oldest established connection, or None."""
        connection = self.accept_queue.pop()
        if connection is not None:
            self.host.obs.hist.record(
                "accept_wait",
                self.host.engine.now - connection.established_at)
        return connection
