"""Reliable byte-stream transfer over established connections.

The handshake stack (the paper's subject) abstracts data transfer: a
request or response is one aggregated burst with no retransmission, which
is exact on the evaluation's clean links. This module adds an opt-in
reliability layer for lossy-link studies: Go-Back-N with byte sequence
numbers, cumulative ACKs, and a retransmission timer — enough TCP to
deliver a payload intact over links with real loss, without modelling
congestion control (out of scope for state-exhaustion work).

Usage::

    sender = ReliableSender(connection, total_bytes=100_000)
    sender.on_complete = lambda s: ...
    receiver = ReliableReceiver(peer_connection)
    receiver.on_complete = lambda r: ...
    sender.start()

Both endpoints hook the underlying connection's ``on_data``; application
frames are ``("seg", offset, length)`` and ``("ack", cumulative)`` tuples
riding the existing packet abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.errors import NetworkError
from repro.tcp.connection import ClientConnection, ServerConnection

Connection = Union[ClientConnection, ServerConnection]

DEFAULT_SEGMENT_BYTES = 1460
DEFAULT_WINDOW_SEGMENTS = 16
DEFAULT_RTO = 0.2
MAX_RETRANSMISSIONS = 20


class ReliableSender:
    """Go-Back-N sender for one payload over an established connection."""

    def __init__(self, connection: Connection, total_bytes: int,
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 window_segments: int = DEFAULT_WINDOW_SEGMENTS,
                 rto: float = DEFAULT_RTO) -> None:
        if total_bytes <= 0:
            raise NetworkError("total_bytes must be positive")
        if segment_bytes <= 0 or window_segments <= 0 or rto <= 0:
            raise NetworkError("segment/window/rto must be positive")
        self.connection = connection
        self.engine = connection.host.engine
        self.total_bytes = total_bytes
        self.segment_bytes = segment_bytes
        self.window_bytes = window_segments * segment_bytes
        self.rto = rto
        self.base = 0            # lowest unacknowledged byte
        self.next_offset = 0     # next byte to send
        self.retransmissions = 0      # consecutive timeouts w/o progress
        self.total_retransmissions = 0
        self.segments_sent = 0
        self.completed = False
        self.failed = False
        self._timer = None
        self.on_complete: Optional[Callable[["ReliableSender"],
                                            None]] = None
        self.on_failed: Optional[Callable[["ReliableSender"], None]] = None
        connection.on_data = self._on_frame

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._fill_window()

    def _fill_window(self) -> None:
        while (self.next_offset < self.total_bytes
               and self.next_offset - self.base < self.window_bytes):
            length = min(self.segment_bytes,
                         self.total_bytes - self.next_offset)
            self._send_segment(self.next_offset, length)
            self.next_offset += length
        if self._timer is None and self.base < self.total_bytes:
            self._arm_timer()

    def _send_segment(self, offset: int, length: int) -> None:
        self.segments_sent += 1
        self.connection.send_data(length, app_data=("seg", offset, length))

    def _arm_timer(self) -> None:
        self._timer = self.engine.schedule(self.rto, self._timeout)

    def _timeout(self) -> None:
        self._timer = None
        if self.completed or self.failed:
            return
        self.retransmissions += 1
        self.total_retransmissions += 1
        if self.retransmissions > MAX_RETRANSMISSIONS:
            self.failed = True
            if self.on_failed is not None:
                self.on_failed(self)
            return
        # Go-Back-N: resend everything from the base.
        offset = self.base
        while offset < self.next_offset:
            length = min(self.segment_bytes, self.total_bytes - offset)
            self._send_segment(offset, length)
            offset += length
        self._arm_timer()

    # ------------------------------------------------------------------
    def _on_frame(self, connection, payload_bytes: int,
                  app_data: object) -> None:
        if (not isinstance(app_data, tuple) or len(app_data) != 2
                or app_data[0] != "ack"):
            return
        cumulative = int(app_data[1])
        if cumulative <= self.base:
            return  # duplicate/old ACK
        self.base = cumulative
        self.retransmissions = 0  # progress: reset the give-up counter
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self.base >= self.total_bytes:
            self.completed = True
            if self.on_complete is not None:
                self.on_complete(self)
            return
        self._fill_window()


class ReliableReceiver:
    """Cumulative-ACK receiver: delivers in-order bytes, discards gaps."""

    def __init__(self, connection: Connection) -> None:
        self.connection = connection
        self.expected = 0        # next in-order byte offset
        self.received_bytes = 0
        self.out_of_order_discarded = 0
        self.on_complete: Optional[Callable[["ReliableReceiver"],
                                            None]] = None
        self.expected_total: Optional[int] = None
        connection.on_data = self._on_frame

    def expect(self, total_bytes: int) -> None:
        """Arm completion notification at *total_bytes* delivered."""
        self.expected_total = total_bytes
        self._check_complete()

    def _on_frame(self, connection, payload_bytes: int,
                  app_data: object) -> None:
        if (not isinstance(app_data, tuple) or len(app_data) != 3
                or app_data[0] != "seg"):
            return
        _, offset, length = app_data
        if offset == self.expected:
            self.expected += length
            self.received_bytes += length
        elif offset < self.expected:
            pass  # duplicate of already-delivered data
        else:
            self.out_of_order_discarded += 1  # Go-Back-N: drop the gap
        # Cumulative ACK either way (dup-ACKs drive retransmission). A
        # nominal 8-byte payload keeps the frame visible to the endpoints'
        # payload-bearing delivery path.
        self.connection.send_data(8, app_data=("ack", self.expected))
        self._check_complete()

    def _check_complete(self) -> None:
        if (self.expected_total is not None
                and self.received_bytes >= self.expected_total
                and self.on_complete is not None):
            callback, self.on_complete = self.on_complete, None
            callback(self)
