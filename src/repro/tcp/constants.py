"""Shared TCP-layer constants and the defense-mode enumeration."""

from __future__ import annotations

import enum

#: Linux-flavoured defaults, scaled where noted for simulation runtimes.
DEFAULT_BACKLOG = 4096          # listen (half-open) queue bound
DEFAULT_ACCEPT_BACKLOG = 4096   # accept (established) queue bound
DEFAULT_SYNACK_TIMEOUT = 1.0    # initial SYN-ACK retransmission timeout (s)
#: Linux's tcp_synack_retries default. With exponential backoff this gives
#: a half-open connection a ~63 s lifetime — long enough that the strands
#: created while the accept queue is full keep the listen queue (and so the
#: puzzle protection) locked for an entire attack. Lowering this weakens
#: the defense: strands expire, openings leak unchallenged attackers.
DEFAULT_SYNACK_RETRIES = 5
#: Cap on the exponential SYN-ACK retransmission backoff, mirroring
#: Linux's TCP_RTO_MAX (60 s). Without the clamp, a raised
#: ``synack_retries`` lets ``timeout * 2**retransmits`` grow without
#: bound and half-open state outlives any plausible peer.
MAX_SYNACK_TIMEOUT = 60.0
DEFAULT_SYN_TIMEOUT = 1.0       # client SYN retransmission timeout (s)
DEFAULT_SYN_RETRIES = 4         # client SYN retransmissions before failing
DEFAULT_MSS = 1460
DEFAULT_WSCALE = 7


class DefenseMode(enum.Enum):
    """Which state-exhaustion defense the listening socket runs.

    ``NONE`` — stock behaviour: half-open state for every SYN, drop when the
    backlog is full (the paper's "nodefense" control setting).

    ``SYNCOOKIES`` — stock behaviour until the listen queue fills, then
    stateless cookies (Linux semantics: cookies serve the overflow only).

    ``SYNCACHE`` — BSD-style compact half-open cache (discussed in §2.1;
    included as a baseline extension).

    ``PUZZLES`` — the paper's contribution: stock behaviour until either
    queue fills, then stateless challenges; takes precedence over cookies
    (§5), which remain available as an explicit fallback flag.
    """

    NONE = "none"
    SYNCOOKIES = "cookies"
    SYNCACHE = "syncache"
    PUZZLES = "puzzles"
