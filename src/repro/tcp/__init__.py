"""TCP handshake stack with client-puzzle, SYN-cookie and SYN-cache defenses.

This package reproduces, at protocol level, the paper's Linux 4.13 kernel
modifications (§5) plus the baselines it compares against (§2.1):

* :mod:`repro.tcp.tcb` — connection state blocks and the handshake state
  machine's states;
* :mod:`repro.tcp.queues` — the bounded ``listen`` (half-open) and
  ``accept`` queues whose exhaustion the attacks target;
* :mod:`repro.tcp.syncookies` — classic SYN cookies: connection parameters
  encoded in the ISN, 3-bit MSS table, lost window scaling;
* :mod:`repro.tcp.syncache` — the BSD-style SYN cache baseline;
* :mod:`repro.tcp.listener` — the listening socket with the opportunistic
  puzzle protection controller;
* :mod:`repro.tcp.stack` — per-host stack: demux, client connections,
  RST generation;
* :mod:`repro.tcp.connection` — established-connection data transfer.
"""

from repro.tcp.constants import DefenseMode
from repro.tcp.tcb import HalfOpenTCB, TCBState
from repro.tcp.queues import AcceptQueue, ListenQueue
from repro.tcp.syncookies import SynCookieCodec
from repro.tcp.syncache import SynCache
from repro.tcp.listener import DefenseConfig, ListenSocket, ListenerStats
from repro.tcp.stack import TCPStack
from repro.tcp.connection import ClientConnection, ServerConnection
from repro.tcp.stream import ReliableReceiver, ReliableSender
from repro.tcp.adaptive import AdaptiveConfig, AdaptiveDifficultyController
from repro.tcp.fairness import FairnessConfig, FairQueuingPolicy

__all__ = [
    "DefenseMode",
    "TCBState",
    "HalfOpenTCB",
    "ListenQueue",
    "AcceptQueue",
    "SynCookieCodec",
    "SynCache",
    "DefenseConfig",
    "ListenSocket",
    "ListenerStats",
    "TCPStack",
    "ClientConnection",
    "ServerConnection",
    "ReliableSender",
    "ReliableReceiver",
    "AdaptiveConfig",
    "AdaptiveDifficultyController",
    "FairnessConfig",
    "FairQueuingPolicy",
]
