"""Classic SYN cookies (Bernstein 1997), as the paper's main baseline.

The server encodes the connection's parameters into the 32-bit initial
sequence number of its SYN-ACK and keeps **no** half-open state; a later
ACK is validated by recomputing the cookie. The layout follows the classic
scheme:

* top 5 bits — a slow time counter ``t`` (64-second granularity) modulo 32,
* next 3 bits — an index into an 8-entry MSS table (this is the paper's
  point that cookies squeeze the 16-bit MSS into 3 bits),
* low 24 bits — a keyed hash of (4-tuple, client ISN, t).

Window scaling cannot be encoded at all, which the paper calls out as a
performance cost of cookies; :meth:`SynCookieCodec.decode` therefore
reports ``wscale=None``.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import NetworkError

#: The classic 8-entry MSS approximation table.
MSS_TABLE = (536, 1300, 1440, 1460, 4312, 8960, 536, 536)

_sha256 = hashlib.sha256
#: Same byte layout as the original per-field ``to_bytes`` concatenation:
#: 4-byte src_ip, 2-byte ports, 4-byte ISN, 8-byte unsigned t, big-endian.
_pack_material = struct.Struct(">IHHIQ").pack

#: ``_mss_index`` results per client MSS — floods echo one MSS value
#: millions of times, so the table scan runs once per distinct value.
_MSS_INDEX_CACHE: Dict[int, int] = {}

#: Seconds per cookie time-counter tick.
COOKIE_TICK_SECONDS = 64.0

#: How many past ticks a cookie stays valid (classic: current + previous).
COOKIE_VALID_TICKS = 2


@dataclass(frozen=True)
class CookieState:
    """What a validated cookie recovers about the connection."""

    mss: int
    wscale: Optional[int]  # always None: cookies cannot carry wscale


def fallback_codec(scheme_secret: bytes) -> "SynCookieCodec":
    """The codec a listener mints for cookie service off its puzzle
    secret — both the SYNCOOKIES mode and the syncache overload
    fallback derive it the same way, so a connection established
    through either rung validates against the same cookies."""
    return SynCookieCodec(secret=scheme_secret + b"/cookies")


class SynCookieCodec:
    """Encode/decode SYN cookies for one listening socket."""

    def __init__(self, secret: bytes) -> None:
        if not secret:
            raise NetworkError("cookie secret must be non-empty")
        self._secret = secret

    @staticmethod
    def time_counter(now: float) -> int:
        """The slow counter ``t`` at simulation time *now*."""
        return int(now // COOKIE_TICK_SECONDS)

    @staticmethod
    def _mss_index(mss: int) -> int:
        """Largest table entry not exceeding the client's MSS."""
        index = _MSS_INDEX_CACHE.get(mss)
        if index is not None:
            return index
        best_index = 0
        best_value = -1
        for i, value in enumerate(MSS_TABLE):
            if value <= mss and value > best_value:
                best_value = value
                best_index = i
        _MSS_INDEX_CACHE[mss] = best_index
        return best_index

    def _hash24(self, src_ip: int, src_port: int, dst_port: int,
                client_isn: int, t: int) -> int:
        material = self._secret + _pack_material(
            src_ip, src_port, dst_port, client_isn & 0xFFFFFFFF, t)
        digest = _sha256(material).digest()
        return int.from_bytes(digest[:3], "big")

    def encode(self, now: float, src_ip: int, src_port: int, dst_port: int,
               client_isn: int, client_mss: int) -> int:
        """Build the cookie ISN for a SYN-ACK."""
        t = self.time_counter(now)
        mss_index = self._mss_index(client_mss)
        h = self._hash24(src_ip, src_port, dst_port, client_isn, t)
        return ((t % 32) << 27) | (mss_index << 24) | h

    def decode(self, now: float, cookie: int, src_ip: int, src_port: int,
               dst_port: int, client_isn: int) -> Optional[CookieState]:
        """Validate an echoed cookie; None when invalid or stale."""
        if not 0 <= cookie <= 0xFFFFFFFF:
            return None
        t_bits = (cookie >> 27) & 0x1F
        mss_index = (cookie >> 24) & 0x7
        h = cookie & 0xFFFFFF
        t_now = self.time_counter(now)
        for age in range(COOKIE_VALID_TICKS):
            t = t_now - age
            if t < 0:
                break
            if t % 32 != t_bits:
                continue
            if self._hash24(src_ip, src_port, dst_port, client_isn,
                            t) == h:
                return CookieState(mss=MSS_TABLE[mss_index], wscale=None)
        return None
