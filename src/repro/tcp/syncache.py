"""BSD-style SYN cache (Lemon 2002) — the paper's other §2.1 baseline.

Instead of a full TCB per half-open connection, the cache keeps a compact
record in a fixed-size hash table with per-bucket bounds. When a bucket
overflows, an entry in that bucket is evicted — which is exactly why the
paper notes caches fail against large botnets: sufficient attack rate
simply churns the cache.

This module grew from the flat 512×30 table the paper discusses into the
state representation the overload ladder (:mod:`repro.tcp.overload`)
drives:

* **Shards.** The bucket array is split across a power-of-two number of
  shards (bucket ``i`` belongs to shard ``i & (shard_count - 1)``).
  The simulator is single-threaded, so shards carry no locks — what they
  carry is shard-local accounting (`ShardStats`) and a shard-granular
  expiry API (:meth:`SynCache.expire_shard_older_than`) so a reaper can
  sweep one shard per timer-wheel tick instead of stalling on the whole
  table.
* **Pluggable overflow policies.** ``oldest-per-bucket`` is the
  historical behaviour and the default — byte-identical to the pre-shard
  cache, counter for counter. ``random-evict`` picks the victim with a
  :mod:`repro.sim.rng` stream (deterministic per seed). ``reject-new``
  refuses the insert instead of evicting, the conservative policy a
  kernel under memory pressure prefers.
* **Memory budget.** ``memory_budget`` (bytes) bounds the resident
  entries below the structural ``bucket_count × bucket_limit`` capacity
  (at ``entry_bytes`` per record); occupancy is exported in bytes so
  telemetry can chart cache pressure against the budget.
* **Lazy TTL.** With ``lifetime`` set, bucket probes purge entries that
  have outlived it before doing their own work, so a cache can stay
  fresh even between reaper sweeps.

The paper discusses but does not evaluate the cache; we include it so the
ablation benchmarks can compare all four server configurations.
"""

from __future__ import annotations

import hashlib
import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError

Flow = Tuple[int, int, int]  # (remote_ip, remote_port, local_port)

#: Overflow policies, in documentation order. ``oldest-per-bucket`` is
#: the pre-shard behaviour and stays the default.
OVERFLOW_POLICIES: Tuple[str, ...] = (
    "oldest-per-bucket", "random-evict", "reject-new")

#: Nominal bytes one resident record costs — the compact syncache struct
#: plus hash-table overhead, far below a full TCB (the whole point of
#: Lemon's design). Used for the memory-budget arithmetic.
ENTRY_BYTES = 64


@dataclass(slots=True)
class CacheEntry:
    """Compact half-open record (a fraction of a full TCB)."""

    flow: Flow
    remote_isn: int
    local_isn: int
    mss: int
    wscale: Optional[int]
    created_at: float


@dataclass(slots=True)
class ShardStats:
    """Shard-local accounting (the simulator is single-threaded, so
    shards need no locks — only their own counters)."""

    insertions: int = 0
    completions: int = 0
    evictions: int = 0
    expired: int = 0
    rejected: int = 0
    live: int = 0

    def as_payload(self) -> Dict[str, int]:
        return {
            "insertions": self.insertions,
            "completions": self.completions,
            "evictions": self.evictions,
            "expired": self.expired,
            "rejected": self.rejected,
            "live": self.live,
        }


def _default_shard_count(bucket_count: int) -> int:
    """Largest power of two ≤ min(8, bucket_count)."""
    count = 1
    while count * 2 <= min(8, bucket_count):
        count *= 2
    return count


class SynCache:
    """Sharded, bounded half-open cache with pluggable eviction."""

    def __init__(self, bucket_count: int = 512,
                 bucket_limit: int = 30,
                 secret: bytes = b"syncache",
                 shard_count: Optional[int] = None,
                 policy: str = "oldest-per-bucket",
                 rng: Optional[random.Random] = None,
                 memory_budget: Optional[int] = None,
                 entry_bytes: int = ENTRY_BYTES,
                 lifetime: Optional[float] = None) -> None:
        if bucket_count < 1 or bucket_limit < 1:
            raise SimulationError("bucket_count and bucket_limit must be >=1")
        if policy not in OVERFLOW_POLICIES:
            raise SimulationError(
                f"unknown overflow policy {policy!r} "
                f"(choose from {', '.join(OVERFLOW_POLICIES)})")
        if shard_count is None:
            shard_count = _default_shard_count(bucket_count)
        if shard_count < 1 or shard_count & (shard_count - 1):
            raise SimulationError(
                f"shard_count must be a power of two, got {shard_count!r}")
        if shard_count > bucket_count:
            raise SimulationError(
                f"shard_count {shard_count} exceeds bucket_count "
                f"{bucket_count}")
        if memory_budget is not None and memory_budget < entry_bytes:
            raise SimulationError(
                f"memory_budget {memory_budget} cannot hold even one "
                f"{entry_bytes}-byte entry")
        if entry_bytes < 1:
            raise SimulationError(
                f"entry_bytes must be >= 1, got {entry_bytes!r}")
        if lifetime is not None and lifetime <= 0:
            raise SimulationError(
                f"lifetime must be positive, got {lifetime!r}")
        self.bucket_count = bucket_count
        self.bucket_limit = bucket_limit
        self.policy = policy
        self.shard_count = shard_count
        self.memory_budget = memory_budget
        self.entry_bytes = entry_bytes
        self.lifetime = lifetime
        self._secret = secret
        self._shard_mask = shard_count - 1
        self._buckets: List["OrderedDict[Flow, CacheEntry]"] = [
            OrderedDict() for _ in range(bucket_count)
        ]
        self.shards: List[ShardStats] = [
            ShardStats() for _ in range(shard_count)
        ]
        self._live = 0
        if rng is None and policy == "random-evict":
            # Deterministic fallback when no repro.sim.rng stream is
            # supplied: derive the seed from the bucket-hash secret.
            rng = random.Random(int.from_bytes(
                hashlib.sha256(self._secret + b"/evict").digest()[:8],
                "big"))
        self._rng = rng
        #: Optional repro.obs CounterScope (attached by the listener).
        self.mib = None

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def _index_for(self, flow: Flow) -> int:
        material = (self._secret
                    + flow[0].to_bytes(4, "big")
                    + flow[1].to_bytes(2, "big")
                    + flow[2].to_bytes(2, "big"))
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:4], "big") % self.bucket_count

    def _bucket_for(self, flow: Flow) -> "OrderedDict[Flow, CacheEntry]":
        return self._buckets[self._index_for(flow)]

    def shard_for(self, flow: Flow) -> int:
        """Which shard owns *flow*'s bucket."""
        return self._index_for(flow) & self._shard_mask

    # ------------------------------------------------------------------
    # Occupancy
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        # Maintained incrementally on every insert/complete/evict/expire
        # — O(1), where the pre-shard cache summed every bucket. The
        # syncache_churn micro-benchmark asserts it against a recount.
        return self._live

    def occupancy_recount(self) -> int:
        """O(buckets) recount of resident entries — the audit value the
        incremental ``len`` must always equal (invariant checker and the
        churn micro-benchmark both assert it)."""
        return sum(len(bucket) for bucket in self._buckets)

    @property
    def capacity(self) -> int:
        """Structural bound: ``bucket_count × bucket_limit``."""
        return self.bucket_count * self.bucket_limit

    @property
    def max_entries(self) -> int:
        """Effective bound: structural capacity clipped by the budget."""
        if self.memory_budget is None:
            return self.capacity
        return min(self.capacity, self.memory_budget // self.entry_bytes)

    @property
    def occupancy_bytes(self) -> int:
        """Resident entries at ``entry_bytes`` each — what the memory
        budget bounds and telemetry charts."""
        return self._live * self.entry_bytes

    @property
    def occupancy_fraction(self) -> float:
        """Fill fraction of the *effective* capacity (watermark input)."""
        limit = self.max_entries
        return self._live / limit if limit else 1.0

    # ------------------------------------------------------------------
    # Aggregate counters (sum of the shard-local ones)
    # ------------------------------------------------------------------
    @property
    def insertions(self) -> int:
        return sum(shard.insertions for shard in self.shards)

    @property
    def completions(self) -> int:
        return sum(shard.completions for shard in self.shards)

    @property
    def evictions(self) -> int:
        return sum(shard.evictions for shard in self.shards)

    @property
    def expired(self) -> int:
        return sum(shard.expired for shard in self.shards)

    @property
    def rejected(self) -> int:
        """Inserts refused by the ``reject-new`` policy."""
        return sum(shard.rejected for shard in self.shards)

    def shard_stats(self) -> List[Dict[str, int]]:
        """Shard-local accounting snapshots, shard order."""
        return [shard.as_payload() for shard in self.shards]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, entry: CacheEntry) -> bool:
        """Add a half-open record, applying the overflow policy if the
        bucket (or the memory budget) is full.

        Returns ``True`` when the record is resident afterwards (fresh
        insert or SYN retransmission), ``False`` when the ``reject-new``
        policy refused it.
        """
        index = self._index_for(entry.flow)
        bucket = self._buckets[index]
        shard = self.shards[index & self._shard_mask]
        if self.lifetime is not None:
            self._lazy_expire(index, bucket, shard,
                              entry.created_at - self.lifetime)
        if entry.flow in bucket:
            return True  # SYN retransmission
        over_budget = (self.memory_budget is not None
                       and self._live >= self.max_entries)
        if len(bucket) >= self.bucket_limit or over_budget:
            if self.policy == "reject-new":
                shard.rejected += 1
                if self.mib is not None:
                    self.mib.incr("SynCacheRejects")
                return False
            self._evict_one(index, bucket)
        bucket[entry.flow] = entry
        shard.insertions += 1
        shard.live += 1
        self._live += 1
        if self.mib is not None:
            self.mib.incr("SynCacheAdded")
        return True

    def _evict_one(self, index: int,
                   bucket: "OrderedDict[Flow, CacheEntry]") -> None:
        """Evict one record to make room for an insert into *bucket*.

        The victim normally comes from the target bucket itself; only
        when the *budget* forced the eviction and the target bucket is
        empty does the scan walk forward (deterministic bucket order)
        to the next non-empty bucket. The caller guarantees at least
        one record is resident, so the walk terminates.
        """
        victim_index = index
        if not bucket:
            victim_index = (index + 1) % self.bucket_count
            while not self._buckets[victim_index]:
                victim_index = (victim_index + 1) % self.bucket_count
            bucket = self._buckets[victim_index]
        if self.policy == "random-evict":
            victim = self._rng.choice(list(bucket))
            del bucket[victim]
        else:
            bucket.popitem(last=False)
        shard = self.shards[victim_index & self._shard_mask]
        shard.evictions += 1
        shard.live -= 1
        self._live -= 1
        if self.mib is not None:
            self.mib.incr("SynCacheEvictions")

    def complete(self, flow: Flow) -> Optional[CacheEntry]:
        """Remove and return the record for a completing ACK."""
        index = self._index_for(flow)
        bucket = self._buckets[index]
        entry = bucket.pop(flow, None)
        if entry is not None:
            shard = self.shards[index & self._shard_mask]
            shard.completions += 1
            shard.live -= 1
            self._live -= 1
            if self.mib is not None:
                self.mib.incr("SynCacheHits")
        return entry

    # ------------------------------------------------------------------
    # Expiry
    # ------------------------------------------------------------------
    def _lazy_expire(self, index: int,
                     bucket: "OrderedDict[Flow, CacheEntry]",
                     shard: ShardStats, cutoff: float) -> None:
        stale = [flow for flow, e in bucket.items()
                 if e.created_at < cutoff]
        if not stale:
            return
        for flow in stale:
            del bucket[flow]
        reaped = len(stale)
        shard.expired += reaped
        shard.live -= reaped
        self._live -= reaped
        if self.mib is not None:
            self.mib.incr("SynCacheExpired", reaped)

    def expire_older_than(self, cutoff: float) -> int:
        """Reap entries created before *cutoff*; returns the count."""
        reaped = 0
        for shard_index in range(self.shard_count):
            reaped += self.expire_shard_older_than(shard_index, cutoff)
        return reaped

    def expire_shard_older_than(self, shard_index: int,
                                cutoff: float) -> int:
        """Reap one shard's stale entries — the timer-wheel-friendly
        sweep unit: a rotating reaper touches ``buckets/shards`` buckets
        per tick instead of the whole table."""
        if not 0 <= shard_index < self.shard_count:
            raise SimulationError(
                f"shard index {shard_index} out of range "
                f"[0, {self.shard_count})")
        shard = self.shards[shard_index]
        reaped = 0
        for index in range(shard_index, self.bucket_count,
                           self.shard_count):
            bucket = self._buckets[index]
            stale = [flow for flow, e in bucket.items()
                     if e.created_at < cutoff]
            for flow in stale:
                del bucket[flow]
                reaped += 1
        shard.expired += reaped
        shard.live -= reaped
        self._live -= reaped
        if reaped and self.mib is not None:
            self.mib.incr("SynCacheExpired", reaped)
        return reaped

    def oldest_created_at(self) -> Optional[float]:
        """Creation time of the oldest live record (None when empty).

        O(n); used by the runtime invariant checker to assert that the
        reaper keeps every record younger than its lifetime bound.
        """
        oldest: Optional[float] = None
        for bucket in self._buckets:
            for entry in bucket.values():
                if oldest is None or entry.created_at < oldest:
                    oldest = entry.created_at
        return oldest

    # ------------------------------------------------------------------
    # Pressure retuning
    # ------------------------------------------------------------------
    def set_bucket_limit(self, limit: int) -> int:
        """Retune the per-bucket bound, evicting oldest-first on shrink.

        The memory-pressure injector uses this to model the cache losing
        pages mid-attack. Returns how many records were evicted.
        """
        if limit < 1:
            raise SimulationError(f"bucket_limit must be >= 1, got {limit}")
        reaped = 0
        for index, bucket in enumerate(self._buckets):
            shard = self.shards[index & self._shard_mask]
            while len(bucket) > limit:
                bucket.popitem(last=False)
                shard.evictions += 1
                shard.live -= 1
                reaped += 1
        self._live -= reaped
        if reaped and self.mib is not None:
            self.mib.incr("SynCacheEvictions", reaped)
        self.bucket_limit = limit
        return reaped
