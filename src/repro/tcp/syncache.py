"""BSD-style SYN cache (Lemon 2002) — the paper's other §2.1 baseline.

Instead of a full TCB per half-open connection, the cache keeps a compact
record in a fixed-size hash table with per-bucket bounds. When a bucket
overflows, the oldest entry in that bucket is evicted — which is exactly
why the paper notes caches fail against large botnets: sufficient attack
rate simply churns the cache.

The paper discusses but does not evaluate the cache; we include it so the
ablation benchmarks can compare all four server configurations.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import SimulationError

Flow = Tuple[int, int, int]  # (remote_ip, remote_port, local_port)


@dataclass(slots=True)
class CacheEntry:
    """Compact half-open record (a fraction of a full TCB)."""

    flow: Flow
    remote_isn: int
    local_isn: int
    mss: int
    wscale: Optional[int]
    created_at: float


class SynCache:
    """Fixed-size, bucketed half-open cache with per-bucket eviction."""

    def __init__(self, bucket_count: int = 512,
                 bucket_limit: int = 30,
                 secret: bytes = b"syncache") -> None:
        if bucket_count < 1 or bucket_limit < 1:
            raise SimulationError("bucket_count and bucket_limit must be >=1")
        self.bucket_count = bucket_count
        self.bucket_limit = bucket_limit
        self._secret = secret
        self._buckets: List["OrderedDict[Flow, CacheEntry]"] = [
            OrderedDict() for _ in range(bucket_count)
        ]
        self.evictions = 0
        self.insertions = 0
        self.completions = 0
        self.expired = 0
        #: Optional repro.obs CounterScope (attached by the listener).
        self.mib = None

    def _bucket_for(self, flow: Flow) -> "OrderedDict[Flow, CacheEntry]":
        material = (self._secret
                    + flow[0].to_bytes(4, "big")
                    + flow[1].to_bytes(2, "big")
                    + flow[2].to_bytes(2, "big"))
        digest = hashlib.sha256(material).digest()
        index = int.from_bytes(digest[:4], "big") % self.bucket_count
        return self._buckets[index]

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets)

    @property
    def capacity(self) -> int:
        return self.bucket_count * self.bucket_limit

    def insert(self, entry: CacheEntry) -> None:
        """Add a half-open record, evicting the bucket's oldest if needed."""
        bucket = self._bucket_for(entry.flow)
        if entry.flow in bucket:
            return  # SYN retransmission
        if len(bucket) >= self.bucket_limit:
            bucket.popitem(last=False)
            self.evictions += 1
            if self.mib is not None:
                self.mib.incr("SynCacheEvictions")
        bucket[entry.flow] = entry
        self.insertions += 1
        if self.mib is not None:
            self.mib.incr("SynCacheAdded")

    def complete(self, flow: Flow) -> Optional[CacheEntry]:
        """Remove and return the record for a completing ACK."""
        bucket = self._bucket_for(flow)
        entry = bucket.pop(flow, None)
        if entry is not None:
            self.completions += 1
            if self.mib is not None:
                self.mib.incr("SynCacheHits")
        return entry

    def expire_older_than(self, cutoff: float) -> int:
        """Reap entries created before *cutoff*; returns the count."""
        reaped = 0
        for bucket in self._buckets:
            stale = [flow for flow, e in bucket.items()
                     if e.created_at < cutoff]
            for flow in stale:
                del bucket[flow]
                reaped += 1
        self.expired += reaped
        if reaped and self.mib is not None:
            self.mib.incr("SynCacheExpired", reaped)
        return reaped

    def oldest_created_at(self) -> Optional[float]:
        """Creation time of the oldest live record (None when empty).

        O(n); used by the runtime invariant checker to assert that the
        reaper keeps every record younger than its lifetime bound.
        """
        oldest: Optional[float] = None
        for bucket in self._buckets:
            for entry in bucket.values():
                if oldest is None or entry.created_at < oldest:
                    oldest = entry.created_at
        return oldest

    def set_bucket_limit(self, limit: int) -> int:
        """Retune the per-bucket bound, evicting oldest-first on shrink.

        The memory-pressure injector uses this to model the cache losing
        pages mid-attack. Returns how many records were evicted.
        """
        if limit < 1:
            raise SimulationError(f"bucket_limit must be >= 1, got {limit}")
        reaped = 0
        for bucket in self._buckets:
            while len(bucket) > limit:
                bucket.popitem(last=False)
                reaped += 1
        self.evictions += reaped
        if reaped and self.mib is not None:
            self.mib.incr("SynCacheEvictions", reaped)
        self.bucket_limit = limit
        return reaped
