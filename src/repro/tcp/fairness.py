"""Puzzle Fair Queuing (§7: "our work ... can be a catalyst for future
exploration of fairness schemes, such as Puzzle Fair Queuing").

The paper's deployed mechanism prices every requester identically, which it
flags as a fairness concern: one flooding source and one occasional client
pay the same per connection. This extension prices *per source*: the more
connections a source has recently established, the more difficulty bits its
next puzzle carries.

Design constraints honoured:

* **Bounded state.** The per-source accounting is a fixed-size LRU of
  recent establishment counts over a sliding window (two rotating
  buckets) — O(table_size), independent of attack rate; an evicted source
  simply falls back to the base difficulty. This deliberately relaxes the
  paper's strict statelessness *for established connections only* (state
  the server already holds anyway); half-open handling stays stateless.
* **Self-contained verification.** The solution block already echoes its
  parameters in our wire model; the verifier recomputes the source's
  *required* difficulty from the same table and accepts any solution at or
  above it — so a requirement that rose between challenge and solution
  only costs the client a retry, never a protocol violation.

Effect (see ``extensions.fair_queuing_experiment``): light clients pay the
base price while a flooding source's price doubles per escalation step,
throttling it geometrically — per-source rate ≈ hash_rate/(k·2^(m_base +
extra − 1)).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import ExperimentError
from repro.puzzles.params import PuzzleParams


@dataclass
class FairnessConfig:
    """Per-source difficulty escalation policy."""

    base_params: PuzzleParams = field(
        default_factory=lambda: PuzzleParams(k=1, m=12))
    #: Extra difficulty bits cap (price multiplier cap = 2^max_extra_bits).
    max_extra_bits: int = 8
    #: Establishments per window a source may make at the base price.
    free_allowance: int = 4
    #: Sliding-window length (seconds) for the counts.
    window: float = 10.0
    #: LRU capacity: distinct sources tracked.
    table_size: int = 4096

    def __post_init__(self) -> None:
        if self.max_extra_bits < 0:
            raise ExperimentError("max_extra_bits must be >= 0")
        if self.base_params.m + self.max_extra_bits > \
                8 * self.base_params.length_bytes:
            raise ExperimentError(
                "base m + max_extra_bits exceeds the pre-image length")
        if self.free_allowance < 1:
            raise ExperimentError("free_allowance must be >= 1")
        if self.window <= 0:
            raise ExperimentError("window must be positive")
        if self.table_size < 1:
            raise ExperimentError("table_size must be >= 1")


class FairQueuingPolicy:
    """Bounded per-source establishment accounting → difficulty."""

    def __init__(self, config: FairnessConfig) -> None:
        self.config = config
        # Two rotating half-window buckets approximate a sliding window.
        self._current: "OrderedDict[int, int]" = OrderedDict()
        self._previous: "OrderedDict[int, int]" = OrderedDict()
        self._rotated_at = 0.0
        self.evictions = 0

    # ------------------------------------------------------------------
    def _rotate_if_due(self, now: float) -> None:
        half = self.config.window / 2.0
        while now - self._rotated_at >= half:
            self._previous = self._current
            self._current = OrderedDict()
            self._rotated_at += half

    def _count(self, src_ip: int, now: float) -> int:
        self._rotate_if_due(now)
        return (self._current.get(src_ip, 0)
                + self._previous.get(src_ip, 0))

    # ------------------------------------------------------------------
    def record_established(self, src_ip: int, now: float) -> None:
        """Account one accepted connection to *src_ip*."""
        self._rotate_if_due(now)
        bucket = self._current
        if src_ip in bucket:
            bucket[src_ip] += 1
            bucket.move_to_end(src_ip)
            return
        if len(bucket) >= self.config.table_size:
            bucket.popitem(last=False)
            self.evictions += 1
        bucket[src_ip] = 1

    def extra_bits(self, src_ip: int, now: float) -> int:
        """Escalation: log2 of the window count beyond the allowance."""
        count = self._count(src_ip, now)
        if count < self.config.free_allowance:
            return 0
        extra = int(math.log2(count / self.config.free_allowance)) + 1
        return min(extra, self.config.max_extra_bits)

    def difficulty_for(self, src_ip: int, now: float) -> PuzzleParams:
        """The (k, m) this source must solve right now."""
        base = self.config.base_params
        extra = self.extra_bits(src_ip, now)
        return PuzzleParams(k=base.k, m=base.m + extra,
                            length_bytes=base.length_bytes)

    def tracked_sources(self) -> int:
        return len(set(self._current) | set(self._previous))
