"""Transmission Control Blocks and handshake states.

Only the states the evaluation exercises are modelled; data-transfer
sequencing beyond the handshake is abstracted (see
:mod:`repro.tcp.connection`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.engine import Event


class TCBState(enum.Enum):
    """Handshake-relevant connection states."""

    SYN_SENT = "syn-sent"        # client: SYN out, awaiting SYN-ACK
    SOLVING = "solving"          # client: challenged, computing solutions
    SYN_RECEIVED = "syn-received"  # server: half-open, in the listen queue
    ESTABLISHED = "established"
    CLOSED = "closed"
    RESET = "reset"


class EstablishPath(enum.Enum):
    """How a server-side connection came to be established — drives the
    per-path accounting behind the paper's sparklines and Figure 11."""

    NORMAL = "normal"        # stock three-way handshake via the listen queue
    COOKIE = "cookie"        # stateless SYN-cookie validation
    SYNCACHE = "syncache"    # compact-cache half-open
    PUZZLE = "puzzle"        # verified challenge solution


@dataclass(slots=True)
class HalfOpenTCB:
    """Server-side state for a half-open (SYN_RECEIVED) connection.

    This is precisely the state a SYN flood tries to exhaust: one exists
    per unacknowledged SYN when no stateless defense is active.
    """

    remote_ip: int
    remote_port: int
    local_port: int
    remote_isn: int
    local_isn: int
    mss: int
    wscale: Optional[int]
    created_at: float
    retransmits: int = 0
    #: Per-entry scaling of every retransmission timeout, drawn at
    #: creation. Models the aggregate lifetime variance a real SYN queue
    #: entry sees (timer-wheel granularity, pressure pruning): without
    #: it, half-opens created in one engagement burst expire in one wave,
    #: and each wave hands the freed backlog to whoever floods fastest.
    timeout_scale: float = 1.0
    timer: Optional[Event] = field(default=None, repr=False)

    @property
    def flow(self) -> tuple:
        """Demux key from the server's perspective."""
        return (self.remote_ip, self.remote_port, self.local_port)

    def cancel_timer(self) -> None:
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None
