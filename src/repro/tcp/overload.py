"""Graceful-degradation ladder: admission control + overload watchdog.

The paper's premise (§2.1) is that each SYN-flood defense fails
differently under state exhaustion — caches churn, cookies shed options,
puzzles price everyone. What a production kernel actually does is *chain*
the failure modes into a ladder so the server degrades instead of
falling off a cliff. This module provides the two rungs the TCP stack
itself cannot express:

* :class:`AdmissionControl` — a deterministic token-bucket SYN rate
  limiter at the listener's front door, with per-source-prefix tiers.
  Heavy hitters are identified with the :class:`~repro.obs.sketch.
  SpaceSaving` top-K summary (bounded memory, deterministic eviction),
  and once a prefix's SYN count crosses ``heavy_hitter_min`` it is
  moved onto its own, tighter bucket. Everything is sim-time lazy-refill
  arithmetic — no timers, no wall clock — so admission decisions are
  bit-identical across runs, engines, and fabrics.
* :class:`OverloadWatchdog` — an engine tap (one
  :class:`~repro.sim.process.AlignedPeriodicProcess`, absolute-aligned
  so its samples merge across sweep cells) driving the

  ::

      NORMAL -> PRESSURE -> OVERLOAD -> RECOVERY -> NORMAL
                   ^______________________|

  state machine off three deterministic signals: syncache occupancy
  (fraction of the *effective*, budget-clipped capacity), the
  accept-queue wait p95 **over the last interval** (bucket-delta
  quantile, so the signal decays when the queue drains — a cumulative
  quantile never would), and :class:`~repro.hosts.host.CPUResource`
  saturation (busy-seconds delta over the interval). Transitions emit
  ``overload-state`` tracepoints and the state rides a
  ``repro_overload_state`` gauge series; on entering OVERLOAD the
  watchdog can escalate puzzle difficulty through the same
  ``set_difficulty`` sysctl the :mod:`repro.tcp.adaptive` controller
  drives, restoring it on the way back to NORMAL.

The third rung — the syncookie fallback with occupancy hysteresis —
lives in the listener itself (:meth:`~repro.tcp.listener.ListenSocket.
_syncache_insert`), configured by the same :class:`OverloadConfig`.

Everything is fully detached by default: ``ScenarioConfig.overload``
is ``None``, no watchdog or limiter is constructed, and runs stay
byte-identical to a build without this module.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.obs.sketch import SpaceSaving
from repro.obs.timeseries import TimeSeries
from repro.sim.process import AlignedPeriodicProcess
from repro.tcp.adaptive import escalated_params
from repro.tcp.constants import DefenseMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.tcp.listener import ListenSocket


class OverloadState(enum.Enum):
    """Watchdog ladder states; values are the gauge encoding."""

    NORMAL = 0
    PRESSURE = 1
    OVERLOAD = 2
    RECOVERY = 3


@dataclass(frozen=True)
class OverloadConfig:
    """One knob bundle for the whole degradation ladder.

    Frozen (and built from plain scalars) so it pickles across sweep
    workers and canonicalizes into result-cache keys unchanged —
    the same contract as :class:`~repro.obs.timeseries.TelemetrySpec`.
    """

    # -- sharded syncache construction -------------------------------
    syncache_buckets: int = 512
    syncache_bucket_limit: int = 30
    syncache_shards: Optional[int] = None
    syncache_policy: str = "oldest-per-bucket"
    #: Bytes the cache may hold resident (None = structural capacity).
    syncache_memory_budget: Optional[int] = None
    #: Reap cache records older than this (None = churn-only baseline).
    syncache_lifetime: Optional[float] = None

    # -- syncookie fallback (listener hysteresis) --------------------
    #: Occupancy fraction at which the listener stops inserting and
    #: answers with stateless cookies. None disables the fallback rung.
    high_watermark: Optional[float] = 0.85
    #: Occupancy fraction below which the cache re-arms.
    low_watermark: float = 0.60

    # -- admission control -------------------------------------------
    #: Global SYN admission rate (tokens/second). None disables the rung.
    syn_rate_limit: Optional[float] = None
    syn_burst: float = 64.0
    #: Space-Saving slots for heavy-hitter tracking.
    heavy_hitter_slots: int = 16
    #: Per-prefix rate for heavy hitters (None = global bucket only).
    heavy_hitter_rate: Optional[float] = None
    #: SYN count at which a prefix is promoted to its own tier.
    heavy_hitter_min: int = 128
    #: Source prefix width for the tiers (32 = exact hosts).
    prefix_bits: int = 32

    # -- watchdog -----------------------------------------------------
    watchdog_interval: float = 0.25
    #: Occupancy fraction that takes NORMAL to PRESSURE.
    pressure_occupancy: float = 0.60
    #: Occupancy fraction that takes PRESSURE to OVERLOAD.
    overload_occupancy: float = 0.90
    #: Interval accept-wait p95 (seconds) counting toward OVERLOAD.
    accept_wait_p95: float = 1.0
    #: CPU busy fraction over the interval counting toward OVERLOAD.
    cpu_saturation: float = 0.90
    #: Seconds RECOVERY must hold below the pressure thresholds
    #: before the watchdog declares NORMAL.
    recovery_hold: float = 2.0
    #: Puzzle-difficulty escalation on entering OVERLOAD (added to the
    #: configured m, clamped to ``escalate_ceiling``). 0 = no escalation.
    escalate_m: int = 0
    escalate_ceiling: int = 22

    def __post_init__(self) -> None:
        if self.high_watermark is not None:
            if not 0.0 < self.high_watermark <= 1.0:
                raise SimulationError(
                    f"high_watermark must be in (0, 1], got "
                    f"{self.high_watermark!r}")
            if not 0.0 <= self.low_watermark < self.high_watermark:
                raise SimulationError(
                    f"low_watermark {self.low_watermark!r} must sit below "
                    f"high_watermark {self.high_watermark!r}")
        if self.syn_rate_limit is not None and self.syn_rate_limit <= 0:
            raise SimulationError(
                f"syn_rate_limit must be positive, got "
                f"{self.syn_rate_limit!r}")
        if self.syn_burst < 1.0:
            raise SimulationError(
                f"syn_burst must be >= 1, got {self.syn_burst!r}")
        if self.heavy_hitter_rate is not None \
                and self.heavy_hitter_rate <= 0:
            raise SimulationError(
                f"heavy_hitter_rate must be positive, got "
                f"{self.heavy_hitter_rate!r}")
        if not 0 <= self.prefix_bits <= 32:
            raise SimulationError(
                f"prefix_bits must be in [0, 32], got {self.prefix_bits!r}")
        if self.watchdog_interval <= 0:
            raise SimulationError(
                f"watchdog_interval must be positive, got "
                f"{self.watchdog_interval!r}")
        if not (0.0 < self.pressure_occupancy
                <= self.overload_occupancy <= 1.0):
            raise SimulationError(
                "need 0 < pressure_occupancy <= overload_occupancy <= 1, "
                f"got {self.pressure_occupancy!r} / "
                f"{self.overload_occupancy!r}")
        if self.recovery_hold < 0:
            raise SimulationError(
                f"recovery_hold must be >= 0, got {self.recovery_hold!r}")
        if self.escalate_m < 0:
            raise SimulationError(
                f"escalate_m must be >= 0, got {self.escalate_m!r}")


class TokenBucket:
    """Sim-time lazy-refill token bucket (deterministic, timer-free).

    Tokens accrue continuously at ``rate`` per second up to ``burst``;
    :meth:`allow` spends one token when a full one is available. All
    arithmetic happens on the caller's clock reads, so two runs feeding
    the same arrival times make the same decisions bit for bit.
    """

    __slots__ = ("rate", "burst", "tokens", "last_refill")

    def __init__(self, rate: float, burst: float,
                 now: float = 0.0) -> None:
        if rate <= 0:
            raise SimulationError(
                f"token rate must be positive, got {rate!r}")
        if burst < 1.0:
            raise SimulationError(
                f"burst must be >= 1 token, got {burst!r}")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.last_refill = now

    def allow(self, now: float) -> bool:
        tokens = self.tokens + (now - self.last_refill) * self.rate
        if tokens > self.burst:
            tokens = self.burst
        self.last_refill = now
        if tokens >= 1.0:
            self.tokens = tokens - 1.0
            return True
        self.tokens = tokens
        return False


class AdmissionControl:
    """Listener front-door SYN rate limiter with heavy-hitter tiers.

    Every SYN source (masked to ``prefix_bits``) feeds a
    :class:`SpaceSaving` summary. Sources the summary reports above
    ``heavy_hitter_min`` are demoted to their own per-prefix bucket at
    ``heavy_hitter_rate``; a heavy hitter must pass its tier **and**
    the global bucket, so the flood cannot starve light sources by
    draining the global bucket alone — its own tier throttles it first.
    Memory is O(heavy_hitter_slots): tier buckets are pruned as their
    prefixes fall out of the summary.
    """

    def __init__(self, config: OverloadConfig, now: float = 0.0) -> None:
        if config.syn_rate_limit is None:
            raise SimulationError(
                "AdmissionControl needs syn_rate_limit set")
        self.config = config
        self._mask = ((0xFFFFFFFF << (32 - config.prefix_bits))
                      & 0xFFFFFFFF if config.prefix_bits else 0)
        self.bucket = TokenBucket(config.syn_rate_limit,
                                  config.syn_burst, now)
        self.sources = SpaceSaving(config.heavy_hitter_slots)
        self._tiers: Dict[int, TokenBucket] = {}
        self.allowed = 0
        self.dropped = 0
        self.tier_drops = 0

    def admit(self, src_ip: int, now: float) -> bool:
        """Decide one SYN; updates the heavy-hitter summary either way."""
        key = src_ip & self._mask
        self.sources.update(key)
        config = self.config
        if (config.heavy_hitter_rate is not None
                and self.sources.count(key) >= config.heavy_hitter_min):
            tier = self._tiers.get(key)
            if tier is None:
                if len(self._tiers) >= 2 * config.heavy_hitter_slots:
                    self._prune_tiers()
                tier = TokenBucket(config.heavy_hitter_rate,
                                   config.syn_burst, now)
                self._tiers[key] = tier
            if not tier.allow(now):
                self.tier_drops += 1
                self.dropped += 1
                return False
        if not self.bucket.allow(now):
            self.dropped += 1
            return False
        self.allowed += 1
        return True

    def _prune_tiers(self) -> None:
        # Drop tier buckets whose prefix the summary has since evicted
        # (sorted iteration keeps the prune order deterministic).
        for key in sorted(self._tiers):
            if key not in self.sources:
                del self._tiers[key]

    def snapshot(self) -> Dict[str, object]:
        return {
            "allowed": self.allowed,
            "dropped": self.dropped,
            "tier_drops": self.tier_drops,
            "tiers": len(self._tiers),
            "sources": self.sources.as_payload(),
        }


class OverloadWatchdog:
    """Engine tap driving the NORMAL→PRESSURE→OVERLOAD→RECOVERY ladder.

    One aligned periodic tick reads three deterministic signals —
    syncache occupancy fraction, interval accept-wait p95, and CPU busy
    fraction — and walks the state machine. See the module docstring
    for the transition rules; :meth:`snapshot` is the payload that rides
    the ``ScenarioSummary.overload`` block.
    """

    def __init__(self, listener: "ListenSocket",
                 config: OverloadConfig) -> None:
        self.listener = listener
        self.config = config
        self.host = listener.host
        self.engine = self.host.engine
        self.state = OverloadState.NORMAL
        self.transitions: Dict[str, int] = {}
        self.time_in_state: Dict[str, float] = {
            state.name: 0.0 for state in OverloadState}
        self.ticks = 0
        self.peak_occupancy = 0.0
        self.peak_occupancy_bytes = 0
        self.series = TimeSeries("repro_overload_state", "gauge",
                                 config.watchdog_interval)
        self._entered_at = self.engine.now
        self._recovery_since: Optional[float] = None
        self._last_busy = self.host.cpu.busy_seconds(self.engine.now)
        self._wait_counts: Dict[int, int] = {}
        self._wait_total = 0
        self._base_params = None
        self._process = AlignedPeriodicProcess(
            self.engine, self._tick, config.watchdog_interval)
        listener.watchdog = self

    # ------------------------------------------------------------------
    def start(self, delay: float = 0.0) -> None:
        self._process.start(delay)

    def stop(self) -> None:
        self._process.stop()
        self._settle_time()

    def _settle_time(self) -> None:
        now = self.engine.now
        self.time_in_state[self.state.name] += now - self._entered_at
        self._entered_at = now

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def _occupancy(self) -> float:
        cache = self.listener.config.syncache
        if cache is not None:
            return cache.occupancy_fraction
        # No cache (cookies/puzzles/stock): the listen queue is the
        # exhaustible state; its fill fraction plays the same role.
        queue = self.listener.listen_queue
        backlog = queue.backlog
        return len(queue._table) / backlog if backlog else 1.0

    def _cpu_fraction(self) -> float:
        busy = self.host.cpu.busy_seconds(self.engine.now)
        fraction = (busy - self._last_busy) / self.config.watchdog_interval
        self._last_busy = busy
        return fraction

    def _wait_p95(self) -> float:
        """Accept-wait p95 over the last interval (bucket-delta walk).

        A cumulative quantile never decays once an overload has filled
        the histogram, so RECOVERY would be unreachable; diffing the
        log-bucket counts gives a windowed quantile from the same exact
        counters (bucket upper bound — conservative).
        """
        hist = self.host.obs.hist.get("accept_wait")
        if hist is None:
            return 0.0
        previous, prev_total = self._wait_counts, self._wait_total
        self._wait_counts = dict(hist.counts)
        self._wait_total = hist.count
        window = self._wait_total - prev_total
        if window <= 0:
            return 0.0
        rank = 0.95 * window
        cumulative = 0
        for index in sorted(self._wait_counts):
            delta = self._wait_counts[index] - previous.get(index, 0)
            if delta <= 0:
                continue
            cumulative += delta
            if cumulative >= rank:
                return hist.bucket_bounds(index)[1]
        return hist.bucket_bounds(max(self._wait_counts))[1]

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self.ticks += 1
        config = self.config
        occupancy = self._occupancy()
        cpu = self._cpu_fraction()
        wait_p95 = self._wait_p95()
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy
        cache = self.listener.config.syncache
        if cache is not None \
                and cache.occupancy_bytes > self.peak_occupancy_bytes:
            self.peak_occupancy_bytes = cache.occupancy_bytes

        hot = (occupancy >= config.overload_occupancy
               or (wait_p95 >= config.accept_wait_p95
                   and cpu >= config.cpu_saturation))
        warm = (occupancy >= config.pressure_occupancy
                or cpu >= config.cpu_saturation)
        state = self.state
        now = self.engine.now
        if state is OverloadState.NORMAL:
            if hot:
                self._transition(OverloadState.OVERLOAD, occupancy, cpu)
            elif warm:
                self._transition(OverloadState.PRESSURE, occupancy, cpu)
        elif state is OverloadState.PRESSURE:
            if hot:
                self._transition(OverloadState.OVERLOAD, occupancy, cpu)
            elif not warm:
                self._transition(OverloadState.NORMAL, occupancy, cpu)
        elif state is OverloadState.OVERLOAD:
            if not warm and not hot:
                self._recovery_since = now
                self._transition(OverloadState.RECOVERY, occupancy, cpu)
        else:  # RECOVERY
            if hot:
                self._recovery_since = None
                self._transition(OverloadState.OVERLOAD, occupancy, cpu)
            elif warm:
                # Pressure re-appeared: keep holding, restart the clock.
                self._recovery_since = now
            elif now - self._recovery_since >= config.recovery_hold:
                self._recovery_since = None
                self._transition(OverloadState.NORMAL, occupancy, cpu)
        self.series.record(now, float(self.state.value))

    def _transition(self, to: OverloadState, occupancy: float,
                    cpu: float) -> None:
        source = self.state
        now = self.engine.now
        self.time_in_state[source.name] += now - self._entered_at
        self._entered_at = now
        self.state = to
        edge = f"{source.name}->{to.name}"
        self.transitions[edge] = self.transitions.get(edge, 0) + 1
        listener = self.listener
        tracer = listener._tracer
        if tracer.enabled:
            tracer.emit(now, self.host.name, "overload-state",
                        (0, 0, listener.port), src=source.name,
                        dst=to.name, occupancy=round(occupancy, 4),
                        cpu=round(cpu, 4))
        if self.config.escalate_m > 0 \
                and listener.config.mode is DefenseMode.PUZZLES:
            if to is OverloadState.OVERLOAD and self._base_params is None:
                params = listener.config.puzzle_params
                self._base_params = params
                listener.set_difficulty(*escalated_params(
                    params, self.config.escalate_m,
                    self.config.escalate_ceiling))
            elif to is OverloadState.NORMAL \
                    and self._base_params is not None:
                params = self._base_params
                self._base_params = None
                listener.set_difficulty(params.k, params.m)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly digest for the ``overload`` summary block."""
        self._settle_time()
        listener = self.listener
        cache = listener.config.syncache
        payload: Dict[str, object] = {
            "state": self.state.name,
            "ticks": self.ticks,
            "transitions": dict(sorted(self.transitions.items())),
            "time_in_state": {name: self.time_in_state[name]
                              for name in sorted(self.time_in_state)},
            "peak_occupancy": self.peak_occupancy,
            "peak_occupancy_bytes": self.peak_occupancy_bytes,
            "cookie_fallbacks": listener.stats.synacks_cookie_fallback,
            "series": self.series.as_payload(),
        }
        if cache is not None:
            payload["syncache"] = {
                "policy": cache.policy,
                "shards": cache.shard_count,
                "max_entries": cache.max_entries,
                "memory_budget": cache.memory_budget,
                "occupancy_bytes": cache.occupancy_bytes,
                "rejected": cache.rejected,
                "shard_stats": cache.shard_stats(),
            }
        if listener.admission is not None:
            payload["admission"] = listener.admission.snapshot()
        return payload
