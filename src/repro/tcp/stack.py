"""Per-host TCP stack: demultiplexing, connection tables, RST generation.

The stack owns three tables —

* listeners by local port,
* client (active-open) connections by (local_port, remote_ip, remote_port),
* server (passive-open) connections by the same key —

and implements the catch-all RFC 793 rule the paper's deception mechanism
relies on: a non-SYN segment matching no connection draws an RST. That is
how a host that was silently ignored by an overloaded puzzle server finds
out, on first data, that it never really connected.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, Tuple

import random

from repro.errors import NetworkError
from repro.net.packet import FLAG_RST, Packet
from repro.tcp.connection import ClientConnConfig, ClientConnection, \
    ServerConnection
from repro.tcp.listener import DefenseConfig, ListenSocket

Key = Tuple[int, int, int]  # (local_port, remote_ip, remote_port)

EPHEMERAL_BASE = 32768
EPHEMERAL_SPAN = 28232


class HostLike(Protocol):
    """What the stack needs from its host."""

    address: int
    name: str
    engine: object
    rng: random.Random
    cpu: object
    hash_counter: object
    obs: object   # repro.obs.Observability hub shared engine-wide
    mib: object   # this host's repro.obs CounterScope

    def send(self, packet: Packet) -> None: ...  # noqa: E704


class TCPStack:
    """One host's TCP endpoint machinery."""

    def __init__(self, host: HostLike) -> None:
        self.host = host
        self._listeners: Dict[int, ListenSocket] = {}
        self._clients: Dict[Key, ClientConnection] = {}
        self._servers: Dict[Key, ServerConnection] = {}
        self._next_ephemeral = EPHEMERAL_BASE
        self.rsts_sent = 0
        self.segments_received = 0
        self._mib = host.mib

    # ------------------------------------------------------------------
    # Socket creation
    # ------------------------------------------------------------------
    def listen(self, port: int,
               config: Optional[DefenseConfig] = None) -> ListenSocket:
        if port in self._listeners:
            raise NetworkError(f"port {port} already has a listener")
        listener = ListenSocket(self, port, config)
        self._listeners[port] = listener
        return listener

    def connect(self, remote_ip: int, remote_port: int,
                config: Optional[ClientConnConfig] = None
                ) -> ClientConnection:
        """Active open; the connection's SYN is sent immediately."""
        config = config if config is not None else ClientConnConfig()
        local_port = self._allocate_port(remote_ip, remote_port)
        connection = ClientConnection(self, local_port, remote_ip,
                                      remote_port, config)
        self._clients[(local_port, remote_ip, remote_port)] = connection
        connection.start()
        return connection

    def _allocate_port(self, remote_ip: int, remote_port: int) -> int:
        for _ in range(EPHEMERAL_SPAN):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral >= EPHEMERAL_BASE + EPHEMERAL_SPAN:
                self._next_ephemeral = EPHEMERAL_BASE
            if (port, remote_ip, remote_port) not in self._clients:
                return port
        raise NetworkError("ephemeral port space exhausted")

    def new_isn(self) -> int:
        return self.host.rng.getrandbits(32)

    # ------------------------------------------------------------------
    # Teardown bookkeeping
    # ------------------------------------------------------------------
    def forget(self, connection: ClientConnection) -> None:
        key = (connection.local_port, connection.remote_ip,
               connection.remote_port)
        self._clients.pop(key, None)

    def register_server(self, connection: ServerConnection) -> None:
        key = (connection.local_port, connection.remote_ip,
               connection.remote_port)
        self._servers[key] = connection

    def forget_server(self, connection: ServerConnection) -> None:
        key = (connection.local_port, connection.remote_ip,
               connection.remote_port)
        self._servers.pop(key, None)

    def listener(self, port: int) -> Optional[ListenSocket]:
        return self._listeners.get(port)

    @property
    def open_connections(self) -> int:
        return len(self._clients) + len(self._servers)

    # ------------------------------------------------------------------
    # Demux
    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        self.segments_received += 1
        self._mib.incr("InSegs")
        key = (packet.dst_port, packet.src_ip, packet.src_port)

        server = self._servers.get(key)
        if server is not None:
            server.handle(packet)
            return

        client = self._clients.get(key)
        if client is not None:
            client.handle(packet)
            return

        listener = self._listeners.get(packet.dst_port)
        if listener is not None:
            if packet.is_syn:
                listener.handle_syn(packet)
                return
            if packet.has_ack and not packet.is_rst:
                if listener.handle_ack(packet):
                    return
        # RFC 793 catch-all: no matching state -> RST (never RST an RST).
        if not packet.is_rst:
            self._send_rst(packet)

    def _send_rst(self, packet: Packet) -> None:
        self.rsts_sent += 1
        self._mib.incr("OutRsts")
        rst = Packet(src_ip=self.host.address, dst_ip=packet.src_ip,
                     src_port=packet.dst_port, dst_port=packet.src_port,
                     seq=packet.ack, ack=packet.seq + 1,
                     flags=FLAG_RST)
        self.host.send(rst)
