"""Command-line interface: ``tcp-puzzles`` (or ``python -m repro``).

Subcommands mirror the paper's workflow:

* ``nash``     — compute the Nash difficulty from (w_av, α), §4.4 style;
* ``profile``  — print the Figure 3(a) / Table 1 hardware profiles;
* ``run``      — run one evaluation experiment and print its tables;
* ``sweep``    — run a parameter sweep through the parallel runner
  (``--jobs N`` for worker processes, ``--cache`` for the on-disk result
  cache, ``--resume`` to continue an interrupted sweep from its
  checkpoint, ``--live`` to keep an atomic JSON status file fresh,
  ``--quiet`` to silence the per-cell progress lines;
  see docs/performance.md);
* ``top``      — the live monitor: self-refreshing terminal rendering of
  the status file a ``sweep --live`` (or ``run --live``) keeps updating
  (``--once`` for a single plain render, e.g. in CI);
* ``chaos``    — run the fault-injection matrix (loss bursts, link
  flaps, option corruption, clock skew, memory pressure, secret
  rotation) with the runtime invariant checker armed, and print the
  resilience report (see docs/robustness.md);
* ``trace``    — run a small scenario with handshake tracepoints armed and
  print per-flow timelines plus the SNMP counter dump, or export the
  handshake spans as Chrome trace-event JSON (``--format=chrome``);
* ``bench-compare`` — diff two ``BENCH_*.json`` manifest directories
  (counters, events/s, latency quantiles) inside tolerance bands and
  exit non-zero on regression — the CI perf gate;
* ``perf``     — the performance-observability toolkit:
  ``perf micro`` runs the deterministic micro-benchmark registry and
  writes ``BENCH_micro_*.json`` manifests, ``perf profile`` runs a
  flood scenario under the attribution profiler (per-component wall
  table, heap churn, optional tracemalloc/GC accounting, collapsed-
  stack flamegraph + Chrome trace export), and ``perf compare`` gates
  two micro-manifest directories (see docs/performance.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _make_monitor(args: argparse.Namespace, kind: str = "sweep"):
    """A SweepMonitor from the shared ``--live``/``--quiet`` flags.

    Always attached (the per-cell progress lines on stderr are the
    default, ``--quiet`` silences them); ``--live`` / ``--status-file``
    additionally write the atomic status document ``tcp-puzzles top``
    renders.
    """
    from repro.runner import DEFAULT_STATUS_PATH, SweepMonitor

    status_path = getattr(args, "status_file", None)
    if status_path is None and getattr(args, "live", False):
        status_path = DEFAULT_STATUS_PATH
    return SweepMonitor(status_path=status_path,
                        quiet=bool(getattr(args, "quiet", False)),
                        kind=kind)


def _make_runner(args: argparse.Namespace,
                 identity: Optional[str] = None,
                 monitor=None):
    """A SweepRunner from the shared ``--jobs``/``--cache`` flags.

    With ``--resume`` (and an *identity* hash for the invocation), the
    runner gets a crash-safe checkpoint under the cache directory and a
    result cache is attached implicitly — resumed values come from it.
    """
    from repro.runner import (ResultCache, RetryPolicy, SweepCheckpoint,
                              SweepRunner, checkpoint_path)

    resume = bool(getattr(args, "resume", False))
    cache = None
    if (getattr(args, "cache", False) or getattr(args, "cache_dir", None)
            or resume):
        cache = ResultCache(root=args.cache_dir) if args.cache_dir \
            else ResultCache()
    checkpoint = None
    if resume and identity is not None:
        checkpoint = SweepCheckpoint(
            checkpoint_path(identity, root=cache.root))
        if checkpoint.count:
            print(f"resuming: checkpoint lists {checkpoint.count} "
                  f"completed cells", file=sys.stderr)
    retry = None
    timeout = getattr(args, "cell_timeout", None)
    if timeout is not None:
        retry = RetryPolicy(cell_timeout=timeout)
    return SweepRunner(jobs=args.jobs, cache=cache, retry=retry,
                       checkpoint=checkpoint, monitor=monitor)


def _add_runner_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes (default: $REPRO_JOBS or 1 "
                        "= serial)")
    parser.add_argument("--cache", action="store_true",
                        help="cache cell results on disk "
                        "($REPRO_CACHE_DIR or .repro-cache)")
    parser.add_argument("--cache-dir", metavar="PATH", default=None,
                        help="cache directory (implies --cache)")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="abandon and retry any cell running longer "
                        "than this (parallel runs only)")


def _add_monitor_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quiet", "-q", action="store_true",
                        help="suppress the per-cell progress lines on "
                        "stderr")
    parser.add_argument("--live", action="store_true",
                        help="write an atomic JSON status file for "
                        "`tcp-puzzles top` (default path: "
                        "benchmarks/output/sweep_status.json)")
    parser.add_argument("--status-file", metavar="PATH", default=None,
                        help="status file path (implies --live)")


def _cmd_nash(args: argparse.Namespace) -> int:
    from repro.core.theorem import equilibrium_difficulty, nash_difficulty

    target = equilibrium_difficulty(args.w_av, args.alpha)
    params = nash_difficulty(args.w_av, args.alpha, k=args.k)
    print(f"w_av = {args.w_av:.0f} hashes, alpha = {args.alpha}")
    print(f"continuous optimum  l* = w_av/(alpha+1) = {target:.1f} hashes")
    print(f"puzzle parameters   (k*, m*) = ({params.k}, {params.m})  "
          f"[l(p*) = {params.expected_hashes:.0f} expected hashes]")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.experiments.exp6_iot import iot_profile_table
    from repro.experiments.profiling_fig3 import client_profile_table
    from repro.experiments.report import render_table

    rows, w_av = client_profile_table()
    print("Figure 3(a): client CPU profiles (400 ms budget)")
    print(render_table(
        ["cpu", "description", "hash rate (/s)", "hashes in 400 ms"],
        [(r.name, r.description, r.hash_rate, r.hashes_in_budget)
         for r in rows]))
    print(f"w_av = {w_av:.0f}\n")
    print("Table 1: IoT device profiles")
    print(render_table(
        ["device", "hash rate (/s)", "hashes in 400 ms (paper)",
         "Nash solves/s"],
        [(r.device, r.average_hashing_rate, r.paper_hashes_in_400ms,
          r.nash_solves_per_second) for r in iot_profile_table()]))
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    from repro.core.analysis import botnet_cost_table
    from repro.experiments.report import render_table
    from repro.puzzles.params import PuzzleParams

    params = PuzzleParams(k=args.k, m=args.m)
    rows = botnet_cost_table(params, args.unprotected_rate)
    print(f"attack economics at (k={args.k}, m={args.m}) "
          f"[l(p) = {params.expected_hashes:.0f} hashes]")
    print(render_table(
        ["device", "solves/s", "bots for 5000 cps",
         "botnet amplification"],
        [(r.device, r.solves_per_second, r.bots_for_5000_cps,
          r.amplification) for r in rows.values()]))
    print("\n'botnet amplification' = how many times more machines the "
          "attacker\nneeds vs. an unprotected server "
          f"(at {args.unprotected_rate:.0f} cps/bot unprotected).")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments.validation import run_validation

    card = run_validation(progress=lambda msg: print(f"... {msg}",
                                                     file=sys.stderr))
    print(card.render())
    return 0 if card.all_passed else 1


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.report import render_table

    runner = _make_runner(args, monitor=_make_monitor(args, kind="run"))
    if args.experiment == "syn-flood":
        from repro.experiments.exp2_floods import run_syn_flood_suite

        suite = run_syn_flood_suite(runner=runner)
        print(render_table(
            ["defense", "client Mbps (pre)", "client Mbps (attack)",
             "completion %"],
            [(label,
              r.client_throughput_before_attack().mean,
              r.client_throughput_during_attack().mean,
              r.client_completion_percent())
             for label, r in suite.items()]))
    elif args.experiment == "connection-flood":
        from repro.experiments.exp2_floods import \
            run_connection_flood_suite
        from repro.experiments.figures import bar_chart, line_chart

        suite = run_connection_flood_suite(runner=runner)
        print(render_table(
            ["defense", "client Mbps (pre)", "client Mbps (attack)",
             "attacker cps", "completion %"],
            [(label,
              r.client_throughput_before_attack().mean,
              r.client_throughput_during_attack().mean,
              r.attacker_established_rate(),
              r.client_completion_percent())
             for label, r in suite.items()]))
        for label, result in suite.items():
            times, mbps = result.client_throughput.rx_mbps(
                result.config.duration)
            start, end = result.attack_window()
            print()
            print(line_chart(times, mbps, title=f"client throughput — "
                             f"{label}", y_label="Mbps",
                             shade_from=start, shade_to=end))
        print("\nsteady-state attacker rate (Figure 11):")
        print(bar_chart(
            list(suite),
            [r.attacker_steady_state_rate() for r in suite.values()],
            unit=" cps"))
    elif args.experiment == "adoption":
        from repro.experiments.exp5_adoption import adoption_study

        outcomes = adoption_study(runner=runner)
        print(render_table(
            ["scenario", "mean completion % during attack"],
            [(label, o.mean_completion_percent)
             for label, o in outcomes.items()]))
    elif args.experiment == "connection-time":
        from repro.experiments.exp1_connection_time import \
            connection_time_cdf_grid
        from repro.metrics.summary import quantile

        grid = connection_time_cdf_grid(samples=args.samples)
        print(render_table(
            ["k", "m", "mean (ms)", "median (ms)", "p95 (ms)"],
            [(k, m, 1e3 * r.summary.mean, 1e3 * r.summary.median,
              1e3 * quantile(r.times, 0.95))
             for (k, m), r in sorted(grid.items())]))
    else:  # pragma: no cover - argparse restricts choices
        print(f"unknown experiment {args.experiment}", file=sys.stderr)
        return 2
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.report import render_table
    from repro.experiments.scenario import ScenarioConfig
    from repro.runner import stable_hash

    # The checkpoint identity covers everything that shapes the cell
    # list, so `--resume` can never replay a different sweep's file.
    identity = stable_hash((
        "sweep", args.sweep, args.seed, args.time_scale,
        tuple(args.k_values or ()), tuple(args.m_values or ()),
        args.replicates))
    runner = _make_runner(args, identity=identity,
                          monitor=_make_monitor(args, kind="sweep"))
    base = ScenarioConfig(seed=args.seed, time_scale=args.time_scale)

    if args.sweep == "difficulty":
        from repro.experiments.exp3_nash import (
            difficulty_sweep_report,
            stability_ranking,
        )

        k_values = args.k_values or (1, 2, 3, 4)
        m_values = args.m_values or (12, 15, 16, 17, 18, 20)
        grid, stats = difficulty_sweep_report(k_values, m_values, base,
                                              runner)
        print(render_table(
            ["k", "m", "client Mbps (mean)", "Mbps (std)", "attacker cps",
             "completion %"],
            [(k, m, cell.throughput.mean, cell.throughput.std,
              cell.attacker_steady_rate, cell.client_completion_percent)
             for (k, m), cell in sorted(grid.items())]))
        ranking = stability_ranking(grid)
        if ranking:
            (k, m), score = ranking[0]
            print(f"\nmost stable cell: (k={k}, m={m}) "
                  f"[mean - std = {score:.3f} Mbps]")
    elif args.sweep == "botnet-rate":
        from repro.experiments.exp4_botnet import per_node_rate_sweep

        points = per_node_rate_sweep(base=base, runner=runner)
        stats = None
        print(render_table(
            ["per-node pps", "measured pps", "effective cps",
             "steady cps"],
            [(p.configured_rate_per_node, p.measured_attack_rate,
              p.completion_rate, p.completion_rate_steady)
             for p in points]))
    elif args.sweep == "botnet-size":
        from repro.experiments.exp4_botnet import botnet_size_sweep

        points = botnet_size_sweep(base=base, runner=runner)
        stats = None
        print(render_table(
            ["bots", "measured pps", "effective cps", "steady cps"],
            [(p.n_bots, p.measured_attack_rate, p.completion_rate,
              p.completion_rate_steady) for p in points]))
    elif args.sweep == "adoption":
        from repro.experiments.exp5_adoption import adoption_study

        outcomes = adoption_study(base, runner=runner)
        stats = None
        print(render_table(
            ["scenario", "mean completion % during attack"],
            [(label, o.mean_completion_percent)
             for label, o in outcomes.items()]))
    elif args.sweep == "iot":
        from repro.experiments.exp6_iot import iot_seed_sweep

        seeds = tuple(range(1, args.replicates + 1))
        summaries = iot_seed_sweep(seeds=seeds, base=base, runner=runner)
        stats = None
        print(render_table(
            ["seed", "attacker steady cps", "completion %"],
            [(seed, s.attacker_steady_state_rate(),
              s.client_completion_percent())
             for seed, s in zip(seeds, summaries)]))
    else:  # pragma: no cover - argparse restricts choices
        print(f"unknown sweep {args.sweep}", file=sys.stderr)
        return 2

    if stats is not None:
        print(f"\nrunner: {stats.render()}")
    if runner.cache is not None:
        print(f"cache: {runner.cache.stats.as_payload()} "
              f"at {runner.cache.root}")
    if runner.checkpoint is not None:
        print(f"checkpoint: {runner.checkpoint.count} cells recorded at "
              f"{runner.checkpoint.path}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import (render_overload_report,
                                    render_resilience, resilience_report,
                                    run_chaos_summary,
                                    sustained_overload_verdict)
    from repro.faults.invariants import InvariantViolation

    build = _build_chaos_matrix(args)
    if build is None:
        return 2
    labels, specs, fingerprints = build

    # Each row maps through the runner on its own, so one failing cell
    # is marked FAILED and the rest of the matrix still runs — the exit
    # code, not a truncated report, carries the failure.
    runner = _make_runner(args)
    values = []
    failures = {}
    stats = None
    for label, spec in zip(labels, specs):
        try:
            report = runner.map(run_chaos_summary, [spec],
                                labels=[label])
        except InvariantViolation as violation:
            print(f"cell {label!r} FAILED — INVARIANT VIOLATION\n"
                  f"{violation}", file=sys.stderr)
            failures[label] = str(violation)
            values.append(None)
            continue
        except Exception as error:
            print(f"cell {label!r} FAILED — "
                  f"{type(error).__name__}: {error}", file=sys.stderr)
            failures[label] = f"{type(error).__name__}: {error}"
            values.append(None)
            continue
        values.append(report.values[0])
        if stats is None:
            stats = report.stats
        else:
            stats.absorb(report.stats)

    ran = [(label, summary) for label, summary
           in zip(labels, values) if summary is not None]
    mode = "sustained-overload" if args.overload else "fault"
    print(f"chaos matrix ({mode}): {len(labels)} cells, "
          f"defense={'syncache' if args.overload else args.defense}, "
          f"attack={'syn' if args.overload else args.attack}, "
          f"seed={args.seed}")

    verdicts = {}
    if args.overload:
        verdicts = {label: sustained_overload_verdict(summary)
                    for label, summary in ran}
        if ran:
            print(render_overload_report(
                [label for label, _ in ran], list(verdicts.values())))
        rows = []
    else:
        rows = resilience_report([label for label, _ in ran],
                                 [summary for _, summary in ran])
        if rows:
            print(render_resilience(rows))

    checks = sum(summary.invariant_checks for _, summary in ran)
    print(f"\ninvariants: {checks} checker ticks across the matrix, "
          f"zero violations in completed cells")
    for label in failures:
        print(f"cell {label!r}: FAILED", file=sys.stderr)
    if stats is not None:
        print(f"runner: {stats.render()}")

    if args.output:
        import pathlib

        from repro.obs.manifest import runner_payload, write_manifest

        payload = {
            "schedule_fingerprints": fingerprints,
            "resilience": rows,
            "failed": sorted(failures),
        }
        if args.overload:
            payload["overload_verdicts"] = verdicts
            payload["overload"] = {label: summary.overload
                                   for label, summary in ran}
        if stats is not None:
            payload["runner"] = runner_payload(stats)
        path = write_manifest(
            pathlib.Path(args.output) / "BENCH_chaos.json", payload)
        print(f"wrote {path}")

    failed_verdicts = [label for label, verdict in verdicts.items()
                       if not verdict["ok"]]
    for label in failed_verdicts:
        print(f"cell {label!r}: verdict FAIL", file=sys.stderr)
    return 1 if failures or failed_verdicts else 0


def _build_chaos_matrix(args: argparse.Namespace):
    """Labels, specs, and schedule fingerprints for the chaos command.

    Returns ``None`` (after printing to stderr) on a bad fault subset.
    """
    from repro.experiments.scenario import ScenarioConfig
    from repro.faults.chaos import (ChaosSpec, default_fault_matrix,
                                    overload_matrix)
    from repro.tcp.constants import DefenseMode

    config = ScenarioConfig(
        seed=args.seed,
        time_scale=args.time_scale,
        n_clients=args.clients,
        n_attackers=args.attackers,
        attack_style=("syn" if args.attack == "none" else args.attack),
        attack_enabled=(args.attack != "none"),
        defense=DefenseMode(args.defense),
        always_challenge=args.always_challenge)

    if args.overload:
        matrix = overload_matrix(
            config, invariant_interval=args.invariant_interval)
        labels = list(matrix)
        specs = [matrix[label] for label in labels]
        fingerprints = {label: matrix[label].schedule.fingerprint()
                        for label in labels}
        return labels, specs, fingerprints

    schedules = default_fault_matrix(config)
    if args.faults:
        unknown = [name for name in args.faults if name not in schedules]
        if unknown:
            print(f"unknown fault class(es): {', '.join(unknown)} "
                  f"(choose from {', '.join(schedules)})",
                  file=sys.stderr)
            return None
        # The baseline always runs — degradation is measured against it.
        schedules = {label: schedule
                     for label, schedule in schedules.items()
                     if label == "baseline" or label in args.faults}
    labels = list(schedules)
    specs = [ChaosSpec(config, schedules[label],
                       invariant_interval=args.invariant_interval)
             for label in labels]
    fingerprints = {label: schedules[label].fingerprint()
                    for label in labels}
    return labels, specs, fingerprints


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from repro.runner import DEFAULT_STATUS_PATH, StatusFile, \
        render_status

    path = args.status_file or DEFAULT_STATUS_PATH
    if args.once:
        payload = StatusFile.read(path)
        if payload is None:
            print(f"no status file at {path} — start a sweep with "
                  f"`tcp-puzzles sweep ... --live`", file=sys.stderr)
            return 1
        print(render_status(payload))
        return 0
    try:
        while True:
            payload = StatusFile.read(path)
            # Clear + home, then redraw — a self-refreshing terminal view.
            print("\x1b[2J\x1b[H", end="")
            if payload is None:
                print(f"waiting for {path} ...")
            else:
                print(render_status(payload), flush=True)
                if payload.get("state") == "completed":
                    return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.experiments.scenario import Scenario, ScenarioConfig
    from repro.obs import (TelemetrySpec, build_spans, drop_attribution,
                           established_total)
    from repro.obs.export import write_jsonl
    from repro.obs.spans import chrome_trace_json
    from repro.tcp.constants import DefenseMode

    telemetry = None
    if args.telemetry:
        telemetry = TelemetrySpec(cadence=args.cadence)
    config = ScenarioConfig(
        seed=args.seed,
        time_scale=args.duration / 600.0,
        n_clients=args.clients,
        n_attackers=args.attackers,
        attack_style=("syn" if args.attack == "none" else args.attack),
        attack_enabled=(args.attack != "none"),
        defense=DefenseMode(args.defense),
        tracing=True,
        trace_capacity=args.capacity,
        profile=args.profile,
        telemetry=telemetry)
    result = Scenario(config).run()
    obs = result.obs
    tracer = obs.tracer
    series = result.sampler.as_dict() if result.sampler is not None \
        else None

    if args.format == "chrome":
        # One span per traced handshake (plus telemetry counter tracks
        # when --telemetry is on), as a Chrome trace-event JSON document
        # (load into Perfetto / chrome://tracing). Nothing else is
        # printed so stdout stays a valid JSON document.
        document = chrome_trace_json(build_spans(tracer), series=series)
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(document + "\n")
            print(f"wrote Chrome trace for {len(tracer.timelines())} "
                  f"spans to {args.output}", file=sys.stderr)
        else:
            print(document)
        return 0

    timelines = tracer.timelines()
    print(f"traced {tracer.emitted} handshake events across "
          f"{len(timelines)} flows"
          + (f" ({tracer.dropped} fell off the ring)"
             if tracer.dropped else ""))
    print()
    print(tracer.render(max_flows=args.flows))
    print()
    print(obs.counters.render())

    server = obs.counters.scope("server")
    drops = drop_attribution(server)
    drop_text = ", ".join(f"{name}={count}"
                          for name, count in drops.items()) or "none"
    print()
    print(f"server handshakes: {established_total(server)} established; "
          f"drops by cause: {drop_text}")

    if len(obs.hist):
        print()
        print("latency histograms:")
        print(obs.hist.render())

    if series:
        print()
        print(f"telemetry: {len(series)} series, "
              f"{result.sampler.samples_taken} samples at "
              f"{config.telemetry.cadence:g}s cadence "
              f"({', '.join(sorted(series))})")

    stats = result.engine.stats()
    print(f"engine: {stats['events_processed']} events in "
          f"{stats['wall_seconds']:.3f}s wall "
          f"({stats['sim_wall_ratio']:.0f}x real time), "
          f"{stats['compactions']} heap compactions")
    if result.profiler is not None:
        print()
        print(result.profiler.render())

    if args.jsonl:
        with open(args.jsonl, "w") as fh:
            lines = write_jsonl(fh, registry=obs.counters, tracer=tracer,
                                engine=result.engine,
                                profiler=result.profiler,
                                hists=obs.hist,
                                spans=build_spans(tracer),
                                series=series)
        print(f"\nwrote {lines} JSON lines to {args.jsonl}")
    return 0


def _cmd_perf_micro(args: argparse.Namespace) -> int:
    from repro.obs.microbench import (REGISTRY, render_results, run_micro,
                                      self_check, write_micro_manifests)

    if args.list:
        for name in sorted(REGISTRY):
            bench = REGISTRY[name]
            print(f"{name:>16s}  {bench.default_iterations:>9d} iters  "
                  f"{bench.description}")
        return 0
    names = args.benchmarks or None
    if names:
        unknown = [name for name in names if name not in REGISTRY]
        if unknown:
            print(f"unknown micro-benchmark(s): {', '.join(unknown)} "
                  f"(choose from {', '.join(sorted(REGISTRY))})",
                  file=sys.stderr)
            return 2
    results = run_micro(names, repeats=args.repeats, scale=args.scale)
    for result in results:
        self_check(result)
    print(render_results(results))
    if args.output:
        paths = write_micro_manifests(results, args.output)
        print(f"wrote {len(paths)} manifest(s) to {args.output}")
    return 0


def _cmd_perf_profile(args: argparse.Namespace) -> int:
    from repro.experiments.scenario import Scenario, ScenarioConfig
    from repro.obs.perf import (AttributionProfiler, heap_churn,
                                profile_payload, render_heap_churn,
                                write_flamegraph)
    from repro.tcp.constants import DefenseMode

    config = ScenarioConfig(
        seed=args.seed,
        time_scale=args.time_scale,
        n_clients=args.clients,
        n_attackers=args.attackers,
        attack_style=("syn" if args.attack == "none" else args.attack),
        attack_enabled=(args.attack != "none"),
        defense=DefenseMode(args.defense),
        tracing=bool(args.chrome),
        profile=("attribution+mem" if args.memory else "attribution"))
    result = Scenario(config).run()
    profiler = result.profiler
    assert isinstance(profiler, AttributionProfiler)

    stats = result.engine.stats()
    print(f"profiled {args.attack} flood, defense={args.defense}: "
          f"{stats['events_processed']:,.0f} events in "
          f"{stats['wall_seconds']:.3f}s wall "
          f"({stats['sim_wall_ratio']:.0f}x real time)")
    print()
    print("per-component attribution:")
    print(profiler.render_components())
    print()
    print(f"hottest callback kinds (top {args.top}):")
    print(profiler.render(top=args.top))
    print()
    print(render_heap_churn(heap_churn(result.engine)))
    memory_lines = profiler.render_memory()
    if memory_lines:
        print(memory_lines)

    if args.flame:
        lines = write_flamegraph(profiler, args.flame)
        print(f"wrote {lines} collapsed-stack line(s) to {args.flame} "
              f"(speedscope / flamegraph.pl loadable)")
    if args.chrome:
        from repro.obs import build_spans
        from repro.obs.spans import chrome_trace_json

        document = chrome_trace_json(build_spans(result.obs.tracer))
        with open(args.chrome, "w") as fh:
            fh.write(document + "\n")
        print(f"wrote Chrome trace for "
              f"{len(result.obs.tracer.timelines())} spans to "
              f"{args.chrome}")
    if args.output:
        import pathlib

        from repro.obs.manifest import hub_payload, write_manifest

        payload = hub_payload(result.obs, engine=result.engine)
        payload["name"] = f"profile_{args.attack}_{args.defense}"
        payload["profile"] = profile_payload(profiler, result.engine)
        path = write_manifest(
            pathlib.Path(args.output)
            / f"BENCH_{payload['name']}.json", payload)
        print(f"wrote {path}")
    return 0


def _cmd_perf_compare(args: argparse.Namespace) -> int:
    from repro.obs.benchcmp import Tolerance, compare_dirs
    from repro.obs.microbench import MICRO_PREFIX

    tolerance = Tolerance(counters=args.counter_tolerance,
                          perf=args.perf_tolerance,
                          quantile=args.quantile_tolerance)
    report = compare_dirs(args.baseline, args.current, tolerance,
                          prefix=MICRO_PREFIX)
    print(report.render())
    return 0 if report.passed else 1


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.obs.benchcmp import Tolerance, compare_dirs

    tolerance = Tolerance(counters=args.counter_tolerance,
                          perf=args.perf_tolerance,
                          quantile=args.quantile_tolerance)
    report = compare_dirs(args.baseline, args.current, tolerance)
    print(report.render())
    return 0 if report.passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tcp-puzzles",
        description="TCP client puzzles (DSN 2019) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    nash = sub.add_parser("nash", help="compute the Nash puzzle difficulty")
    nash.add_argument("--w-av", type=float, default=140630.0,
                      help="average client hash budget per request")
    nash.add_argument("--alpha", type=float, default=1.1,
                      help="server service parameter mu/N")
    nash.add_argument("-k", type=int, default=2,
                      help="number of sub-puzzle solutions")
    nash.set_defaults(func=_cmd_nash)

    profile = sub.add_parser("profile",
                             help="print hardware profiles (Fig 3a, Tab 1)")
    profile.set_defaults(func=_cmd_profile)

    cost = sub.add_parser(
        "cost", help="attack economics at a given difficulty (§6.4/§6.6)")
    cost.add_argument("-k", type=int, default=2)
    cost.add_argument("-m", type=int, default=17)
    cost.add_argument("--unprotected-rate", type=float, default=500.0,
                      help="per-bot effective cps against a bare server")
    cost.set_defaults(func=_cmd_cost)

    validate = sub.add_parser(
        "validate",
        help="machine-check every paper claim (the reproduction gate)")
    validate.set_defaults(func=_cmd_validate)

    run = sub.add_parser("run", help="run an evaluation experiment")
    run.add_argument("experiment",
                     choices=["syn-flood", "connection-flood", "adoption",
                              "connection-time"])
    run.add_argument("--samples", type=int, default=25,
                     help="samples per cell (connection-time)")
    _add_runner_flags(run)
    _add_monitor_flags(run)
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep",
        help="run a parameter sweep through the parallel runner")
    sweep.add_argument("sweep",
                       choices=["difficulty", "botnet-rate", "botnet-size",
                                "adoption", "iot"])
    sweep.add_argument("--time-scale", type=float, default=0.1,
                       help="timeline scale factor (1.0 = the paper's "
                       "600 s)")
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--k-values", type=int, nargs="+", default=None,
                       help="k grid for the difficulty sweep")
    sweep.add_argument("--m-values", type=int, nargs="+", default=None,
                       help="m grid for the difficulty sweep")
    sweep.add_argument("--replicates", type=int, default=3,
                       help="seed replicates (iot sweep)")
    sweep.add_argument("--resume", action="store_true",
                       help="resume an interrupted sweep from its "
                       "checkpoint (implies --cache); completed cells "
                       "replay from the result cache")
    _add_runner_flags(sweep)
    _add_monitor_flags(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    top = sub.add_parser(
        "top",
        help="live monitor: render the status file a `sweep --live` "
        "run keeps updating")
    top.add_argument("--status-file", metavar="PATH", default=None,
                     help="status file to watch (default: "
                     "benchmarks/output/sweep_status.json)")
    top.add_argument("--once", action="store_true",
                     help="render the current status once (plain, no "
                     "screen clearing) and exit")
    top.add_argument("--interval", type=float, default=1.0,
                     help="refresh interval in seconds (default 1.0)")
    top.set_defaults(func=_cmd_top)

    chaos = sub.add_parser(
        "chaos",
        help="run the fault-injection matrix with invariant checking "
        "and print a resilience report")
    chaos.add_argument("--faults", nargs="+", default=None,
                       metavar="CLASS",
                       help="subset of fault classes to run (default: "
                       "all); the baseline always runs")
    chaos.add_argument("--defense", default="puzzles",
                       choices=["none", "cookies", "syncache", "puzzles"])
    chaos.add_argument("--attack", default="connect",
                       choices=["none", "syn", "connect", "mixed"])
    chaos.add_argument("--clients", type=int, default=6)
    chaos.add_argument("--attackers", type=int, default=4)
    chaos.add_argument("--time-scale", type=float, default=0.05,
                       help="timeline scale factor (default 0.05 = 30 s)")
    chaos.add_argument("--seed", type=int, default=1)
    chaos.add_argument("--invariant-interval", type=float, default=0.25,
                       help="sim-seconds between invariant checks "
                       "(0 disables the checker)")
    chaos.add_argument("--always-challenge", action="store_true",
                       default=True,
                       help="challenge every SYN so puzzle options ride "
                       "every handshake (default on; "
                       "--no-always-challenge for opportunistic mode)")
    chaos.add_argument("--no-always-challenge", action="store_false",
                       dest="always_challenge")
    chaos.add_argument("--overload", action="store_true",
                       help="run the sustained-overload matrix instead: "
                       "a 10x-capacity SYN flood against the full "
                       "graceful-degradation ladder, one cell per "
                       "syncache overflow policy, with pass/fail "
                       "verdicts (bounded memory, bounded benign p99, "
                       "full watchdog recovery)")
    chaos.add_argument("--output", "-o", metavar="DIR", default=None,
                       help="also write a BENCH_chaos.json manifest "
                       "under DIR")
    _add_runner_flags(chaos)
    chaos.set_defaults(func=_cmd_chaos)

    trace = sub.add_parser(
        "trace",
        help="trace handshakes through a small scenario run")
    trace.add_argument("--defense", default="puzzles",
                       choices=["none", "cookies", "syncache", "puzzles"])
    trace.add_argument("--attack", default="syn",
                       choices=["none", "syn", "connect", "mixed"])
    trace.add_argument("--duration", type=float, default=20.0,
                       help="run length in seconds (attack spans the "
                       "middle 60%%)")
    trace.add_argument("--clients", type=int, default=4)
    trace.add_argument("--attackers", type=int, default=2)
    trace.add_argument("--flows", type=int, default=8,
                       help="max per-flow timelines to print")
    trace.add_argument("--capacity", type=int, default=65536,
                       help="trace ring buffer capacity")
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--profile", action="store_true",
                       help="profile the event loop while tracing")
    trace.add_argument("--telemetry", action="store_true",
                       help="attach the sim-time telemetry sampler; "
                       "chrome exports gain counter tracks, JSONL gains "
                       "type=series lines")
    trace.add_argument("--cadence", type=float, default=0.5,
                       help="telemetry sampling cadence in sim-seconds "
                       "(default 0.5)")
    trace.add_argument("--format", default="text",
                       choices=["text", "chrome"],
                       help="text timelines, or Chrome trace-event JSON "
                       "(one span per handshake; open in Perfetto)")
    trace.add_argument("--output", "-o", metavar="PATH", default=None,
                       help="write the chrome trace to PATH instead of "
                       "stdout")
    trace.add_argument("--jsonl", metavar="PATH",
                       help="also write counters+trace+spans+histograms "
                       "as JSON lines")
    trace.set_defaults(func=_cmd_trace)

    perf = sub.add_parser(
        "perf",
        help="performance observability: micro-benchmarks, attribution "
        "profiling, flamegraphs")
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)

    micro = perf_sub.add_parser(
        "micro",
        help="run the deterministic micro-benchmark registry and write "
        "BENCH_micro_*.json manifests")
    micro.add_argument("benchmarks", nargs="*", metavar="NAME",
                       help="subset of registered benchmarks "
                       "(default: all; see --list)")
    micro.add_argument("--list", action="store_true",
                       help="list registered micro-benchmarks and exit")
    micro.add_argument("--repeats", type=int, default=3,
                       help="timed repeats per benchmark; the best "
                       "(minimum) wall time is reported (default 3)")
    micro.add_argument("--scale", type=float, default=1.0,
                       help="iteration-count multiplier (default 1.0; "
                       "use e.g. 0.05 for a smoke run)")
    micro.add_argument("--output", "-o", metavar="DIR", default=None,
                       help="write BENCH_micro_<name>.json manifests "
                       "under DIR")
    micro.set_defaults(func=_cmd_perf_micro)

    pprof = perf_sub.add_parser(
        "profile",
        help="run a flood scenario under the attribution profiler "
        "(per-component wall table, heap churn, flamegraph export)")
    pprof.add_argument("--defense", default="puzzles",
                       choices=["none", "cookies", "syncache", "puzzles"])
    pprof.add_argument("--attack", default="syn",
                       choices=["none", "syn", "connect", "mixed"],
                       help="attack style (default: the fig7 SYN flood)")
    pprof.add_argument("--time-scale", type=float, default=0.05,
                       help="timeline scale factor (default 0.05 = 30 s)")
    pprof.add_argument("--clients", type=int, default=15)
    pprof.add_argument("--attackers", type=int, default=10)
    pprof.add_argument("--seed", type=int, default=1)
    pprof.add_argument("--top", type=int, default=15,
                       help="callback kinds to print (default 15)")
    pprof.add_argument("--memory", action="store_true",
                       help="also account allocations (tracemalloc) and "
                       "GC pauses around the run")
    pprof.add_argument("--flame", metavar="PATH", default=None,
                       help="write a collapsed-stack flamegraph "
                       "(speedscope / flamegraph.pl loadable)")
    pprof.add_argument("--chrome", metavar="PATH", default=None,
                       help="also write handshake spans as Chrome "
                       "trace-event JSON (enables tracing)")
    pprof.add_argument("--output", "-o", metavar="DIR", default=None,
                       help="also write a BENCH_profile_*.json manifest "
                       "under DIR")
    pprof.set_defaults(func=_cmd_perf_profile)

    pcmp = perf_sub.add_parser(
        "compare",
        help="bench-compare restricted to BENCH_micro_* manifests; "
        "exit non-zero on regression")
    pcmp.add_argument("baseline", help="baseline manifest directory")
    pcmp.add_argument("current", help="current manifest directory")
    pcmp.add_argument("--counter-tolerance", type=float, default=0.0,
                      help="relative drift allowed on work counters "
                      "(default: exact — the determinism gate)")
    pcmp.add_argument("--perf-tolerance", type=float, default=0.30,
                      help="relative wall/ops-per-second drift allowed "
                      "(default: 0.30)")
    pcmp.add_argument("--quantile-tolerance", type=float, default=0.25,
                      help="relative per-op latency-quantile increase "
                      "allowed (default: 0.25)")
    pcmp.set_defaults(func=_cmd_perf_compare)

    bench = sub.add_parser(
        "bench-compare",
        help="diff two BENCH_*.json manifest directories; exit non-zero "
        "on regression")
    bench.add_argument("baseline", help="baseline manifest directory")
    bench.add_argument("current", help="current manifest directory")
    bench.add_argument("--counter-tolerance", type=float, default=0.0,
                       help="relative drift allowed on SNMP counters and "
                       "histogram sample counts (default: exact)")
    bench.add_argument("--perf-tolerance", type=float, default=0.30,
                       help="relative wall-clock / events-per-second "
                       "drift allowed (default: 0.30)")
    bench.add_argument("--quantile-tolerance", type=float, default=0.25,
                       help="relative latency-quantile increase allowed "
                       "(default: 0.25)")
    bench.set_defaults(func=_cmd_bench_compare)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
