"""Content-addressed on-disk result cache for sweep cells.

Layout: ``<root>/<key[:2]>/<key>.pkl`` — one pickle per cell, holding the
``(value, stats)`` pair the cell produced. Keys are the stable SHA-256
fingerprints from :mod:`repro.runner.hashing`, so a changed config (or a
package version bump) simply addresses a different file: invalidation is
free and stale entries are inert.

Writes are atomic (temp file + ``os.replace``) so a crashed or parallel
writer can never leave a torn entry; racing writers of the same key write
identical bytes by construction (same key ⇒ same config ⇒ same result).
"""

from __future__ import annotations

import os
import pathlib
import pickle
import tempfile
import warnings
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.obs.counters import CounterScope

#: Environment override for the cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Process-wide observability scope for cache tooling events; the
#: ``cache_corrupt_entries`` counter lives here so tests (and manifests)
#: can assert corrupt pickles were noticed rather than silently eaten.
CACHE_COUNTERS = CounterScope("result-cache")


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` or ``.repro-cache`` under the working dir."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path(".repro-cache")


@dataclass
class CacheStats:
    """Hit/miss accounting for one runner invocation."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0

    def as_payload(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "errors": self.errors}


@dataclass
class ResultCache:
    """Pickle-per-key cache rooted at *root* (created lazily)."""

    root: pathlib.Path = field(default_factory=default_cache_dir)

    def __post_init__(self) -> None:
        self.root = pathlib.Path(self.root)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[Tuple[Any, dict]]:
        """The cached ``(value, stats)`` pair, or ``None`` on a miss.

        A corrupt entry (torn by an old crash, or written by an
        incompatible interpreter) counts as a miss and is removed so the
        next run rewrites it.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                value, stats = pickle.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception as exc:
            self.stats.errors += 1
            self.stats.misses += 1
            CACHE_COUNTERS.incr("cache_corrupt_entries")
            warnings.warn(
                f"result cache: dropping corrupt entry {path.name} "
                f"({exc.__class__.__name__}: {exc}); it will be "
                f"recomputed", RuntimeWarning, stacklevel=2)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return value, stats

    def put(self, key: str, value: Any, stats: Optional[dict] = None
            ) -> pathlib.Path:
        """Atomically persist ``(value, stats)`` under *key*."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump((value, dict(stats or {})), fh,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
