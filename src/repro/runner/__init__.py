"""``repro.runner`` — the parallel sweep executor with an on-disk cache.

Every paper figure is a sweep of independent ``(ScenarioConfig, seed)``
cells; nothing about one cell depends on another, so the sweep is
embarrassingly parallel. This package provides:

* **Stable fingerprints** (:mod:`repro.runner.hashing`) — a canonical,
  process-independent hash of any configuration dataclass, used both as
  the cache key and as the deterministic cell identity in exports.
* **A result cache** (:mod:`repro.runner.cache`) — content-addressed
  pickles on disk, keyed by ``(cell function, config, package version)``;
  re-running an unchanged sweep cell is a file read instead of a full
  simulation.
* **The sweep runner** (:mod:`repro.runner.runner`) — shards cells across
  a :class:`~concurrent.futures.ProcessPoolExecutor` (worker count from
  ``--jobs`` or ``REPRO_JOBS``; ``jobs=1`` is a dependency-free serial
  fallback) and returns results in deterministic cell order regardless
  of completion order. Per-cell wall time, cache hits and engine
  statistics land in a :class:`~repro.runner.runner.RunnerStats` that the
  benchmark manifest writer persists (``BENCH_*.json``).
* **Deterministic export** (:mod:`repro.runner.export`) — the key-sorted
  JSONL renderer used to assert that a parallel run's merged results are
  byte-identical to a serial run with the same seeds.

Determinism contract: a cell function must be a module-level callable of
one picklable argument whose output depends only on that argument (all
randomness seeded from the config). Under that contract serial and
parallel execution are bit-for-bit identical.
"""

from __future__ import annotations

from repro.runner.cache import (CACHE_COUNTERS, CacheStats, ResultCache,
                                default_cache_dir)
from repro.runner.checkpoint import SweepCheckpoint, checkpoint_path
from repro.runner.export import cells_to_jsonl, to_jsonable
from repro.runner.hashing import (
    SCHEMA_VERSION,
    cell_key,
    config_fingerprint,
    stable_hash,
)
from repro.runner.monitor import (
    DEFAULT_STATUS_PATH,
    STATUS_VERSION,
    StatusFile,
    SweepMonitor,
    render_status,
)
from repro.runner.runner import (
    CellStats,
    RetryPolicy,
    RunnerStats,
    SweepReport,
    SweepRunner,
    resolve_jobs,
)

__all__ = [
    "CACHE_COUNTERS",
    "CacheStats",
    "CellStats",
    "DEFAULT_STATUS_PATH",
    "ResultCache",
    "RetryPolicy",
    "RunnerStats",
    "SCHEMA_VERSION",
    "STATUS_VERSION",
    "StatusFile",
    "SweepCheckpoint",
    "SweepMonitor",
    "SweepReport",
    "SweepRunner",
    "render_status",
    "cell_key",
    "checkpoint_path",
    "cells_to_jsonl",
    "config_fingerprint",
    "default_cache_dir",
    "resolve_jobs",
    "stable_hash",
    "to_jsonable",
]
