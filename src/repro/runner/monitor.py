"""Live sweep monitoring: atomic status files and progress lines.

A multi-hour sweep is a black box between submission and completion.
This module makes it observable without touching the determinism
contract: the monitor only *reads* cell values and writes to two side
channels — an atomic JSON status file (consumed by ``tcp-puzzles top``)
and stderr progress lines — so the values, stats, and exported JSONL of
a monitored sweep are byte-identical to an unmonitored one.

* :class:`StatusFile` — write-temp-then-``os.replace`` JSON document, so
  a concurrently polling reader never sees a torn file.
* :class:`SweepMonitor` — the runner-side observer. The
  :class:`~repro.runner.runner.SweepRunner` calls its hooks (``begin``,
  ``cell_running``, ``cell_done``, ``heartbeat``, ``finish``); each hook
  refreshes the status document and, unless quiet, emits one per-cell
  progress line to the attached stream.
* :func:`render_status` — the terminal view ``tcp-puzzles top`` redraws.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

from repro.obs.counters import DROP_CAUSES

#: Bumped when the status document layout changes incompatibly.
STATUS_VERSION = 1

#: Where ``tcp-puzzles sweep --live`` writes (and ``tcp-puzzles top``
#: reads) the status document unless ``--status-file`` overrides it.
DEFAULT_STATUS_PATH = os.path.join("benchmarks", "output",
                                   "sweep_status.json")


class StatusFile:
    """An atomically replaced JSON status document."""

    def __init__(self, path: str) -> None:
        self.path = str(path)

    def write(self, payload: Dict[str, Any]) -> None:
        """Serialize *payload* and atomically replace the file."""
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.path)

    @staticmethod
    def read(path: str) -> Optional[Dict[str, Any]]:
        """Parse a status document; None when missing or torn."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None


def _cell_digest(value: Any) -> Dict[str, Any]:
    """Read-only distillation of one cell value for the status file."""
    digest: Dict[str, Any] = {}
    stats = getattr(value, "engine_stats", None)
    if isinstance(stats, dict):
        digest["sim_seconds"] = float(stats.get("sim_seconds", 0.0))
        digest["events_processed"] = int(
            stats.get("events_processed", 0))
    counters = getattr(value, "counters", None)
    if isinstance(counters, dict):
        server = counters.get("server")
        if isinstance(server, dict):
            drops = {cause: server[cause] for cause in DROP_CAUSES
                     if server.get(cause)}
            if drops:
                digest["drops"] = drops
    completion = getattr(value, "client_completion_percent", None)
    if callable(completion):
        try:
            percent = completion()
        except Exception:
            percent = None
        if percent is not None and percent == percent:  # not NaN
            digest["completion_percent"] = round(float(percent), 2)
    return digest


class SweepMonitor:
    """Observes a sweep: status-file records plus stderr progress lines.

    Parameters
    ----------
    status_path:
        Where to write the JSON status document, or ``None`` for
        progress lines only.
    stream:
        Progress-line destination (default ``sys.stderr``).
    quiet:
        Suppress progress lines (the status file still updates).
    kind:
        ``"sweep"`` or ``"run"`` — labels the document for ``top``.
    interval:
        Minimum wall seconds between heartbeat rewrites of the status
        file; cell starts/completions always write immediately.
    """

    def __init__(self, status_path: Optional[str] = None,
                 stream=None, quiet: bool = False, kind: str = "sweep",
                 interval: float = 2.0) -> None:
        self.status = StatusFile(status_path) if status_path else None
        self.stream = stream if stream is not None else sys.stderr
        self.quiet = quiet
        self.kind = kind
        self.interval = interval
        self.jobs = 1
        self._started = 0.0
        self._last_write = 0.0
        self._cells: List[Dict[str, Any]] = []
        self._done = 0
        self._cache_hits = 0
        self._retries = 0
        self._pool_restarts = 0
        self._cell_timeouts = 0
        self._state = "pending"

    # ------------------------------------------------------------------
    # Runner hooks
    # ------------------------------------------------------------------
    def begin(self, labels: List[str], jobs: int) -> None:
        self.jobs = jobs
        self._started = time.time()
        self._state = "running"
        self._cells = [
            {"index": i, "label": label, "state": "pending"}
            for i, label in enumerate(labels)
        ]
        self._write(force=True)
        self._line(f"sweep: {len(labels)} cells at jobs={jobs}")

    def cell_running(self, index: int) -> None:
        cell = self._cells[index]
        if cell["state"] == "pending":
            cell["state"] = "running"
            self._write()
            self._line(f"[{self._done}/{len(self._cells)}] "
                       f"{cell['label']}: running")

    def cell_done(self, index: int, value: Any,
                  wall_seconds: float = 0.0,
                  cached: bool = False) -> None:
        cell = self._cells[index]
        cell.update(_cell_digest(value))
        cell["state"] = "cached" if cached else "done"
        cell["wall_seconds"] = round(float(wall_seconds), 6)
        events = cell.get("events_processed", 0)
        if wall_seconds > 0 and events:
            cell["events_per_second"] = round(events / wall_seconds, 1)
        self._done += 1
        if cached:
            self._cache_hits += 1
        self._write(force=True)
        detail = "cached" if cached else f"run {wall_seconds:.2f}s"
        rate = cell.get("events_per_second")
        if rate:
            detail += f", {rate:,.0f} ev/s"
        drops = cell.get("drops")
        if drops:
            detail += f", {sum(drops.values()):,d} drops"
        self._line(f"[{self._done}/{len(self._cells)}] "
                   f"{cell['label']}: {detail}")

    def worker_event(self, retries: int = 0, pool_restarts: int = 0,
                     cell_timeouts: int = 0) -> None:
        """Record retry/crash accounting as it happens."""
        self._retries += retries
        self._pool_restarts += pool_restarts
        self._cell_timeouts += cell_timeouts
        self._write(force=True)

    def heartbeat(self) -> None:
        """Refresh the document timestamp; throttled by ``interval``."""
        self._write()

    def finish(self, stats=None) -> None:
        self._state = "completed"
        if stats is not None:
            self._retries = stats.retries
            self._pool_restarts = stats.pool_restarts
            self._cell_timeouts = stats.cell_timeouts
        self._write(force=True)
        if stats is not None:
            self._line(stats.render())

    # ------------------------------------------------------------------
    def _line(self, text: str) -> None:
        if self.quiet:
            return
        print(text, file=self.stream, flush=True)

    def snapshot(self) -> Dict[str, Any]:
        """The current status document."""
        now = time.time()
        events = sum(cell.get("events_processed", 0)
                     for cell in self._cells)
        wall = max(now - self._started, 1e-9) if self._started else 0.0
        drop_rates: Dict[str, int] = {}
        for cell in self._cells:
            for cause, count in (cell.get("drops") or {}).items():
                drop_rates[cause] = drop_rates.get(cause, 0) + count
        return {
            "version": STATUS_VERSION,
            "kind": self.kind,
            "state": self._state,
            "updated_unix": now,
            "jobs": self.jobs,
            "cells_total": len(self._cells),
            "cells_done": self._done,
            "cache_hits": self._cache_hits,
            "wall_seconds": round(wall, 3),
            "events_processed": events,
            "events_per_second": (round(events / wall, 1)
                                  if wall > 0 else 0.0),
            "workers": {
                "retries": self._retries,
                "pool_restarts": self._pool_restarts,
                "cell_timeouts": self._cell_timeouts,
            },
            "drop_totals": dict(sorted(drop_rates.items())),
            "cells": list(self._cells),
        }

    def _write(self, force: bool = False) -> None:
        if self.status is None:
            return
        now = time.time()
        if not force and now - self._last_write < self.interval:
            return
        self._last_write = now
        self.status.write(self.snapshot())


# ----------------------------------------------------------------------
# Rendering (the `tcp-puzzles top` view)
# ----------------------------------------------------------------------
_STATE_TAGS = {"pending": "....", "running": "RUN ", "done": "done",
               "cached": "hit "}


def render_status(payload: Dict[str, Any]) -> str:
    """Terminal rendering of one status document."""
    state = payload.get("state", "?")
    kind = payload.get("kind", "sweep")
    age = time.time() - float(payload.get("updated_unix", 0.0))
    lines = [
        f"tcp-puzzles {kind} — {state} "
        f"(updated {max(age, 0.0):.1f}s ago, "
        f"elapsed {payload.get('wall_seconds', 0.0):.1f}s)",
        f"cells {payload.get('cells_done', 0)}"
        f"/{payload.get('cells_total', 0)} done "
        f"({payload.get('cache_hits', 0)} cached) · "
        f"jobs {payload.get('jobs', 1)} · "
        f"{payload.get('events_processed', 0):,d} events · "
        f"{payload.get('events_per_second', 0.0):,.0f} ev/s",
    ]
    workers = payload.get("workers") or {}
    if any(workers.values()):
        lines.append(
            f"workers: {workers.get('retries', 0)} retries · "
            f"{workers.get('cell_timeouts', 0)} timeouts · "
            f"{workers.get('pool_restarts', 0)} pool restarts")
    drops = payload.get("drop_totals") or {}
    if drops:
        top = sorted(drops.items(), key=lambda item: (-item[1], item[0]))
        lines.append("drops: " + " · ".join(
            f"{cause} {count:,d}" for cause, count in top[:4]))
    cells = payload.get("cells") or []
    if cells:
        lines.append("")
        width = max(len(str(cell.get("label", ""))) for cell in cells)
        for cell in cells:
            tag = _STATE_TAGS.get(cell.get("state", ""), "?   ")
            line = (f"  [{tag}] "
                    f"{str(cell.get('label', '')):<{width}s}")
            if "wall_seconds" in cell:
                line += f"  {cell['wall_seconds']:>8.2f}s"
            if "events_per_second" in cell:
                line += f"  {cell['events_per_second']:>12,.0f} ev/s"
            cell_drops = cell.get("drops")
            if cell_drops:
                line += f"  drops {sum(cell_drops.values()):,d}"
            if "completion_percent" in cell:
                line += f"  client {cell['completion_percent']:.1f}%"
            lines.append(line)
    return "\n".join(lines)
