"""Deterministic JSONL export of sweep-cell values.

``cells_to_jsonl`` is the byte-level determinism comparator: a parallel
run and a serial run of the same sweep must render to identical text.
Everything that could differ between runs of identical simulations —
wall-clock timings, dict insertion order, float formatting — is pinned:

* values are lowered through ``as_payload()`` when they provide one
  (scenario summaries exclude wall-time fields from their payloads),
* ``json.dumps(..., sort_keys=True)`` fixes key order,
* numpy scalars/arrays are converted to plain Python so their ``repr``
  quirks never leak into the text.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from typing import Any, Iterable, List

import numpy as np


def to_jsonable(value: Any) -> Any:
    """Lower *value* to plain JSON-serialisable Python.

    Objects exposing ``as_payload()`` are asked for their canonical
    payload first; dataclasses, enums, numpy arrays/scalars and the
    standard containers are handled structurally.
    """
    payload = getattr(value, "as_payload", None)
    if callable(payload) and not isinstance(value, type):
        return to_jsonable(payload())
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if isinstance(value, np.generic):
        return to_jsonable(value.item())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if not f.name.startswith("_")
        }
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [to_jsonable(item) for item in value]
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=json.dumps)
        return items
    raise TypeError(
        f"cannot export {type(value).__name__!r} values to JSONL")


def cells_to_jsonl(values: Iterable[Any]) -> str:
    """One ``sort_keys`` JSON line per cell value, in cell order."""
    lines: List[str] = []
    for value in values:
        lines.append(json.dumps(to_jsonable(value), sort_keys=True,
                                separators=(",", ":")))
    return "\n".join(lines) + ("\n" if lines else "")
