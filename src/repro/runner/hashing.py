"""Stable content hashes for sweep-cell configurations.

The cache key for a sweep cell must be identical across processes and
interpreter runs, which rules out ``hash()`` (salted) and ``pickle``
(protocol- and memo-layout-dependent). Instead every config is lowered to
a canonical, printable form — dataclasses become ``(qualified name,
sorted field items)``, enums become ``(qualified name, value)``, floats
go through ``repr`` (shortest round-trip form) — and the SHA-256 of that
text is the fingerprint.

Private dataclass fields (leading underscore) are skipped: they are
memoisation slots, not configuration.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Any, Callable, Optional

from repro import _version
from repro.errors import ExperimentError

#: Version of the *result schema* — the pickled shape of cached cell
#: values (ScenarioSummary fields, histogram layouts). Folded into every
#: fingerprint and cell key alongside the package version, so a cache
#: entry pickled under an older shape addresses a different key and is
#: never unpickled into newer code. Bump whenever ScenarioSummary (or
#: anything it contains) gains, loses, or re-types a field.
SCHEMA_VERSION = 5


def _qualname(obj: Any) -> str:
    cls = obj if isinstance(obj, type) else type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def canonicalize(obj: Any) -> str:
    """Deterministic text form of a configuration value.

    Supports the types configuration dataclasses are made of: primitives,
    bytes, enums, dataclasses, and dict/list/tuple/set containers.
    Anything else raises :class:`ExperimentError` — an unhashable config
    should fail loudly, not silently collide.
    """
    if obj is None or isinstance(obj, (bool, int)):
        return repr(obj)
    if isinstance(obj, float):
        return f"float:{obj!r}"
    if isinstance(obj, str):
        return f"str:{obj!r}"
    if isinstance(obj, bytes):
        return f"bytes:{obj.hex()}"
    if isinstance(obj, enum.Enum):
        return f"enum:{_qualname(obj)}={obj.value!r}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        items = []
        for field in dataclasses.fields(obj):
            if field.name.startswith("_"):
                continue
            items.append(f"{field.name}="
                         f"{canonicalize(getattr(obj, field.name))}")
        return f"dc:{_qualname(obj)}({','.join(items)})"
    if isinstance(obj, (list, tuple)):
        kind = "list" if isinstance(obj, list) else "tuple"
        return f"{kind}:[{','.join(canonicalize(item) for item in obj)}]"
    if isinstance(obj, (set, frozenset)):
        parts = sorted(canonicalize(item) for item in obj)
        return f"set:[{','.join(parts)}]"
    if isinstance(obj, dict):
        parts = sorted(f"{canonicalize(k)}:{canonicalize(v)}"
                       for k, v in obj.items())
        return f"dict:{{{','.join(parts)}}}"
    raise ExperimentError(
        f"cannot build a stable fingerprint for {type(obj).__name__!r} "
        f"values; use primitives, enums, or dataclasses in sweep configs")


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of the canonical form of *obj*."""
    return hashlib.sha256(canonicalize(obj).encode("utf-8")).hexdigest()


def config_fingerprint(config: Any, *, version: Optional[str] = None,
                       extra: Any = None,
                       schema: Optional[int] = None) -> str:
    """Cache fingerprint of one configuration value.

    The package version and the result-schema version are folded in by
    default so that results computed by older code — or pickled under an
    older summary shape — are never served for newer code; bumping
    either is a whole-cache invalidation.
    """
    if version is None:
        version = _version.__version__
    if schema is None:
        schema = SCHEMA_VERSION
    material = f"v={version};schema={schema};" \
               f"extra={canonicalize(extra)};" \
               f"config={canonicalize(config)}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def cell_key(fn: Callable, spec: Any, *, version: Optional[str] = None,
             extra: Any = None, schema: Optional[int] = None) -> str:
    """Cache key of one sweep cell: function identity + config +
    package version + result-schema version."""
    fn_id = f"{getattr(fn, '__module__', '?')}." \
            f"{getattr(fn, '__qualname__', repr(fn))}"
    if version is None:
        version = _version.__version__
    if schema is None:
        schema = SCHEMA_VERSION
    material = f"fn={fn_id};v={version};schema={schema};" \
               f"extra={canonicalize(extra)};" \
               f"spec={canonicalize(spec)}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()
