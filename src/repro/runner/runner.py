"""The process-pool sweep executor.

A *sweep* is an ordered list of independent cells, each a module-level
function applied to one picklable spec (typically a
:class:`~repro.experiments.scenario.ScenarioConfig`). The runner:

* consults the :class:`~repro.runner.cache.ResultCache` (if attached) and
  only simulates cache misses;
* shards the misses across a :class:`concurrent.futures.ProcessPoolExecutor`
  when ``jobs > 1`` (worker count from the ``--jobs`` CLI flag or the
  ``REPRO_JOBS`` environment variable), or runs them inline at ``jobs=1``
  — the serial fallback has no pool, no pickling, and no extra processes;
* returns values in the submission order regardless of completion order,
  so a parallel sweep is indistinguishable from a serial one;
* accounts per-cell wall time and (when the value carries an
  ``engine_stats`` mapping, as :class:`ScenarioSummary` does) simulated
  seconds and event counts, aggregated into a :class:`RunnerStats` whose
  :meth:`~RunnerStats.as_payload` feeds the ``BENCH_*.json`` manifests.

Determinism: cells are seeded entirely by their spec, so the merged
results of a parallel run are byte-identical to a serial run — asserted
by ``tests/runner/test_determinism.py`` via the key-sorted JSONL export.
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from time import perf_counter, sleep
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.errors import ExperimentError
from repro.obs.hist import HistogramRegistry
from repro.obs.timeseries import SeriesRegistry
from repro.runner.cache import ResultCache
from repro.runner.checkpoint import SweepCheckpoint
from repro.runner.hashing import cell_key
from repro.runner.monitor import SweepMonitor

#: Environment override for the default worker count.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """The effective worker count: explicit > ``$REPRO_JOBS`` > 1."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV)
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ExperimentError(
                    f"{JOBS_ENV}={env!r} is not an integer")
    if jobs is None:
        return 1
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass(frozen=True)
class RetryPolicy:
    """How the pool treats crashed, hung, and flaky cells.

    Timeouts and retries only apply to *infrastructure* failures — a
    worker process dying (:class:`BrokenProcessPool`) or a cell
    exceeding ``cell_timeout``. An exception raised by the cell function
    itself propagates immediately: cells are deterministic, so rerunning
    one would fail identically.

    Backoff between retry rounds is exponential with deterministic
    jitter — the jitter fraction is derived from the cell key and the
    attempt number, so two runs of the same sweep back off identically
    (no wall-clock or PRNG state leaks into scheduling).
    """

    max_attempts: int = 3
    #: Seconds a cell may *run* (queue time excluded) before the round
    #: is abandoned and the cell retried. None = never time out.
    cell_timeout: Optional[float] = None
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_max: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExperimentError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ExperimentError(
                f"cell_timeout must be positive, got {self.cell_timeout}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ExperimentError("backoff bounds must be >= 0")

    def delay(self, key: str, attempt: int) -> float:
        """Deterministically jittered backoff before retry *attempt*."""
        raw = min(self.backoff_base
                  * self.backoff_factor ** max(attempt - 1, 0),
                  self.backoff_max)
        digest = hashlib.sha256(
            f"{key}/{attempt}".encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return raw * (0.75 + 0.5 * fraction)


def _merge_overload_payload(acc: Dict[str, object],
                            block: Dict[str, object]) -> None:
    """Fold an overload block into aggregate watchdog accounting.

    Accepts either one cell's watchdog snapshot (recognised by its
    ``state`` key) or an already-aggregated block from another
    :class:`RunnerStats`. Only sums and maxima, so the fold is
    order-independent — parallel sweeps aggregate identically to serial
    ones. Per-cell detail (state series, admission tables) stays in the
    cell summaries; this block is the sweep-level roll-up.
    """
    if "state" in block:
        block = {
            "cells": 1,
            "ticks": int(block.get("ticks", 0)),
            "cookie_fallbacks": int(block.get("cookie_fallbacks", 0)),
            "transitions": dict(block.get("transitions") or {}),
            "time_in_state": dict(block.get("time_in_state") or {}),
            "peak_occupancy": float(block.get("peak_occupancy", 0.0)),
            "peak_occupancy_bytes": int(
                block.get("peak_occupancy_bytes", 0)),
            "final_states": {str(block["state"]): 1},
        }
    acc["cells"] = acc.get("cells", 0) + block["cells"]
    acc["ticks"] = acc.get("ticks", 0) + block["ticks"]
    acc["cookie_fallbacks"] = (acc.get("cookie_fallbacks", 0)
                               + block["cookie_fallbacks"])
    for table in ("transitions", "time_in_state", "final_states"):
        mine = acc.setdefault(table, {})
        for key, value in block[table].items():
            mine[key] = mine.get(key, 0) + value
    acc["peak_occupancy"] = max(acc.get("peak_occupancy", 0.0),
                                block["peak_occupancy"])
    acc["peak_occupancy_bytes"] = max(
        acc.get("peak_occupancy_bytes", 0),
        block["peak_occupancy_bytes"])


@dataclass(frozen=True)
class CellStats:
    """What one sweep cell cost."""

    index: int
    key: str
    label: str
    cached: bool
    wall_seconds: float
    sim_seconds: float = 0.0
    events_processed: int = 0

    def as_payload(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "key": self.key,
            "label": self.label,
            "cached": self.cached,
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
            "events_processed": self.events_processed,
        }


@dataclass
class RunnerStats:
    """Aggregate accounting for one sweep execution."""

    jobs: int = 1
    cells_total: int = 0
    cells_run: int = 0
    cache_hits: int = 0
    #: Cell executions beyond each cell's first attempt.
    retries: int = 0
    #: Cells abandoned because they exceeded the per-cell timeout.
    cell_timeouts: int = 0
    #: Process pools torn down early (worker crash or hung cell).
    pool_restarts: int = 0
    #: Cells a ``--resume`` checkpoint marked as already complete.
    resumed_cells: int = 0
    wall_seconds: float = 0.0          # whole-sweep wall clock
    cells: List[CellStats] = field(default_factory=list)
    #: Fixed-boundary histograms merged across every cell value that
    #: carries a ``histograms`` mapping (ScenarioSummary, DifficultyCell);
    #: order-independent, so parallel merges equal serial ones.
    histograms: HistogramRegistry = field(
        default_factory=HistogramRegistry)
    #: Streaming-telemetry series merged across every cell value that
    #: carries a ``timeseries`` mapping. Rates and gauges sum
    #: sample-for-sample (aligned cadence timestamps); per-cell quantile
    #: series stay in their summaries.
    timeseries: SeriesRegistry = field(default_factory=SeriesRegistry)
    #: Overload-watchdog accounting merged across every cell value that
    #: carries an ``overload`` block (sums and maxima only, so parallel
    #: merges equal serial ones). Empty — and absent from payloads —
    #: when no cell attached a watchdog.
    overload: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def cell_wall_seconds(self) -> float:
        """Sum of per-cell wall time (> wall_seconds when parallel)."""
        return sum(cell.wall_seconds for cell in self.cells)

    @property
    def sim_seconds(self) -> float:
        return sum(cell.sim_seconds for cell in self.cells)

    @property
    def events_processed(self) -> int:
        return sum(cell.events_processed for cell in self.cells)

    @property
    def events_per_second(self) -> float:
        """Aggregate simulated events per wall second of the sweep."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_processed / self.wall_seconds

    @property
    def sim_wall_ratio(self) -> float:
        """Simulated seconds per wall second, across the whole sweep."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.sim_seconds / self.wall_seconds

    @property
    def parallel_speedup(self) -> float:
        """Per-cell wall time over elapsed wall time (≈ worker utilisation)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.cell_wall_seconds / self.wall_seconds

    def as_payload(self) -> Dict[str, object]:
        """JSON-friendly block for the ``BENCH_*.json`` manifests."""
        payload: Dict[str, object] = {
            "jobs": self.jobs,
            "cells_total": self.cells_total,
            "cells_run": self.cells_run,
            "cache_hits": self.cache_hits,
            "retries": self.retries,
            "cell_timeouts": self.cell_timeouts,
            "pool_restarts": self.pool_restarts,
            "resumed_cells": self.resumed_cells,
            "wall_seconds": self.wall_seconds,
            "cell_wall_seconds": self.cell_wall_seconds,
            "sim_seconds": self.sim_seconds,
            "events_processed": self.events_processed,
            "events_per_second": self.events_per_second,
            "sim_wall_ratio": self.sim_wall_ratio,
            "parallel_speedup": self.parallel_speedup,
            "histograms": self.histograms.snapshot(),
            "cells": [cell.as_payload() for cell in self.cells],
        }
        # Only when telemetry ran — detached sweeps keep the exact
        # pre-telemetry manifest layout (baseline compatibility).
        if len(self.timeseries):
            payload["timeseries"] = self.timeseries.snapshot()
        # Same discipline for the degradation ladder: the block exists
        # only when some cell actually attached a watchdog.
        if self.overload:
            payload["overload"] = {
                key: (dict(sorted(value.items()))
                      if isinstance(value, dict) else value)
                for key, value in sorted(self.overload.items())
            }
        return payload

    def absorb(self, other: "RunnerStats") -> "RunnerStats":
        """Fold another sweep's accounting into this one.

        Lets a caller that runs a matrix as several single-cell sweeps
        (e.g. the chaos CLI isolating per-row failures) report one
        aggregate identical to a single ``map`` over the same cells.
        Wall clocks add; per-cell records concatenate; histograms,
        series and overload blocks merge order-independently.
        """
        self.cells_total += other.cells_total
        self.cells_run += other.cells_run
        self.cache_hits += other.cache_hits
        self.retries += other.retries
        self.cell_timeouts += other.cell_timeouts
        self.pool_restarts += other.pool_restarts
        self.resumed_cells += other.resumed_cells
        self.wall_seconds += other.wall_seconds
        offset = len(self.cells)
        for cell in other.cells:
            self.cells.append(replace(cell, index=offset + cell.index))
        self.histograms.merge(other.histograms)
        self.timeseries.merge(other.timeseries)
        if other.overload:
            _merge_overload_payload(self.overload, other.overload)
        return self

    def render(self) -> str:
        """One human line for CLI output."""
        line = (f"{self.cells_total} cells ({self.cache_hits} cached, "
                f"{self.cells_run} run) in {self.wall_seconds:.2f}s wall "
                f"at jobs={self.jobs}; {self.events_processed} events, "
                f"{self.events_per_second:,.0f} events/s, "
                f"sim/wall {self.sim_wall_ratio:.0f}x")
        if self.resumed_cells:
            line += f"; resumed past {self.resumed_cells} completed cells"
        if self.retries or self.pool_restarts:
            line += (f"; {self.retries} retries, "
                     f"{self.cell_timeouts} timeouts, "
                     f"{self.pool_restarts} pool restarts")
        return line


@dataclass
class SweepReport:
    """Values (in submission order) plus the execution accounting."""

    values: List[Any]
    stats: RunnerStats

    def __iter__(self):
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index):
        return self.values[index]


def _cell_sim_stats(value: Any) -> Dict[str, float]:
    """Pull engine accounting off a cell value, if it exposes any.

    Cell values built on :class:`~repro.experiments.summary.ScenarioSummary`
    carry the engine's ``stats()`` dict as ``engine_stats``; plain values
    simply report zeros.
    """
    stats = getattr(value, "engine_stats", None)
    if not isinstance(stats, dict):
        return {"sim_seconds": 0.0, "events_processed": 0}
    return {
        "sim_seconds": float(stats.get("sim_seconds", 0.0)),
        "events_processed": int(stats.get("events_processed", 0)),
    }


def _execute_cell(fn: Callable[[Any], Any], spec: Any) -> tuple:
    """Worker-side wrapper: run one cell and time it.

    Module-level so it pickles by reference into pool workers.
    """
    started = perf_counter()
    value = fn(spec)
    wall = perf_counter() - started
    stats = _cell_sim_stats(value)
    stats["wall_seconds"] = wall
    return value, stats


class SweepRunner:
    """Executes sweeps of ``fn(spec)`` cells, optionally parallel + cached.

    Parameters
    ----------
    jobs:
        Worker processes. ``None`` reads ``$REPRO_JOBS`` and falls back
        to 1; 1 runs serially in-process.
    cache:
        A :class:`ResultCache`, or ``None`` to always simulate.
    key_extra:
        Additional picklable material folded into every cache key (e.g.
        a benchmark-scale tag), so distinct harnesses never collide.
    retry:
        A :class:`RetryPolicy` governing worker crashes, hung cells, and
        backoff. ``None`` uses the defaults (3 attempts, no timeout).
    checkpoint:
        A :class:`~repro.runner.checkpoint.SweepCheckpoint`; every
        committed cell is recorded so an interrupted sweep can resume.
    monitor:
        A :class:`~repro.runner.monitor.SweepMonitor` observing the
        execution (status file + progress lines). Read-only over cell
        values, so monitored output stays byte-identical.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 key_extra: Any = None,
                 retry: Optional[RetryPolicy] = None,
                 checkpoint: Optional[SweepCheckpoint] = None,
                 monitor: Optional[SweepMonitor] = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.key_extra = key_extra
        self.retry = retry if retry is not None else RetryPolicy()
        self.checkpoint = checkpoint
        self.monitor = monitor

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], specs: Sequence[Any],
            labels: Optional[Sequence[str]] = None) -> SweepReport:
        """Run ``fn(spec)`` for every spec; values keep submission order.

        *labels* (optional, same length) name cells in stats and CLI
        output; they default to ``cell<i>`` and are **not** part of the
        cache key.
        """
        specs = list(specs)
        if labels is None:
            labels = [f"cell{i}" for i in range(len(specs))]
        labels = list(labels)
        if len(labels) != len(specs):
            raise ExperimentError(
                f"{len(labels)} labels for {len(specs)} specs")

        stats = RunnerStats(jobs=self.jobs, cells_total=len(specs))
        values: List[Any] = [None] * len(specs)
        cell_stats: List[Optional[CellStats]] = [None] * len(specs)
        started = perf_counter()
        monitor = self.monitor
        if monitor is not None:
            monitor.begin(labels, self.jobs)

        keys = [cell_key(fn, spec, extra=self.key_extra) for spec in specs]
        if self.checkpoint is not None:
            stats.resumed_cells = sum(
                1 for key in keys if self.checkpoint.done(key))
        pending: List[int] = []
        for i, key in enumerate(keys):
            hit = self.cache.get(key) if self.cache is not None else None
            if hit is not None:
                value, cached_stats = hit
                values[i] = value
                stats.cache_hits += 1
                sim = _cell_sim_stats(value)
                cell_stats[i] = CellStats(
                    index=i, key=key, label=labels[i], cached=True,
                    wall_seconds=float(
                        cached_stats.get("wall_seconds", 0.0)),
                    sim_seconds=sim["sim_seconds"],
                    events_processed=sim["events_processed"])
                if self.checkpoint is not None:
                    self.checkpoint.record(key, i, labels[i])
                if monitor is not None:
                    monitor.cell_done(
                        i, value,
                        wall_seconds=float(
                            cached_stats.get("wall_seconds", 0.0)),
                        cached=True)
            else:
                pending.append(i)

        if pending and self.jobs == 1:
            for i in pending:
                if monitor is not None:
                    monitor.cell_running(i)
                value, run_stats = _execute_cell(fn, specs[i])
                self._commit(values, cell_stats, stats, labels, keys, i,
                             value, run_stats)
        elif pending:
            self._run_pool(fn, specs, labels, keys, pending, values,
                           cell_stats, stats)

        stats.cells_run = len(pending)
        stats.wall_seconds = perf_counter() - started
        stats.cells = [cs for cs in cell_stats if cs is not None]
        # Merge duration histograms across cells in submission order
        # (fixed boundaries make the merge order-independent anyway, so
        # parallel and serial sweeps produce identical aggregates).
        for value in values:
            hists = getattr(value, "histograms", None)
            if hists:
                stats.histograms.merge(hists)
            series = getattr(value, "timeseries", None)
            if series:
                stats.timeseries.merge(series)
            overload = getattr(value, "overload", None)
            if overload:
                _merge_overload_payload(stats.overload, overload)
        if monitor is not None:
            monitor.finish(stats)
        return SweepReport(values=values, stats=stats)

    # ------------------------------------------------------------------
    def _commit(self, values, cell_stats, stats, labels, keys, index,
                value, run_stats) -> None:
        values[index] = value
        cell_stats[index] = CellStats(
            index=index, key=keys[index], label=labels[index],
            cached=False,
            wall_seconds=float(run_stats.get("wall_seconds", 0.0)),
            sim_seconds=float(run_stats.get("sim_seconds", 0.0)),
            events_processed=int(run_stats.get("events_processed", 0)))
        if self.cache is not None:
            self.cache.put(keys[index], value, run_stats)
        # Checkpoint *after* the cache write: a crash between the two
        # reruns the cell on resume rather than trusting a missing value.
        if self.checkpoint is not None:
            self.checkpoint.record(keys[index], index, labels[index])
        if self.monitor is not None:
            self.monitor.cell_done(
                index, value,
                wall_seconds=float(run_stats.get("wall_seconds", 0.0)))

    def _run_pool(self, fn, specs, labels, keys, pending, values,
                  cell_stats, stats) -> None:
        """Run pending cells in rounds, surviving crashes and hangs.

        Each round gets a fresh :class:`ProcessPoolExecutor`. A round
        ends cleanly when every cell committed, or early when a worker
        dies (:class:`BrokenProcessPool`) or a cell overruns the retry
        policy's ``cell_timeout`` — the pool is then torn down and the
        uncommitted cells retried, up to ``max_attempts`` each, with
        deterministic exponential backoff between rounds.
        """
        retry = self.retry
        attempts: Dict[int, int] = {i: 0 for i in pending}
        remaining = list(pending)
        while remaining:
            exhausted = [i for i in remaining
                         if attempts[i] + 1 > retry.max_attempts]
            if exhausted:
                i = exhausted[0]
                raise ExperimentError(
                    f"sweep cell {labels[i]!r} failed "
                    f"{retry.max_attempts} attempts "
                    f"(worker crashes or timeouts); giving up")
            retrying = [i for i in remaining if attempts[i] > 0]
            if retrying:
                stats.retries += len(retrying)
                if self.monitor is not None:
                    self.monitor.worker_event(retries=len(retrying))
                backoff = max(retry.delay(keys[i], attempts[i])
                              for i in retrying)
                if backoff > 0:
                    sleep(backoff)
            for i in remaining:
                attempts[i] += 1
            committed = self._pool_round(fn, specs, labels, keys,
                                         remaining, values, cell_stats,
                                         stats)
            remaining = [i for i in remaining if i not in committed]

    def _pool_round(self, fn, specs, labels, keys, pending, values,
                    cell_stats, stats) -> Set[int]:
        """One pool lifetime; returns the set of committed cell indices."""
        retry = self.retry
        committed: Set[int] = set()
        workers = min(self.jobs, len(pending))
        pool = ProcessPoolExecutor(max_workers=workers)
        clean = True
        try:
            futures = {
                pool.submit(_execute_cell, fn, specs[i]): i
                for i in pending
            }
            #: perf_counter() at which each future was first seen
            #: *running* — queue time must not count against the cell
            #: timeout, or a deep queue at low jobs times out unstarted
            #: cells.
            started: Dict[Any, float] = {}
            outstanding = set(futures)
            monitor = self.monitor
            while outstanding:
                now = perf_counter()
                for future in outstanding:
                    if future not in started and future.running():
                        started[future] = now
                        if monitor is not None:
                            monitor.cell_running(futures[future])
                if monitor is not None:
                    monitor.heartbeat()
                if retry.cell_timeout is None:
                    timeout = None
                else:
                    running = [started[f] for f in outstanding
                               if f in started]
                    if running:
                        deadline = min(running) + retry.cell_timeout
                        timeout = max(deadline - now, 0.0)
                    else:
                        timeout = 0.05  # poll until a worker picks one up
                done, _ = wait(outstanding, timeout=timeout,
                               return_when=FIRST_COMPLETED)
                for future in done:
                    outstanding.discard(future)
                    i = futures[future]
                    value, run_stats = future.result()
                    self._commit(values, cell_stats, stats, labels, keys,
                                 i, value, run_stats)
                    committed.add(i)
                if retry.cell_timeout is not None and not done:
                    now = perf_counter()
                    hung = [f for f in outstanding if f in started
                            and now - started[f] >= retry.cell_timeout]
                    if hung:
                        # Can't kill one worker's task without killing
                        # the pool; abandon the round — committed cells
                        # stay committed, the rest retry.
                        stats.cell_timeouts += len(hung)
                        stats.pool_restarts += 1
                        if monitor is not None:
                            monitor.worker_event(
                                pool_restarts=1,
                                cell_timeouts=len(hung))
                        clean = False
                        return committed
        except BrokenProcessPool:
            stats.pool_restarts += 1
            if self.monitor is not None:
                self.monitor.worker_event(pool_restarts=1)
            clean = False
            return committed
        except BaseException:
            # A cell function raised: propagate, but tear the pool down
            # hard first — cells are deterministic, waiting on siblings
            # buys nothing.
            clean = False
            raise
        finally:
            if clean:
                pool.shutdown(wait=True)
            else:
                self._terminate_pool(pool)
        return committed

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down without waiting on in-flight cells.

        ``shutdown(cancel_futures=True)`` only cancels *queued* work; a
        hung or orphaned worker must be terminated directly. `_processes`
        is private but has been stable across CPython 3.7–3.13, and the
        fallback is merely a slower shutdown.
        """
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except (OSError, ValueError):  # pragma: no cover
                pass
        pool.shutdown(wait=False, cancel_futures=True)
