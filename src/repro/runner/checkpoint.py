"""Crash-safe sweep checkpointing (``tcp-puzzles sweep --resume``).

A checkpoint is an append-only JSONL file under the cache directory: one
line per completed cell, written (and flushed) the moment the cell
commits. If the sweep process dies — OOM killer, ^C, a worker taking the
parent down — the file survives with at worst one torn trailing line,
which the loader skips. On resume, completed cells are already in the
:class:`~repro.runner.cache.ResultCache`, so the runner replays them as
cache hits and only simulates what the crash interrupted.

The checkpoint stores cache *keys*, not values: the cache remains the
single source of truth for results, and a checkpoint against a cold
cache degrades gracefully (the cells simply rerun).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Set, Union

from repro.runner.cache import default_cache_dir


def checkpoint_path(identity: str,
                    root: Union[str, Path, None] = None) -> Path:
    """Where the checkpoint for a sweep with this identity hash lives."""
    base = Path(root) if root is not None else default_cache_dir()
    return base / "checkpoints" / f"{identity[:32]}.jsonl"


class SweepCheckpoint:
    """Append-only record of which sweep cells have committed."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._done: Set[str] = set()
        self._handle = None
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                # A crash mid-append leaves at most one torn line; it
                # carries no information beyond "this cell didn't finish".
                continue
            key = entry.get("key") if isinstance(entry, dict) else None
            if key:
                self._done.add(key)

    # ------------------------------------------------------------------
    def done(self, key: str) -> bool:
        return key in self._done

    @property
    def count(self) -> int:
        """How many distinct cells have committed."""
        return len(self._done)

    def record(self, key: str, index: int = 0, label: str = "") -> None:
        """Mark a cell complete; appends one flushed JSONL line."""
        if key in self._done:
            return
        self._done.add(key)
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
            # A crash mid-append can leave the file without a trailing
            # newline; terminate the torn line so this record does not
            # merge into it (and vanish on the next load).
            if self._handle.tell() > 0:
                with open(self.path, "rb") as fh:
                    fh.seek(-1, os.SEEK_END)
                    torn = fh.read(1) != b"\n"
                if torn:
                    self._handle.write("\n")
        self._handle.write(json.dumps(
            {"key": key, "index": index, "label": label},
            sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def clear(self) -> None:
        """Forget everything and delete the file (sweep finished clean)."""
        self.close()
        self._done.clear()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
