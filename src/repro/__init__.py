"""Reproduction of *Revisiting Client Puzzles for State Exhaustion Attacks
Resilience* (Noureddine, Fawaz, Başar, Sanders — DSN 2019).

The package is organised in two halves, mirroring the paper:

* the **theory** — a Stackelberg game between a server (leader, picks the
  puzzle difficulty) and its clients (followers, pick request rates at Nash
  equilibrium), in :mod:`repro.core`;
* the **system** — TCP client puzzles wired into a handshake stack, together
  with the substrates needed to evaluate them (discrete-event engine, network
  model, host models, attackers), in :mod:`repro.sim`, :mod:`repro.net`,
  :mod:`repro.tcp`, :mod:`repro.puzzles` and :mod:`repro.hosts`.

The evaluation section of the paper is reproduced experiment-by-experiment in
:mod:`repro.experiments`; see ``DESIGN.md`` for the per-figure index.

Quickstart::

    from repro import nash_difficulty
    params = nash_difficulty(w_av=140630, alpha=1.1)   # -> (k=2, m=17)
"""

from repro._version import __version__
from repro.core.theorem import (
    equilibrium_difficulty,
    max_feasible_difficulty,
    nash_difficulty,
)
from repro.core.equilibrium import ClientGame, NashSolution
from repro.core.stackelberg import StackelbergGame, ProviderSolution
from repro.core.profiling import (
    ClientProfile,
    ServerProfile,
    estimate_alpha,
    estimate_w_av,
)
from repro.puzzles.params import PuzzleParams
from repro.puzzles.juels import JuelsBrainardScheme, Challenge, Solution
from repro.hosts.cpu import CPUProfile, CPU_CATALOG

__all__ = [
    "__version__",
    "equilibrium_difficulty",
    "max_feasible_difficulty",
    "nash_difficulty",
    "ClientGame",
    "NashSolution",
    "StackelbergGame",
    "ProviderSolution",
    "ClientProfile",
    "ServerProfile",
    "estimate_alpha",
    "estimate_w_av",
    "PuzzleParams",
    "JuelsBrainardScheme",
    "Challenge",
    "Solution",
    "CPUProfile",
    "CPU_CATALOG",
]
