"""The shared §6 evaluation scenario.

One server (HP DL360-class, µ = 1100 req/s) serves 15 clients requesting
10,000 bytes at 20 req/s each over the Figure 16 topology, while a botnet
of 10 machines attacks at 500 attempts/s each. Experiments vary the defense
mode, puzzle difficulty, attack style/rate/size, and adoption flags.

Scale-down: the paper's 600 s run (attack 120–480 s) is shrunk by
``time_scale`` (default 0.1 → 60 s run, attack 12–48 s) with identical
*rates*; queue bounds shrink with a milder factor so transients stay
proportionate. ``ScenarioConfig.paper_scale()`` restores full scale.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.errors import ExperimentError
from repro.hosts.attacker import AttackerConfig
from repro.hosts.botnet import Botnet, build_botnet
from repro.hosts.client import BenignClient, ClientConfig
from repro.hosts.cpu import CPU_CATALOG, SERVER_CPU, CPUProfile
from repro.hosts.host import Host
from repro.hosts.server import AppServer, ServerConfig
from repro.metrics.connections import ConnectionTracker
from repro.metrics.cpuutil import CPUUtilizationSampler
from repro.metrics.series import BinnedSeries
from repro.metrics.queues import QueueSampler
from repro.metrics.summary import Summary, describe
from repro.metrics.throughput import HostThroughput
from repro.net.addresses import AddressAllocator
from repro.net.network import Network
from repro.net.pcap import PacketCapture
from repro.net.topology import Topology, deter_topology
from repro.obs import (EngineProfiler, Observability, SimSampler,
                       SourceAttribution, TelemetrySpec, hub_for)
from repro.puzzles.juels import JuelsBrainardScheme
from repro.puzzles.params import PuzzleParams
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.tcp.constants import DefenseMode
from repro.tcp.fairness import FairnessConfig, FairQueuingPolicy
from repro.tcp.listener import DefenseConfig
from repro.tcp.overload import (AdmissionControl, OverloadConfig,
                                OverloadWatchdog)
from repro.tcp.syncache import SynCache


@dataclass
class ScenarioConfig:
    """Everything that varies across the paper's experiments."""

    seed: int = 1
    # --- timeline (scaled) -------------------------------------------
    time_scale: float = 0.1
    base_duration: float = 600.0
    base_attack_start: float = 120.0
    base_attack_end: float = 480.0
    # --- benign population -------------------------------------------
    n_clients: int = 15
    client_rate: float = 20.0
    request_size: int = 10_000
    clients_patched: bool = True        # run the kernel patch
    clients_solve: bool = True          # and solve challenges
    # --- attack --------------------------------------------------------
    n_attackers: int = 10
    attack_rate: float = 500.0          # per bot, attempts/second
    #: "syn" (spoofed half-open flood), "connect" (handshake-completing
    #: flood), or "mixed" — half the botnet on each vector, the
    #: multi-vector pattern the paper's introduction motivates.
    attack_style: str = "connect"
    attackers_solve: bool = True        # §6 Exp 2: all machines patched
    attack_enabled: bool = True
    #: Size of each bot's blocking socket pool (nping-style): against a
    #: challenging server, slots block for ~the tool timeout, dropping the
    #: measured attack rate to ≈ pool/timeout per bot (Figures 13a/14a).
    attacker_max_pending: int = 150
    # --- server / defense ----------------------------------------------
    defense: DefenseMode = DefenseMode.PUZZLES
    puzzle_params: PuzzleParams = field(
        default_factory=lambda: PuzzleParams(k=2, m=17))
    #: Optional Puzzle Fair Queuing (§7 extension): per-source difficulty
    #: escalation instead of uniform pricing.
    fairness: Optional["FairnessConfig"] = None
    #: "modeled" (sampled attempt counts — the fast default) or "real"
    #: (actual SHA-256 brute force end to end; keep m small). Both modes
    #: share the binding/expiry semantics.
    crypto_mode: str = "modeled"
    #: Challenge every SYN regardless of queue pressure (DefenseConfig
    #: passthrough). The chaos corruption fault needs puzzle options on
    #: the wire even before the queues fill.
    always_challenge: bool = False
    backlog: int = 1024
    accept_backlog: int = 1024
    service_rate: float = 1100.0
    workers: int = 128
    idle_timeout: float = 0.57
    # --- measurement -----------------------------------------------------
    bin_width: float = 1.0
    cpu_sample_interval: float = 1.0
    queue_sample_interval: float = 0.5
    # --- observability ---------------------------------------------------
    #: Record handshake tracepoints (ring-buffered; off by default so the
    #: hot path stays a single flag test).
    tracing: bool = False
    trace_capacity: int = 65536
    #: Attach a profiler to the event loop: ``True``/``"basic"`` for the
    #: per-kind :class:`~repro.obs.EngineProfiler`, ``"attribution"``
    #: (or ``"attribution+mem"``) for the per-component
    #: :class:`~repro.obs.AttributionProfiler`.
    profile: object = False
    #: Streaming telemetry (:class:`~repro.obs.TelemetrySpec`): sim-time
    #: series sampled on a fixed cadence, plus optional bounded-memory
    #: per-source attribution sketches on the listener. ``None`` (the
    #: default) builds nothing — no sampler, no scheduled events, no
    #: per-event cost.
    telemetry: Optional[TelemetrySpec] = None
    #: Graceful-degradation ladder (:class:`~repro.tcp.overload.
    #: OverloadConfig`): sharded/budgeted syncache construction, the
    #: syncookie-fallback watermarks, admission control, and the overload
    #: watchdog. ``None`` (the default) builds none of it — runs are
    #: byte-identical to a ladder-less build.
    overload: Optional[OverloadConfig] = None
    # --- hardware --------------------------------------------------------
    client_cpus: Optional[List[CPUProfile]] = None
    attacker_cpus: Optional[List[CPUProfile]] = None

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        return self.base_duration * self.time_scale

    @property
    def attack_start(self) -> float:
        return self.base_attack_start * self.time_scale

    @property
    def attack_end(self) -> float:
        return self.base_attack_end * self.time_scale

    def paper_scale(self) -> "ScenarioConfig":
        """Full-length 600 s timeline with paper-sized queue bounds."""
        return replace(self, time_scale=1.0, backlog=4096,
                       accept_backlog=4096)

    def __post_init__(self) -> None:
        if self.time_scale <= 0:
            raise ExperimentError("time_scale must be positive")
        if not (0 <= self.base_attack_start <= self.base_attack_end
                <= self.base_duration):
            raise ExperimentError(
                "need 0 <= attack_start <= attack_end <= duration")
        if self.attack_style not in ("syn", "connect", "mixed"):
            raise ExperimentError(
                f"unknown attack_style {self.attack_style!r}")


@dataclass
class ScenarioResult:
    """Everything measured during one scenario run."""

    config: ScenarioConfig
    engine: Engine
    tracker: ConnectionTracker
    server_throughput: HostThroughput
    client_throughput: HostThroughput   # the paper's "a client" (client0)
    cpu: CPUUtilizationSampler
    queues: QueueSampler
    server_app: AppServer
    botnet: Optional[Botnet]
    clients: List[BenignClient]
    hosts: Dict[str, Host]
    #: Server-side establishment events, classified "client"/"attacker"
    #: by remote address — the ground truth behind Figure 11.
    server_established: Dict[str, BinnedSeries] = field(
        default_factory=dict)
    #: The engine's observability hub (SNMP counters + handshake tracer).
    obs: Optional[Observability] = None
    #: Event-loop profiler, present when ``config.profile`` was set.
    profiler: Optional[EngineProfiler] = None
    #: Streaming-telemetry sampler, present when ``config.telemetry``
    #: was set.
    sampler: Optional[SimSampler] = None
    #: Bounded-memory per-source attribution sketches, present when
    #: ``config.telemetry`` asked for them.
    attribution: Optional[SourceAttribution] = None
    #: The fault injector, present when the scenario ran with a
    #: non-empty :class:`~repro.faults.schedule.FaultSchedule`.
    fault_injector: Optional[object] = None
    #: The runtime invariant checker, when one was attached.
    invariants: Optional[object] = None
    #: The overload watchdog, present when ``config.overload`` was set.
    watchdog: Optional[OverloadWatchdog] = None

    # ------------------------------------------------------------------
    # Convenience summaries used across experiments
    # ------------------------------------------------------------------
    @property
    def listener_stats(self):
        return self.server_app.listener.stats

    def attack_window(self) -> tuple:
        return (self.config.attack_start, self.config.attack_end)

    def client_throughput_during_attack(self) -> Summary:
        """Per-bin client rx throughput (Mbps) over the attack window."""
        start, end = self.attack_window()
        times, mbps = self.client_throughput.rx_mbps(self.config.duration)
        mask = (times >= start) & (times < end)
        return describe(mbps[mask])

    def server_throughput_during_attack(self) -> Summary:
        start, end = self.attack_window()
        times, mbps = self.server_throughput.tx_mbps(self.config.duration)
        mask = (times >= start) & (times < end)
        return describe(mbps[mask])

    def client_throughput_before_attack(self) -> Summary:
        times, mbps = self.client_throughput.rx_mbps(self.config.duration)
        mask = times < self.config.attack_start
        return describe(mbps[mask])

    def attacker_established_rate(self, start: Optional[float] = None,
                                  end: Optional[float] = None) -> float:
        """Mean attacker connections/second established *at the server*
        during the attack (Figure 11's 'effective attack rate').

        Measured server-side: a flooder that believes it connected (its ACK
        was silently ignored) does not count — only accepted state does.
        Defaults to the whole attack window; pass *start*/*end* to exclude
        e.g. the pre-protection transient (scaled-down runs concentrate it).
        """
        window_start, window_end = self.attack_window()
        if start is None:
            start = window_start
        if end is None:
            end = window_end
        series = self.server_established.get("attacker")
        if series is None:
            return 0.0
        return series.window_sum(start, end) / max(end - start, 1e-9)

    def attacker_steady_state_rate(self) -> float:
        """Effective attack rate over the second half of the attack window
        — past the engagement transient."""
        start, end = self.attack_window()
        return self.attacker_established_rate(start=(start + end) / 2.0)

    def attacker_established_series(self) -> tuple:
        """(times, connections/second) accepted from attackers (Fig. 11)."""
        series = self.server_established.get("attacker")
        if series is None:
            series = BinnedSeries(self.config.bin_width)
        return series.rate_series(self.config.duration)

    def attacker_measured_rate(self) -> float:
        """Mean attacker SYN/attempt rate actually achieved (Figures 13a,
        14a: CPU-bound bots fall below their configured rate)."""
        if self.botnet is None:
            return 0.0
        start, end = self.attack_window()
        return self.botnet.aggregate_stats().syns_sent / max(
            end - start, 1e-9)

    def client_completion_percent(self) -> float:
        start, end = self.attack_window()
        counts = {"attempts": 0, "completed": 0}
        for record in self.tracker.records:
            if record.label != "client":
                continue
            if not start <= record.t_open < end:
                continue
            counts["attempts"] += 1
            if record.t_completed is not None:
                counts["completed"] += 1
        if counts["attempts"] == 0:
            return float("nan")
        return 100.0 * counts["completed"] / counts["attempts"]


class Scenario:
    """Builds and runs one instance of the §6 testbed."""

    def __init__(self, config: Optional[ScenarioConfig] = None,
                 faults: Optional[object] = None,
                 invariant_interval: float = 0.0) -> None:
        self.config = config if config is not None else ScenarioConfig()
        #: Optional :class:`~repro.faults.schedule.FaultSchedule`; the
        #: injector shares the scenario seed, so ``(seed, schedule)``
        #: fully determines the perturbed run.
        self.faults = faults
        #: Run the :class:`~repro.faults.invariants.InvariantChecker`
        #: every this many sim-seconds (0 = off).
        self.invariant_interval = invariant_interval

    # ------------------------------------------------------------------
    def build(self) -> ScenarioResult:
        config = self.config
        engine = Engine()
        # Configure the hub before any Host exists so every host shares
        # a tracer that is already sized and armed (or not).
        obs = hub_for(engine)
        obs.tracer.configure(capacity=config.trace_capacity,
                             enabled=config.tracing)
        profiler: Optional[EngineProfiler] = None
        if config.profile:
            from repro.obs.perf import make_profiler

            profiler = make_profiler(config.profile)
            engine.attach_profiler(profiler)
        streams = RngStreams(config.seed)
        topology = deter_topology(config.n_clients, config.n_attackers)
        network = Network(engine, topology)
        allocator = AddressAllocator()

        # --- server ----------------------------------------------------
        server_host = Host("server", allocator.allocate(), engine, network,
                           SERVER_CPU, streams.get("server"))
        scheme = JuelsBrainardScheme(mode=config.crypto_mode)
        solver = scheme.solver()
        defense = DefenseConfig(
            mode=config.defense,
            puzzle_params=config.puzzle_params,
            scheme=scheme,
            backlog=config.backlog,
            accept_backlog=config.accept_backlog,
            always_challenge=config.always_challenge,
            fairness=(FairQueuingPolicy(config.fairness)
                      if config.fairness is not None else None))
        if config.overload is not None:
            ov = config.overload
            if config.defense is DefenseMode.SYNCACHE:
                defense.syncache = SynCache(
                    bucket_count=ov.syncache_buckets,
                    bucket_limit=ov.syncache_bucket_limit,
                    shard_count=ov.syncache_shards,
                    policy=ov.syncache_policy,
                    rng=streams.get("syncache"),
                    memory_budget=ov.syncache_memory_budget,
                    lifetime=ov.syncache_lifetime)
                defense.syncache_lifetime = ov.syncache_lifetime
                defense.syncache_high_watermark = ov.high_watermark
                defense.syncache_low_watermark = ov.low_watermark
        server_config = ServerConfig(
            service_rate=config.service_rate,
            workers=config.workers,
            idle_timeout=config.idle_timeout,
            defense=defense)
        server_app = AppServer(server_host, server_config)

        tracker = ConnectionTracker(engine, bin_width=config.bin_width)
        hosts: Dict[str, Host] = {"server": server_host}

        # --- clients -----------------------------------------------------
        client_cpus = config.client_cpus or list(CPU_CATALOG.values())
        clients: List[BenignClient] = []
        cpu_cycle = itertools.cycle(client_cpus)
        for i in range(config.n_clients):
            host = Host(f"client{i}", allocator.allocate(), engine, network,
                        next(cpu_cycle), streams.get(f"client{i}"))
            hosts[host.name] = host
            client_config = ClientConfig(
                server_ip=server_host.address,
                request_rate=config.client_rate,
                request_size=config.request_size,
                supports_puzzles=config.clients_patched,
                solve_puzzles=config.clients_solve,
                solver=solver)
            clients.append(BenignClient(host, client_config, tracker))

        # --- botnet ------------------------------------------------------
        botnet: Optional[Botnet] = None
        if config.attack_enabled and config.n_attackers > 0:
            attacker_cpus = config.attacker_cpus or list(
                CPU_CATALOG.values())
            attacker_hosts = []
            cpu_cycle = itertools.cycle(attacker_cpus)
            for i in range(config.n_attackers):
                host = Host(f"attacker{i}", allocator.allocate(), engine,
                            network, next(cpu_cycle),
                            streams.get(f"attacker{i}"))
                hosts[host.name] = host
                attacker_hosts.append(host)
            attacker_config = AttackerConfig(
                server_ip=server_host.address,
                rate=config.attack_rate,
                solve=config.attackers_solve,
                max_pending=config.attacker_max_pending,
                solver=solver)
            if config.attack_style == "mixed":
                # Multi-vector: half the fleet floods spoofed SYNs, half
                # completes handshakes.
                half = len(attacker_hosts) // 2
                syn_half = build_botnet(attacker_hosts[:half], "syn",
                                        attacker_config, tracker)
                conn_half = build_botnet(attacker_hosts[half:], "connect",
                                         attacker_config, tracker)
                botnet = Botnet(bots=syn_half.bots + conn_half.bots)
            else:
                botnet = build_botnet(attacker_hosts, config.attack_style,
                                      attacker_config, tracker)

        # --- metrics -------------------------------------------------------
        server_throughput = HostThroughput(server_host.address,
                                           config.bin_width)
        client_throughput = HostThroughput(hosts["client0"].address,
                                           config.bin_width)
        network.add_throughput_tap(server_throughput)
        network.add_throughput_tap(client_throughput)

        attacker_ips = {host.address for name, host in hosts.items()
                        if name.startswith("attacker")}
        server_established = {
            "client": BinnedSeries(config.bin_width),
            "attacker": BinnedSeries(config.bin_width),
        }

        def on_established(remote_ip: int, path) -> None:
            label = "attacker" if remote_ip in attacker_ips else "client"
            server_established[label].add(engine.now)

        server_app.listener.on_established_hook = on_established

        cpu_hosts = [hosts["client0"], server_host]
        if botnet is not None:
            cpu_hosts.append(hosts["attacker0"])
        cpu = CPUUtilizationSampler(engine, cpu_hosts,
                                    config.cpu_sample_interval)
        queues = QueueSampler(engine, server_app.listener,
                              config.queue_sample_interval)

        # --- streaming telemetry (opt-in) ------------------------------
        sampler: Optional[SimSampler] = None
        attribution: Optional[SourceAttribution] = None
        if config.telemetry is not None:
            sampler = SimSampler(engine, obs, config.telemetry,
                                 listener=server_app.listener)
            if config.telemetry.attribution:
                attribution = SourceAttribution.from_spec(
                    config.telemetry, seed=config.seed)
                server_app.listener.attribution = attribution

        # --- graceful-degradation ladder (opt-in) ----------------------
        watchdog: Optional[OverloadWatchdog] = None
        if config.overload is not None:
            if config.overload.syn_rate_limit is not None:
                server_app.listener.admission = AdmissionControl(
                    config.overload)
            watchdog = OverloadWatchdog(server_app.listener,
                                        config.overload)

        return ScenarioResult(
            config=config, engine=engine, tracker=tracker,
            server_throughput=server_throughput,
            client_throughput=client_throughput,
            cpu=cpu, queues=queues, server_app=server_app, botnet=botnet,
            clients=clients, hosts=hosts,
            server_established=server_established,
            obs=obs, profiler=profiler, sampler=sampler,
            attribution=attribution, watchdog=watchdog)

    # ------------------------------------------------------------------
    def run(self) -> ScenarioResult:
        """Build, run to the configured duration, and return the result."""
        result = self.build()
        config = self.config
        # Fault injection and invariant checking are imported lazily so
        # the plain scenario path never pays for (or depends on) them.
        if self.faults is not None and not self.faults.is_empty():
            from repro.faults.injectors import FaultInjector

            injector = FaultInjector(self.faults, seed=config.seed)
            injector.install(result.engine,
                             result.hosts["server"].network,
                             result.server_app.listener)
            result.fault_injector = injector
        checker = None
        if self.invariant_interval > 0:
            from repro.faults.invariants import InvariantChecker

            tracer = result.obs.tracer if result.obs is not None else None
            checker = InvariantChecker(result.server_app.listener,
                                       interval=self.invariant_interval,
                                       tracer=tracer)
            checker.start()
            result.invariants = checker
        for client in result.clients:
            client.start()
        result.cpu.start()
        result.queues.start()
        if result.sampler is not None:
            result.sampler.start()
        if result.watchdog is not None:
            result.watchdog.start()
        if result.botnet is not None:
            result.engine.schedule_at(
                config.attack_start,
                lambda: result.botnet.start(
                    stagger=1.0 / (config.attack_rate
                                   * max(1, config.n_attackers))))
            result.engine.schedule_at(config.attack_end,
                                      result.botnet.stop)
        if result.profiler is not None:
            # Memory/GC bracketing (no-op on the plain profiler and on
            # attribution profilers without the opt-in flags).
            start = getattr(result.profiler, "start", None)
            if start is not None:
                start()
        result.engine.run(until=config.duration)
        if result.profiler is not None:
            finish = getattr(result.profiler, "finish", None)
            if finish is not None:
                finish()
        for client in result.clients:
            client.stop()
        result.cpu.stop()
        result.queues.stop()
        if result.sampler is not None:
            result.sampler.stop()
        if result.watchdog is not None:
            result.watchdog.stop()
        if checker is not None:
            # Audit once more while timer state is still live — drain()
            # would discard the evidence a leaked TCB leaves behind.
            checker.final_check()
        result.engine.drain()
        return result
