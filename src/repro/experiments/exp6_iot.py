"""Experiment 6 (Table 1): impact of TCP puzzles on IoT devices.

Reproduces the table — per-device hash rate and hashes-in-400 ms — and
extends it with the derived quantity the section argues from: the maximum
connection-flood rate a device can sustain at the Nash difficulty
(``hash_rate / ℓ(p*)``), i.e. how badly puzzles blunt an IoT botnet.

:func:`iot_botnet_scenario` additionally runs the §6 connection flood with
the bots on Raspberry Pi CPUs, for the benches that quantify the
"IoT-based botnets become unable to launch such attacks" claim.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.core.profiling import DEFAULT_DELAY_BUDGET_SECONDS
from repro.experiments.scenario import Scenario, ScenarioConfig, \
    ScenarioResult
from repro.experiments.summary import ScenarioSummary, run_scenario_summary
from repro.runner import SweepRunner
from repro.hosts.cpu import (
    IOT_CATALOG,
    IOT_MEASURED_HASHES_400MS,
    CPUProfile,
)
from repro.puzzles.params import PuzzleParams
from repro.tcp.constants import DefenseMode


@dataclass(frozen=True)
class IotProfileRow:
    """One Table 1 row, extended with the Nash-difficulty implication."""

    device: str
    description: str
    average_hashing_rate: float
    hashes_in_400ms: float
    paper_hashes_in_400ms: int
    #: Connections/second the device can complete at the Nash difficulty —
    #: its ceiling as a connection-flood bot.
    nash_solves_per_second: float


def iot_profile_table(params: Optional[PuzzleParams] = None
                      ) -> List[IotProfileRow]:
    """Table 1, with the derived flood-rate ceiling column."""
    params = params if params is not None else PuzzleParams(k=2, m=17)
    rows = []
    for name, profile in IOT_CATALOG.items():
        rows.append(IotProfileRow(
            device=name,
            description=profile.description,
            average_hashing_rate=profile.hash_rate,
            hashes_in_400ms=profile.hash_rate
            * DEFAULT_DELAY_BUDGET_SECONDS,
            paper_hashes_in_400ms=IOT_MEASURED_HASHES_400MS[name],
            nash_solves_per_second=profile.hash_rate
            / params.expected_hashes))
    return rows


def iot_config(base: Optional[ScenarioConfig] = None) -> ScenarioConfig:
    """The §6 connection-flood config with Raspberry Pi bots at Nash."""
    config = base if base is not None else ScenarioConfig()
    return replace(config,
                   defense=DefenseMode.PUZZLES,
                   puzzle_params=PuzzleParams(k=2, m=17),
                   attack_style="connect",
                   attackers_solve=True,
                   attacker_cpus=list(IOT_CATALOG.values()))


def iot_botnet_scenario(base: Optional[ScenarioConfig] = None
                        ) -> ScenarioResult:
    """The §6 connection flood with Raspberry Pi bots at Nash difficulty."""
    return Scenario(iot_config(base)).run()


def iot_seed_sweep(seeds: Sequence[int] = (1, 2, 3),
                   base: Optional[ScenarioConfig] = None,
                   runner: Optional[SweepRunner] = None
                   ) -> List[ScenarioSummary]:
    """The IoT flood repeated over *seeds* — one summary per replicate."""
    if runner is None:
        runner = SweepRunner()
    configs = [replace(iot_config(base), seed=seed) for seed in seeds]
    report = runner.map(run_scenario_summary, configs,
                        labels=[f"seed{seed}" for seed in seeds])
    return list(report.values)
