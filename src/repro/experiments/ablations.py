"""Ablations beyond the paper's figures, for the design choices DESIGN.md
calls out.

* :func:`controller_ablation` — opportunistic (queue-triggered) versus
  always-on challenges: quantifies what the opportunistic controller buys
  benign clients when there is *no* attack, and costs during one.
* :func:`expiry_window_ablation` — replay-defence window versus the rate a
  replaying attacker can sustain (§7 "Replay attacks").
* :func:`syncache_ablation` — SYN-cache capacity versus SYN-flood survival
  (§2.1's argument that caches fail against large botnets).
* :func:`finite_n_convergence` — how fast the exact finite-N Stackelberg
  optimum approaches Theorem 1's asymptotic ``w_av/(α+1)`` (Appendix A).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.core.equilibrium import ClientGame
from repro.core.stackelberg import StackelbergGame
from repro.core.theorem import equilibrium_difficulty
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.puzzles.juels import (
    FlowBinding,
    JuelsBrainardScheme,
    ModeledSolver,
)
from repro.puzzles.params import PuzzleParams
from repro.puzzles.replay import ExpiryPolicy
from repro.tcp.constants import DefenseMode
from repro.tcp.syncache import SynCache


@dataclass(frozen=True)
class ControllerAblationRow:
    controller: str                 # "opportunistic" | "always-on"
    attack: bool
    client_mean_mbps: float
    client_completion_percent: float
    challenges_sent: int
    attacker_established_rate: float


def controller_ablation(base: Optional[ScenarioConfig] = None
                        ) -> List[ControllerAblationRow]:
    """Opportunistic vs always-on challenges, with and without attack."""
    rows = []
    for always in (False, True):
        for attack in (False, True):
            config = base if base is not None else ScenarioConfig()
            config = replace(config, defense=DefenseMode.PUZZLES,
                             attack_style="connect",
                             attack_enabled=attack)
            scenario = Scenario(config)
            result = scenario.build()
            result.server_app.listener.config.always_challenge = always
            _run_built(scenario, result)
            start, end = result.attack_window()
            times, mbps = result.client_throughput.rx_mbps(config.duration)
            mask = (times >= start) & (times < end)
            mean = float(mbps[mask].mean()) if mask.any() else float("nan")
            rows.append(ControllerAblationRow(
                controller="always-on" if always else "opportunistic",
                attack=attack,
                client_mean_mbps=mean,
                client_completion_percent=result.client_completion_percent(),
                challenges_sent=result.listener_stats.synacks_challenge,
                attacker_established_rate=(
                    result.attacker_established_rate())))
    return rows


def _run_built(scenario: Scenario, result) -> None:
    """Drive an already-built scenario the way Scenario.run does."""
    config = scenario.config
    for client in result.clients:
        client.start()
    result.cpu.start()
    result.queues.start()
    if result.botnet is not None:
        result.engine.schedule_at(config.attack_start, result.botnet.start)
        result.engine.schedule_at(config.attack_end, result.botnet.stop)
    result.engine.run(until=config.duration)
    for client in result.clients:
        client.stop()
    result.cpu.stop()
    result.queues.stop()
    result.engine.drain()


@dataclass(frozen=True)
class ExpiryAblationRow:
    window: float
    replayed: int
    accepted: int

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.replayed if self.replayed else 0.0


def expiry_window_ablation(windows: Sequence[float] = (0.5, 2.0, 8.0, 32.0),
                           replay_delay: float = 4.0,
                           replays: int = 200) -> List[ExpiryAblationRow]:
    """How the expiry window bounds a replay flood.

    An attacker captures a fresh, valid solution and replays it
    *replay_delay* seconds later, *replays* times. Windows shorter than
    the delay reject everything; longer windows accept the replay — but
    (per §7) each replayed solution can still occupy only one queue slot,
    since it binds one flow 4-tuple.
    """
    rows = []
    solver = ModeledSolver()
    import random

    for window in windows:
        scheme = JuelsBrainardScheme(expiry=ExpiryPolicy(window=window))
        params = PuzzleParams(k=2, m=8)
        binding = FlowBinding(0x0A0000FE, 0x0A000001, 40000, 80, 1234)
        challenge = scheme.make_challenge(params, binding, now=0.0)
        solution = solver.solve(challenge, random.Random(3))
        accepted = 0
        for i in range(replays):
            verdict = scheme.verify(solution, binding,
                                    now=replay_delay + i * 1e-3,
                                    params=params)
            if verdict.ok:
                accepted += 1
        rows.append(ExpiryAblationRow(window=window, replayed=replays,
                                      accepted=accepted))
    return rows


@dataclass(frozen=True)
class SynCacheAblationRow:
    capacity: int
    attack_rate: float
    evictions: int
    survival_fraction: float   # half-opens outliving a benign RTT


def syncache_ablation(bucket_counts: Sequence[int] = (64, 256, 1024),
                      attack_rates: Sequence[float] = (500.0, 5000.0),
                      benign_rtt: float = 0.01,
                      duration: float = 2.0) -> List[SynCacheAblationRow]:
    """§2.1's cache-churn argument, measured directly on the cache.

    Inserts a benign entry, floods the cache at the attack rate, and
    checks whether the benign entry is still present one RTT later.
    """
    import random

    rows = []
    for buckets in bucket_counts:
        for rate in attack_rates:
            rng = random.Random(buckets * 7 + int(rate))
            cache = SynCache(bucket_count=buckets, bucket_limit=8)
            survived = 0
            trials = 50
            for trial in range(trials):
                flow = (0x0A000000 + trial, 40000 + trial, 80)
                from repro.tcp.syncache import CacheEntry

                cache.insert(CacheEntry(flow=flow, remote_isn=1,
                                        local_isn=2, mss=1460, wscale=7,
                                        created_at=0.0))
                flood = int(rate * benign_rtt)
                for i in range(flood):
                    attacker_flow = (rng.getrandbits(32),
                                     rng.randrange(1024, 65536), 80)
                    cache.insert(CacheEntry(flow=attacker_flow,
                                            remote_isn=1, local_isn=2,
                                            mss=1460, wscale=None,
                                            created_at=0.0))
                if cache.complete(flow) is not None:
                    survived += 1
            rows.append(SynCacheAblationRow(
                capacity=cache.capacity, attack_rate=rate,
                evictions=cache.evictions,
                survival_fraction=survived / trials))
    return rows


@dataclass(frozen=True)
class EvictionPolicyAblationRow:
    policy: str
    attack_rate: float
    evictions: int
    rejected: int
    survival_fraction: float   # benign half-opens outliving one RTT


def eviction_policy_ablation(attack_rates: Sequence[float] = (500.0,
                                                              5000.0),
                             benign_rtt: float = 0.01,
                             bucket_count: int = 64,
                             trials: int = 50
                             ) -> List[EvictionPolicyAblationRow]:
    """Overflow-policy shoot-out on the syncache_ablation workload.

    Same benign-survival probe as :func:`syncache_ablation`, but the
    cache size is fixed and the overflow policy varies: oldest-per-bucket
    (FreeBSD's churn), random-evict (an attacker can't target the oldest
    slot), and reject-new (residents are never displaced, new arrivals
    pay the cost).
    """
    import random

    from repro.tcp.syncache import OVERFLOW_POLICIES, CacheEntry

    rows = []
    for policy in OVERFLOW_POLICIES:
        for rate in attack_rates:
            rng = random.Random(f"evict/{policy}/{rate}")
            cache = SynCache(bucket_count=bucket_count, bucket_limit=8,
                             policy=policy)
            survived = 0
            for trial in range(trials):
                flow = (0x0A000000 + trial, 40000 + trial, 80)
                cache.insert(CacheEntry(flow=flow, remote_isn=1,
                                        local_isn=2, mss=1460, wscale=7,
                                        created_at=0.0))
                for _ in range(int(rate * benign_rtt)):
                    attacker_flow = (rng.getrandbits(32),
                                     rng.randrange(1024, 65536), 80)
                    cache.insert(CacheEntry(flow=attacker_flow,
                                            remote_isn=1, local_isn=2,
                                            mss=1460, wscale=None,
                                            created_at=0.0))
                if cache.complete(flow) is not None:
                    survived += 1
            rows.append(EvictionPolicyAblationRow(
                policy=policy, attack_rate=rate,
                evictions=cache.evictions, rejected=cache.rejected,
                survival_fraction=survived / trials))
    return rows


@dataclass(frozen=True)
class ConvergenceRow:
    n_users: int
    exact_difficulty: float
    asymptotic_difficulty: float

    @property
    def relative_gap(self) -> float:
        return abs(self.exact_difficulty - self.asymptotic_difficulty) \
            / self.asymptotic_difficulty


def finite_n_convergence(n_values: Sequence[int] = (5, 15, 50, 150, 500,
                                                    1500),
                         w_av: float = 140630.0,
                         alpha: float = 1.1) -> List[ConvergenceRow]:
    """Exact finite-N provider optimum vs Theorem 1's asymptote.

    Holds ``w_av`` and ``α = µ/N`` fixed while N grows; the relative gap
    should shrink (at rate ~N^(-2/3), per Eq. 17).
    """
    asymptotic = equilibrium_difficulty(w_av, alpha)
    rows = []
    for n in n_values:
        game = ClientGame.homogeneous(n, w_av, alpha * n)
        exact = StackelbergGame(game).solve_relaxed().difficulty
        rows.append(ConvergenceRow(n_users=n, exact_difficulty=exact,
                                   asymptotic_difficulty=asymptotic))
    return rows
