"""Picklable scenario summaries — what sweep workers send back.

A :class:`~repro.experiments.scenario.ScenarioResult` owns the live
simulation (engine, hosts, callbacks, samplers) and therefore cannot
cross a process boundary or be cached on disk. :func:`summarize`
distills it into a :class:`ScenarioSummary`: the same measurements —
throughput taps, gauge series, connection log, listener/SNMP counters,
engine statistics — as plain data, with the :class:`ScenarioResult`
convenience API mirrored method-for-method so experiments, benchmarks
and the CLI read either object the same way.

``ScenarioSummary.as_payload()`` is the deterministic face: it excludes
wall-clock fields (which differ between otherwise identical runs) so the
key-sorted JSONL export of a parallel sweep is byte-identical to the
serial run's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.hosts.attacker import AttackStats
from repro.metrics.connections import ConnectionRecord
from repro.obs.hist import Histogram
from repro.obs.timeseries import TimeSeries, series_payload
from repro.metrics.series import BinnedSeries, GaugeSeries
from repro.metrics.summary import Summary, describe
from repro.metrics.throughput import HostThroughput
from repro.tcp.listener import ListenerStats

#: ``engine.stats()`` keys that vary run-to-run on identical simulations.
TIMING_KEYS = ("wall_seconds", "sim_wall_ratio")


def deterministic_engine_stats(stats: Dict[str, float]
                               ) -> Dict[str, float]:
    """``engine.stats()`` with the run-to-run-varying timing keys removed.

    Safe to embed in exported/compared sweep cells; still carries
    ``sim_seconds`` and ``events_processed`` for runner accounting.
    """
    return {key: value for key, value in stats.items()
            if key not in TIMING_KEYS}


@dataclass
class CpuSummary:
    """The sampled CPU series, detached from the sampler."""

    series: Dict[str, GaugeSeries] = field(default_factory=dict)

    def utilization(self, name: str) -> Tuple[np.ndarray, np.ndarray]:
        return self.series[name].arrays()

    def mean_in(self, name: str, start: float, end: float) -> float:
        return self.series[name].mean_in(start, end)

    def max_in(self, name: str, start: float, end: float) -> float:
        return self.series[name].max_in(start, end)


@dataclass
class QueueSummary:
    """The sampled queue-depth series, detached from the sampler."""

    listen_depth: GaugeSeries = field(default_factory=GaugeSeries)
    accept_depth: GaugeSeries = field(default_factory=GaugeSeries)

    def listen_series(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.listen_depth.arrays()

    def accept_series(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.accept_depth.arrays()


@dataclass
class ConnectionLog:
    """Connection lifecycles without the tracker's engine reference.

    Mirrors every :class:`~repro.metrics.connections.ConnectionTracker`
    query (the lifecycle hooks are gone — the run is over).
    """

    bin_width: float = 1.0
    records: List[ConnectionRecord] = field(default_factory=list)
    attempt_series: Dict[str, BinnedSeries] = field(default_factory=dict)
    established_series: Dict[str, BinnedSeries] = field(
        default_factory=dict)
    completed_series: Dict[str, BinnedSeries] = field(default_factory=dict)
    failed_series: Dict[str, BinnedSeries] = field(default_factory=dict)

    def _series(self, table: Dict[str, BinnedSeries],
                label: str) -> BinnedSeries:
        series = table.get(label)
        if series is None:
            series = BinnedSeries(self.bin_width)
        return series

    def connect_times(self, label: str) -> np.ndarray:
        return np.asarray([
            r.connect_time for r in self.records
            if r.label == label and r.connect_time is not None
        ])

    def established_rate(self, label: str,
                         until: float) -> Tuple[np.ndarray, np.ndarray]:
        return self._series(self.established_series, label).rate_series(
            until)

    def attempt_rate(self, label: str,
                     until: float) -> Tuple[np.ndarray, np.ndarray]:
        return self._series(self.attempt_series, label).rate_series(until)

    def completion_percent_series(self, label: str, until: float
                                  ) -> Tuple[np.ndarray, np.ndarray]:
        n_bins = max(1, int(np.ceil(until / self.bin_width)))
        attempts = np.zeros(n_bins)
        completions = np.zeros(n_bins)
        for record in self.records:
            if record.label != label:
                continue
            index = int(record.t_open // self.bin_width)
            if not 0 <= index < n_bins:
                continue
            attempts[index] += 1
            if record.t_completed is not None:
                completions[index] += 1
        times = np.arange(n_bins) * self.bin_width
        with np.errstate(divide="ignore", invalid="ignore"):
            percent = np.where(attempts > 0,
                               100.0 * completions / attempts, np.nan)
        return times, percent

    def counts(self, label: str) -> Dict[str, int]:
        out = {"attempts": 0, "established": 0, "completed": 0, "failed": 0,
               "challenged": 0}
        for record in self.records:
            if record.label != label:
                continue
            out["attempts"] += 1
            if record.t_established is not None:
                out["established"] += 1
            if record.t_completed is not None:
                out["completed"] += 1
            if record.t_failed is not None:
                out["failed"] += 1
            if record.challenged:
                out["challenged"] += 1
        return out

    def established_in(self, label: str, start: float, end: float) -> int:
        return sum(
            1 for r in self.records
            if r.label == label and r.t_established is not None
            and start <= r.t_established < end)

    def labels(self) -> List[str]:
        return sorted({r.label for r in self.records})


@dataclass
class ScenarioSummary:
    """Everything measured during one scenario run, as plain data."""

    config: object                      # ScenarioConfig (picklable)
    engine_stats: Dict[str, float]
    listener_stats: ListenerStats
    counters: Dict[str, Dict[str, int]]
    server_throughput: HostThroughput
    client_throughput: HostThroughput
    cpu: CpuSummary
    queues: QueueSummary
    connections: ConnectionLog
    server_established: Dict[str, BinnedSeries] = field(
        default_factory=dict)
    attack_stats: Optional[AttackStats] = None
    botnet_size: int = 0
    profile: Optional[Dict[str, Dict[str, float]]] = None
    #: Sim-time duration histograms from the hub registry (handshake
    #: latency, puzzle solve time, accept-queue wait) — fixed-boundary
    #: and picklable, so the runner can merge them across workers.
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    #: Streaming-telemetry series (``config.telemetry``): bounded
    #: ring-buffer rate/gauge/quantile curves sampled on an exact
    #: sim-time cadence. Plain data; rates and gauges merge across
    #: sweep workers.
    timeseries: Dict[str, TimeSeries] = field(default_factory=dict)
    #: Bounded-memory per-source attribution snapshot (heavy-hitter
    #: tables + Count-Min error bound), present when the telemetry spec
    #: asked for it.
    attribution: Optional[Dict[str, object]] = None
    #: Fault-injection event counts (``repro.faults``), present when the
    #: run carried a non-empty :class:`FaultSchedule`.
    fault_stats: Optional[Dict[str, int]] = None
    #: Ticks the runtime invariant checker completed (0 = not attached).
    invariant_checks: int = 0
    #: Overload-watchdog snapshot (state, transitions, time in state,
    #: peak occupancy, ``repro_overload_state`` series, admission
    #: counters), present only when ``config.overload`` attached one —
    #: detached manifests stay byte-identical, like the telemetry block.
    overload: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # ScenarioResult API parity
    # ------------------------------------------------------------------
    @property
    def tracker(self) -> ConnectionLog:
        """Alias matching ``ScenarioResult.tracker``."""
        return self.connections

    def attack_window(self) -> tuple:
        return (self.config.attack_start, self.config.attack_end)

    def client_throughput_during_attack(self) -> Summary:
        start, end = self.attack_window()
        times, mbps = self.client_throughput.rx_mbps(self.config.duration)
        mask = (times >= start) & (times < end)
        return describe(mbps[mask])

    def server_throughput_during_attack(self) -> Summary:
        start, end = self.attack_window()
        times, mbps = self.server_throughput.tx_mbps(self.config.duration)
        mask = (times >= start) & (times < end)
        return describe(mbps[mask])

    def client_throughput_before_attack(self) -> Summary:
        times, mbps = self.client_throughput.rx_mbps(self.config.duration)
        mask = times < self.config.attack_start
        return describe(mbps[mask])

    def attacker_established_rate(self, start: Optional[float] = None,
                                  end: Optional[float] = None) -> float:
        window_start, window_end = self.attack_window()
        if start is None:
            start = window_start
        if end is None:
            end = window_end
        series = self.server_established.get("attacker")
        if series is None:
            return 0.0
        return series.window_sum(start, end) / max(end - start, 1e-9)

    def attacker_steady_state_rate(self) -> float:
        start, end = self.attack_window()
        return self.attacker_established_rate(start=(start + end) / 2.0)

    def attacker_established_series(self) -> tuple:
        series = self.server_established.get("attacker")
        if series is None:
            series = BinnedSeries(self.config.bin_width)
        return series.rate_series(self.config.duration)

    def attacker_measured_rate(self) -> float:
        if self.attack_stats is None:
            return 0.0
        start, end = self.attack_window()
        return self.attack_stats.syns_sent / max(end - start, 1e-9)

    def client_completion_percent(self) -> float:
        start, end = self.attack_window()
        attempts = completed = 0
        for record in self.connections.records:
            if record.label != "client":
                continue
            if not start <= record.t_open < end:
                continue
            attempts += 1
            if record.t_completed is not None:
                completed += 1
        if attempts == 0:
            return float("nan")
        return 100.0 * completed / attempts

    # ------------------------------------------------------------------
    def as_payload(self, include_timing: bool = False
                   ) -> Dict[str, object]:
        """Deterministic JSON-friendly digest of the run.

        Wall-clock figures are excluded by default: two runs of the same
        seeded config must produce identical payloads (the serial-vs-
        parallel byte-identity contract). Pass ``include_timing=True``
        for manifests, where the timings are the point.
        """
        from repro.runner.export import to_jsonable
        from repro.runner.hashing import stable_hash

        engine_stats = dict(self.engine_stats)
        if not include_timing:
            for key in TIMING_KEYS:
                engine_stats.pop(key, None)
        payload: Dict[str, object] = {
            "config_fingerprint": stable_hash(self.config),
            "seed": self.config.seed,
            "defense": self.config.defense.value,
            "engine_stats": engine_stats,
            "listener_stats": {
                name: getattr(self.listener_stats, name)
                for name in sorted(vars(self.listener_stats))
            },
            "counters": to_jsonable(self.counters),
            "connections": {
                label: self.connections.counts(label)
                for label in self.connections.labels()
            },
            "client_completion_percent": self.client_completion_percent(),
            "attacker_established_rate": self.attacker_established_rate(),
            "client_throughput_during_attack": to_jsonable(
                self.client_throughput_during_attack()),
            "server_throughput_during_attack": to_jsonable(
                self.server_throughput_during_attack()),
            # Sim-time histograms are as deterministic as the counters:
            # same seed, same buckets, same quantiles.
            "histograms": {name: self.histograms[name].as_payload()
                           for name in sorted(self.histograms)},
        }
        # Both blocks appear only when telemetry ran, so manifests from
        # detached runs are byte-identical to pre-telemetry ones.
        if self.timeseries:
            payload["timeseries"] = series_payload(self.timeseries)
        if self.attribution is not None:
            payload["attribution"] = self.attribution
        if self.attack_stats is not None:
            payload["attack_stats"] = to_jsonable(self.attack_stats)
            payload["botnet_size"] = self.botnet_size
        if self.fault_stats is not None:
            payload["fault_stats"] = dict(sorted(self.fault_stats.items()))
        if self.invariant_checks:
            payload["invariant_checks"] = self.invariant_checks
        if self.overload is not None:
            payload["overload"] = to_jsonable(self.overload)
        return payload


# ----------------------------------------------------------------------
def summarize(result) -> ScenarioSummary:
    """Distill a live :class:`ScenarioResult` into plain data."""
    tracker = result.tracker
    connections = ConnectionLog(
        bin_width=tracker.bin_width,
        records=list(tracker.records),
        attempt_series=dict(tracker._attempt_series),
        established_series=dict(tracker._established_series),
        completed_series=dict(tracker._completed_series),
        failed_series=dict(tracker._failed_series))
    counters: Dict[str, Dict[str, int]] = {}
    histograms: Dict[str, Histogram] = {}
    if result.obs is not None:
        counters = result.obs.counters.snapshot()
        histograms = result.obs.hist.as_dict()
    profile = None
    if result.profiler is not None:
        profile = result.profiler.snapshot()
    attack_stats = None
    botnet_size = 0
    if result.botnet is not None:
        attack_stats = result.botnet.aggregate_stats()
        botnet_size = result.botnet.size
    fault_stats = None
    injector = getattr(result, "fault_injector", None)
    if injector is not None:
        fault_stats = injector.snapshot()
    checker = getattr(result, "invariants", None)
    invariant_checks = checker.checks_run if checker is not None else 0
    sampler = getattr(result, "sampler", None)
    timeseries: Dict[str, TimeSeries] = \
        sampler.as_dict() if sampler is not None else {}
    source_attribution = getattr(result, "attribution", None)
    attribution = (source_attribution.snapshot()
                   if source_attribution is not None else None)
    watchdog = getattr(result, "watchdog", None)
    overload = watchdog.snapshot() if watchdog is not None else None
    return ScenarioSummary(
        config=result.config,
        engine_stats=result.engine.stats(),
        listener_stats=result.listener_stats,
        counters=counters,
        server_throughput=result.server_throughput,
        client_throughput=result.client_throughput,
        cpu=CpuSummary(series=dict(result.cpu.series)),
        queues=QueueSummary(listen_depth=result.queues.listen_depth,
                            accept_depth=result.queues.accept_depth),
        connections=connections,
        server_established=dict(result.server_established),
        attack_stats=attack_stats,
        botnet_size=botnet_size,
        profile=profile,
        histograms=histograms,
        timeseries=timeseries,
        attribution=attribution,
        fault_stats=fault_stats,
        invariant_checks=invariant_checks,
        overload=overload)


def run_scenario_summary(config) -> ScenarioSummary:
    """The canonical sweep cell: run one scenario, return its summary.

    Module-level and driven entirely by the (picklable) config, per the
    :mod:`repro.runner` determinism contract.
    """
    from repro.experiments.scenario import Scenario

    return summarize(Scenario(config).run())
