"""The reproduction scorecard: every paper claim as a machine-checkable
predicate.

``run_validation()`` executes scaled-down renditions of the evaluation and
returns a structured scorecard — claim by claim, with the measured values
inline — so "does this repo still reproduce the paper?" is one command
(``tcp-puzzles validate``) instead of an afternoon. The full-size versions
live in ``benchmarks/``; this gate trades precision for minutes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.theorem import equilibrium_difficulty, nash_difficulty
from repro.experiments.exp1_connection_time import \
    ConnectionTimeExperiment
from repro.experiments.exp2_floods import (
    CHALLENGES_M8,
    CHALLENGES_M17,
    COOKIES,
    NODEFENSE,
    FloodExperiment,
)
from repro.experiments.scenario import ScenarioConfig
from repro.hosts.cpu import catalog_w_av


@dataclass(frozen=True)
class Check:
    """One verified claim."""

    claim: str                 # the paper's statement, paraphrased
    measured: str              # what we observed
    passed: bool
    source: str                # where in the paper the claim lives


@dataclass
class Scorecard:
    checks: List[Check] = field(default_factory=list)

    def add(self, claim: str, source: str, passed: bool,
            measured: str) -> None:
        self.checks.append(Check(claim=claim, measured=measured,
                                 passed=bool(passed), source=source))

    @property
    def passed(self) -> int:
        return sum(1 for check in self.checks if check.passed)

    @property
    def failed(self) -> int:
        return len(self.checks) - self.passed

    @property
    def all_passed(self) -> bool:
        return self.failed == 0

    def render(self) -> str:
        lines = []
        for check in self.checks:
            mark = "PASS" if check.passed else "FAIL"
            lines.append(f"[{mark}] {check.source}: {check.claim}")
            lines.append(f"       measured: {check.measured}")
        lines.append(f"\n{self.passed}/{len(self.checks)} claims "
                     f"reproduced")
        return "\n".join(lines)


def _gate_config(**overrides) -> ScenarioConfig:
    """The validation gate's scaled scenario (the locking regime —
    see DESIGN.md)."""
    defaults = dict(time_scale=0.015, n_clients=3, n_attackers=3,
                    attack_rate=500.0, backlog=24, accept_backlog=64,
                    workers=32, idle_timeout=0.5)
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def run_validation(progress: Optional[Callable[[str], None]] = None
                   ) -> Scorecard:
    """Run every claim check; takes a couple of minutes."""
    card = Scorecard()

    def step(message: str) -> None:
        if progress is not None:
            progress(message)

    # ------------------------------------------------------------------
    step("theory: Nash difficulty")
    w_av = catalog_w_av()
    params = nash_difficulty(w_av, 1.1)
    card.add("w_av = 140630 from the Figure 3(a) clientele", "Fig 3a",
             abs(w_av - 140630.0) < 1.0, f"w_av = {w_av:.0f}")
    card.add("Nash difficulty (k*, m*) = (2, 17) at alpha = 1.1",
             "§4.4 / Eq. 6",
             (params.k, params.m) == (2, 17),
             f"(k, m) = ({params.k}, {params.m}), "
             f"l* = {equilibrium_difficulty(w_av, 1.1):.0f}")

    # ------------------------------------------------------------------
    step("experiment 1: connection time scaling")
    low = ConnectionTimeExperiment(k=1, m=6, samples=20).run()
    high = ConnectionTimeExperiment(k=1, m=14, samples=20).run()
    quad = ConnectionTimeExperiment(k=4, m=14, samples=20).run()
    m_ratio = high.summary.mean / low.summary.mean
    k_ratio = quad.summary.mean / high.summary.mean
    card.add("connection time grows exponentially in m", "Fig 6 / §6.1",
             m_ratio > 5.0, f"m=6 -> m=14 multiplies time {m_ratio:.0f}x")
    card.add("connection time grows ~linearly in k", "Fig 6 / §6.1",
             1.5 < k_ratio < 8.0, f"k=1 -> k=4 multiplies {k_ratio:.1f}x")

    # ------------------------------------------------------------------
    step("experiment 2: SYN flood")
    syn_no = FloodExperiment(NODEFENSE, "syn", _gate_config()).run()
    syn_ck = FloodExperiment(COOKIES, "syn", _gate_config()).run()
    syn_m8 = FloodExperiment(CHALLENGES_M8, "syn", _gate_config()).run()
    card.add("an unprotected server collapses under a SYN flood",
             "Fig 7",
             syn_no.client_completion_percent() < 25.0,
             f"completion {syn_no.client_completion_percent():.1f}%")
    card.add("SYN cookies absorb a SYN flood", "Fig 7",
             syn_ck.client_completion_percent() > 90.0,
             f"completion {syn_ck.client_completion_percent():.1f}%")
    card.add("easy puzzles (1,8) absorb a SYN flood", "Fig 7",
             syn_m8.client_completion_percent() > 90.0,
             f"completion {syn_m8.client_completion_percent():.1f}%")

    # ------------------------------------------------------------------
    step("experiment 2: connection flood")
    conn_ck = FloodExperiment(COOKIES, "connect", _gate_config()).run()
    conn_pz = FloodExperiment(CHALLENGES_M17, "connect",
                              _gate_config()).run()
    card.add("cookies are ineffective against a connection flood",
             "Fig 8",
             conn_ck.client_completion_percent() < 25.0,
             f"completion {conn_ck.client_completion_percent():.1f}%")
    card.add("Nash puzzles preserve client service under the flood",
             "Fig 8",
             conn_pz.client_completion_percent() > 60.0,
             f"completion {conn_pz.client_completion_percent():.1f}%")
    ratio = (conn_ck.attacker_steady_state_rate()
             / max(conn_pz.attacker_steady_state_rate(), 1e-9))
    card.add("puzzles cut the effective attack rate by a large factor",
             "Fig 11",
             ratio > 3.0,
             f"cookies {conn_ck.attacker_steady_state_rate():.1f} cps vs "
             f"puzzles {conn_pz.attacker_steady_state_rate():.1f} cps "
             f"({ratio:.1f}x)")
    start, end = conn_pz.attack_window()
    mid = (start + end) / 2
    listen = conn_pz.queues.listen_depth.mean_in(mid, end)
    accept = conn_pz.queues.accept_depth.mean_in(mid, end)
    card.add("challenges: listen queue saturated, accept queue drained",
             "Fig 10",
             listen > 0.9 * conn_pz.config.backlog
             and accept < 0.5 * conn_pz.config.accept_backlog,
             f"listen {listen:.0f}/{conn_pz.config.backlog}, "
             f"accept {accept:.0f}/{conn_pz.config.accept_backlog}")
    server_cpu = conn_pz.cpu.mean_in("server", start, end)
    attacker_cpu = conn_pz.cpu.mean_in("attacker0", start, end)
    card.add("server puzzle overhead is negligible; attackers burn CPU",
             "Fig 9",
             server_cpu < 5.0 and attacker_cpu > 50.0,
             f"server {server_cpu:.1f}%, attacker {attacker_cpu:.0f}%")

    # ------------------------------------------------------------------
    step("attack economics")
    from repro.core.analysis import amplification_factor, \
        solves_per_second
    from repro.hosts.cpu import CPU_CATALOG, IOT_CATALOG
    from repro.puzzles.params import PuzzleParams

    nash = PuzzleParams(k=2, m=17)
    factor = amplification_factor(nash, CPU_CATALOG["cpu3"], 500.0)
    card.add("the required botnet grows by a factor of ~200", "abstract",
             140 < factor < 230, f"amplification {factor:.0f}x")
    iot_max = max(solves_per_second(profile, nash)
                  for profile in IOT_CATALOG.values())
    card.add("IoT devices cannot sustain a connection flood",
             "abstract / §6.6",
             iot_max < 1.0, f"fastest Pi: {iot_max:.2f} solves/s")
    return card
