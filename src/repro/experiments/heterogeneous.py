"""Heterogeneous-clientele experiments: the theory's dropout predictions,
simulated.

The paper's model supports per-user valuations ``w_i`` (§3.2) and §4.2
predicts that users with ``w_i < w_av`` "would consider it more beneficial
for them to drop out" as difficulty rises; §7 flags the "non-uniform mix
between power-limited and power-endowed benign devices" as an open
problem. These experiments put both on the simulator:

* :func:`dropout_prediction_table` — the pure theory: equilibrium rates
  per device class across difficulties (who participates at which price);
* :func:`mixed_clientele_experiment` — the system: a benign population of
  Xeon laptops *and* Raspberry-Pi-class devices under the §6 connection
  flood, measuring per-class completion and solve latency at a given
  difficulty. The theory says the Pis are priced out near the Xeon-tuned
  Nash difficulty; the simulator shows exactly how (their solves arrive,
  but late and at a trickle).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.equilibrium import ClientGame
from repro.experiments.scenario import Scenario, ScenarioConfig, \
    ScenarioResult
from repro.hosts.cpu import CPU_CATALOG, IOT_CATALOG, CPUProfile
from repro.puzzles.params import PuzzleParams
from repro.tcp.constants import DefenseMode


# ----------------------------------------------------------------------
# Theory: per-class participation across difficulties
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DropoutRow:
    difficulty: float
    rates_by_class: Dict[str, float]   # equilibrium x_i per device class
    active_classes: int


def dropout_prediction_table(
        class_sizes: Optional[Dict[str, int]] = None,
        difficulties: Sequence[float] = (1_000.0, 8_000.0, 30_000.0,
                                         67_000.0, 131_072.0),
        mu: float = 1100.0,
        budget: float = 0.4) -> List[DropoutRow]:
    """Equilibrium request rates per device class (Eq. 9–11 with
    heterogeneous w_i = hash_rate × 400 ms).

    Device classes come from the hardware catalog; a class's valuation is
    what its CPU can do within the usability budget — power-limited
    devices are *literally* lower-w users in the model.
    """
    if class_sizes is None:
        class_sizes = {"cpu1": 5, "cpu3": 5, "D1": 5}
    catalog = {**CPU_CATALOG, **IOT_CATALOG}
    weights: List[float] = []
    labels: List[str] = []
    for name, count in class_sizes.items():
        w = catalog[name].hash_rate * budget
        weights.extend([w] * count)
        labels.extend([name] * count)
    game = ClientGame(weights, mu=mu)

    rows = []
    for difficulty in difficulties:
        solution = game.solve(difficulty)
        by_class: Dict[str, float] = {}
        for label, rate in zip(labels, solution.rates):
            by_class[label] = rate  # same within a class at equilibrium
        active = sum(1 for rate in by_class.values() if rate > 0)
        rows.append(DropoutRow(difficulty=difficulty,
                               rates_by_class=by_class,
                               active_classes=active))
    return rows


# ----------------------------------------------------------------------
# System: a mixed benign population under attack
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MixedClassOutcome:
    device_class: str
    completion_percent: float
    mean_connect_time: float           # seconds, established connections
    challenged: int


@dataclass(frozen=True)
class MixedClienteleOutcome:
    per_class: List[MixedClassOutcome]
    result: ScenarioResult


def mixed_clientele_experiment(
        base: Optional[ScenarioConfig] = None,
        fast_class: str = "cpu1",
        slow_class: str = "D1",
        params: Optional[PuzzleParams] = None) -> MixedClienteleOutcome:
    """Half the benign population on Xeon-class hardware, half on
    Pi-class, under the §6 connection flood with puzzles.

    Uses the scenario machinery with per-host CPU assignment and
    per-class tracking labels (via client label override).
    """
    import numpy as np

    config = base if base is not None else ScenarioConfig()
    catalog = {**CPU_CATALOG, **IOT_CATALOG}
    n = config.n_clients
    cpus = ([catalog[fast_class]] * (n - n // 2)
            + [catalog[slow_class]] * (n // 2))
    config = replace(
        config, defense=DefenseMode.PUZZLES,
        puzzle_params=params if params is not None else PuzzleParams(
            k=2, m=17),
        attack_style="connect",
        client_cpus=cpus)

    scenario = Scenario(config)
    result = scenario.build()
    # Relabel the slow half so the tracker splits the classes.
    for i, client in enumerate(result.clients):
        if i >= n - n // 2:
            client.config.label = f"client-{slow_class}"
        else:
            client.config.label = f"client-{fast_class}"
    _drive(scenario, result)

    start, end = result.attack_window()
    per_class = []
    for label_class in (fast_class, slow_class):
        label = f"client-{label_class}"
        records = [r for r in result.tracker.records
                   if r.label == label and start <= r.t_open < end]
        attempts = len(records)
        completed = sum(1 for r in records if r.t_completed is not None)
        challenged = sum(1 for r in records if r.challenged)
        connect_times = [r.connect_time for r in records
                         if r.connect_time is not None]
        per_class.append(MixedClassOutcome(
            device_class=label_class,
            completion_percent=(100.0 * completed / attempts
                                if attempts else float("nan")),
            mean_connect_time=(float(np.mean(connect_times))
                               if connect_times else float("nan")),
            challenged=challenged))
    return MixedClienteleOutcome(per_class=per_class, result=result)


def _drive(scenario: Scenario, result: ScenarioResult) -> None:
    config = scenario.config
    for client in result.clients:
        client.start()
    result.cpu.start()
    result.queues.start()
    if result.botnet is not None:
        result.engine.schedule_at(config.attack_start, result.botnet.start)
        result.engine.schedule_at(config.attack_end, result.botnet.stop)
    result.engine.run(until=config.duration)
    for client in result.clients:
        client.stop()
    result.cpu.stop()
    result.queues.stop()
    result.engine.drain()
