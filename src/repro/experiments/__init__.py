"""Reproduction of the paper's evaluation (§6), experiment by experiment.

Every module regenerates one table or figure; see DESIGN.md for the index.
The shared scenario machinery lives in :mod:`repro.experiments.scenario`:
a single server under (optional) attack from a botnet while 15 benign
clients request text — the §6 testbed in simulation.

The paper's 600 s timeline is scaled down by default (see
``ScenarioConfig.time_scale``); rates are paper-identical.
"""

from repro.experiments.scenario import (
    Scenario,
    ScenarioConfig,
    ScenarioResult,
)
from repro.experiments.summary import (
    ScenarioSummary,
    run_scenario_summary,
    summarize,
)
from repro.experiments.profiling_fig3 import (
    client_profile_table,
    server_stress_test,
)
from repro.experiments.exp1_connection_time import (
    ConnectionTimeExperiment,
    connection_time_cdf_grid,
)
from repro.experiments.exp2_floods import (
    FloodExperiment,
    run_connection_flood_suite,
    run_syn_flood_suite,
)
from repro.experiments.exp3_nash import difficulty_sweep
from repro.experiments.exp4_botnet import (
    botnet_size_sweep,
    per_node_rate_sweep,
)
from repro.experiments.exp5_adoption import adoption_study
from repro.experiments.exp6_iot import iot_botnet_scenario, \
    iot_profile_table
from repro.experiments.ablations import (
    controller_ablation,
    expiry_window_ablation,
    finite_n_convergence,
    syncache_ablation,
)
from repro.experiments.extensions import (
    adaptive_difficulty_experiment,
    fair_queuing_experiment,
    keepalive_experiment,
    pow_fairness_table,
    solution_flood_experiment,
)
from repro.experiments.heterogeneous import (
    dropout_prediction_table,
    mixed_clientele_experiment,
)
from repro.experiments.validation import run_validation
from repro.experiments.figures import bar_chart, line_chart, sparkline
from repro.experiments.report import render_table

__all__ = [
    "Scenario",
    "ScenarioConfig",
    "ScenarioResult",
    "ScenarioSummary",
    "run_scenario_summary",
    "summarize",
    "client_profile_table",
    "server_stress_test",
    "ConnectionTimeExperiment",
    "connection_time_cdf_grid",
    "FloodExperiment",
    "run_syn_flood_suite",
    "run_connection_flood_suite",
    "difficulty_sweep",
    "per_node_rate_sweep",
    "botnet_size_sweep",
    "adoption_study",
    "iot_profile_table",
    "iot_botnet_scenario",
    "controller_ablation",
    "expiry_window_ablation",
    "finite_n_convergence",
    "syncache_ablation",
    "adaptive_difficulty_experiment",
    "fair_queuing_experiment",
    "keepalive_experiment",
    "pow_fairness_table",
    "solution_flood_experiment",
    "dropout_prediction_table",
    "mixed_clientele_experiment",
    "run_validation",
    "bar_chart",
    "line_chart",
    "sparkline",
    "render_table",
]
