"""Experiment 2 (Figures 7–11): SYN-flood and connection-flood protection.

Two suites:

* :func:`run_syn_flood_suite` — Figure 7's four settings: no defense,
  SYN cookies, puzzles at (1, 8), puzzles at the Nash (2, 17).
* :func:`run_connection_flood_suite` — Figure 8's three settings: no
  defense, SYN cookies, puzzles at Nash.

Each returns the full :class:`~repro.experiments.scenario.ScenarioResult`
per setting, which also carries the Figure 9 (CPU), Figure 10 (queues) and
Figure 11 (effective attack rate) measurements for the same runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.experiments.scenario import Scenario, ScenarioConfig, \
    ScenarioResult
from repro.puzzles.params import PuzzleParams
from repro.tcp.constants import DefenseMode

#: The paper's labels for the Figure 7/8 series.
NODEFENSE = "nodefense"
COOKIES = "cookies"
CHALLENGES_M8 = "challenges-m8"
CHALLENGES_M17 = "challenges-m17"


@dataclass
class FloodExperiment:
    """One flood run under one defense setting."""

    defense: str = CHALLENGES_M17     # one of the labels above
    attack_style: str = "connect"     # "syn" | "connect"
    base: Optional[ScenarioConfig] = None

    def config(self) -> ScenarioConfig:
        base = self.base if self.base is not None else ScenarioConfig()
        if self.defense == NODEFENSE:
            return replace(base, defense=DefenseMode.NONE,
                           attack_style=self.attack_style)
        if self.defense == COOKIES:
            return replace(base, defense=DefenseMode.SYNCOOKIES,
                           attack_style=self.attack_style)
        if self.defense == CHALLENGES_M8:
            return replace(base, defense=DefenseMode.PUZZLES,
                           puzzle_params=PuzzleParams(k=1, m=8),
                           attack_style=self.attack_style)
        if self.defense == CHALLENGES_M17:
            return replace(base, defense=DefenseMode.PUZZLES,
                           puzzle_params=PuzzleParams(k=2, m=17),
                           attack_style=self.attack_style)
        raise ValueError(f"unknown defense label {self.defense!r}")

    def run(self) -> ScenarioResult:
        return Scenario(self.config()).run()


def run_syn_flood_suite(base: Optional[ScenarioConfig] = None
                        ) -> Dict[str, ScenarioResult]:
    """Figure 7: throughput under a spoofed SYN flood, four defenses."""
    suite = {}
    for label in (NODEFENSE, COOKIES, CHALLENGES_M8, CHALLENGES_M17):
        suite[label] = FloodExperiment(defense=label, attack_style="syn",
                                       base=base).run()
    return suite


def run_connection_flood_suite(base: Optional[ScenarioConfig] = None
                               ) -> Dict[str, ScenarioResult]:
    """Figures 8–11: connection flood — no defense, cookies, Nash puzzles.

    The paper omits the m=8 series here ("TCP puzzles at difficulty of 8
    bits were ineffective at protecting the server's state"); Experiment 3
    sweeps difficulties instead.
    """
    suite = {}
    for label in (NODEFENSE, COOKIES, CHALLENGES_M17):
        suite[label] = FloodExperiment(defense=label,
                                       attack_style="connect",
                                       base=base).run()
    return suite
