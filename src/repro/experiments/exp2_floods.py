"""Experiment 2 (Figures 7–11): SYN-flood and connection-flood protection.

Two suites:

* :func:`run_syn_flood_suite` — Figure 7's four settings: no defense,
  SYN cookies, puzzles at (1, 8), puzzles at the Nash (2, 17).
* :func:`run_connection_flood_suite` — Figure 8's three settings: no
  defense, SYN cookies, puzzles at Nash.

Each suite maps labels to picklable
:class:`~repro.experiments.summary.ScenarioSummary` objects, which also
carry the Figure 9 (CPU), Figure 10 (queues) and Figure 11 (effective
attack rate) measurements for the same runs; the cells are sharded across
a :class:`~repro.runner.SweepRunner` (pass your own to parallelise or
cache). :meth:`FloodExperiment.run` still returns the live
:class:`~repro.experiments.scenario.ScenarioResult` for callers that need
the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.scenario import Scenario, ScenarioConfig, \
    ScenarioResult
from repro.experiments.summary import ScenarioSummary, run_scenario_summary
from repro.puzzles.params import PuzzleParams
from repro.runner import RunnerStats, SweepRunner
from repro.tcp.constants import DefenseMode

#: The paper's labels for the Figure 7/8 series.
NODEFENSE = "nodefense"
COOKIES = "cookies"
CHALLENGES_M8 = "challenges-m8"
CHALLENGES_M17 = "challenges-m17"


@dataclass
class FloodExperiment:
    """One flood run under one defense setting."""

    defense: str = CHALLENGES_M17     # one of the labels above
    attack_style: str = "connect"     # "syn" | "connect"
    base: Optional[ScenarioConfig] = None

    def config(self) -> ScenarioConfig:
        base = self.base if self.base is not None else ScenarioConfig()
        if self.defense == NODEFENSE:
            return replace(base, defense=DefenseMode.NONE,
                           attack_style=self.attack_style)
        if self.defense == COOKIES:
            return replace(base, defense=DefenseMode.SYNCOOKIES,
                           attack_style=self.attack_style)
        if self.defense == CHALLENGES_M8:
            return replace(base, defense=DefenseMode.PUZZLES,
                           puzzle_params=PuzzleParams(k=1, m=8),
                           attack_style=self.attack_style)
        if self.defense == CHALLENGES_M17:
            return replace(base, defense=DefenseMode.PUZZLES,
                           puzzle_params=PuzzleParams(k=2, m=17),
                           attack_style=self.attack_style)
        raise ValueError(f"unknown defense label {self.defense!r}")

    def run(self) -> ScenarioResult:
        return Scenario(self.config()).run()

    def summary(self) -> ScenarioSummary:
        """Run and distill into the picklable summary form."""
        return run_scenario_summary(self.config())


def _suite_report(labels: Sequence[str], attack_style: str,
                  base: Optional[ScenarioConfig],
                  runner: Optional[SweepRunner]
                  ) -> Tuple[Dict[str, ScenarioSummary], RunnerStats]:
    if runner is None:
        runner = SweepRunner()
    configs = [FloodExperiment(defense=label, attack_style=attack_style,
                               base=base).config() for label in labels]
    report = runner.map(run_scenario_summary, configs, labels=list(labels))
    return dict(zip(labels, report.values)), report.stats


def run_syn_flood_suite_report(base: Optional[ScenarioConfig] = None,
                               runner: Optional[SweepRunner] = None
                               ) -> Tuple[Dict[str, ScenarioSummary],
                                          RunnerStats]:
    """Figure 7 suite plus the runner's execution accounting."""
    return _suite_report((NODEFENSE, COOKIES, CHALLENGES_M8,
                          CHALLENGES_M17), "syn", base, runner)


def run_syn_flood_suite(base: Optional[ScenarioConfig] = None,
                        runner: Optional[SweepRunner] = None
                        ) -> Dict[str, ScenarioSummary]:
    """Figure 7: throughput under a spoofed SYN flood, four defenses."""
    suite, _ = run_syn_flood_suite_report(base, runner)
    return suite


def run_connection_flood_suite_report(
        base: Optional[ScenarioConfig] = None,
        runner: Optional[SweepRunner] = None
        ) -> Tuple[Dict[str, ScenarioSummary], RunnerStats]:
    """Figures 8–11 suite plus the runner's execution accounting."""
    return _suite_report((NODEFENSE, COOKIES, CHALLENGES_M17), "connect",
                         base, runner)


def run_connection_flood_suite(base: Optional[ScenarioConfig] = None,
                               runner: Optional[SweepRunner] = None
                               ) -> Dict[str, ScenarioSummary]:
    """Figures 8–11: connection flood — no defense, cookies, Nash puzzles.

    The paper omits the m=8 series here ("TCP puzzles at difficulty of 8
    bits were ineffective at protecting the server's state"); Experiment 3
    sweeps difficulties instead.
    """
    suite, _ = run_connection_flood_suite_report(base, runner)
    return suite
