"""ASCII rendering of the paper's figure shapes.

Offline environments have no plotting stack; these renderers draw the
reproduced series as terminal charts — line charts for the throughput
figures, sparklines for the §6.2 challenged/unchallenged tick strips, and
horizontal bars for comparisons. Pure functions over arrays; used by the
examples and the ``tcp-puzzles run`` subcommands.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ExperimentError

#: Eight-level block characters for sparklines and bars.
_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float],
              maximum: Optional[float] = None) -> str:
    """One-line intensity strip (the paper's Figure 7/8 sparkline).

    NaNs render as spaces.
    """
    values = list(values)
    if not values:
        return ""
    finite = [v for v in values if v == v]
    if maximum is None:
        maximum = max(finite) if finite else 1.0
    if maximum <= 0:
        maximum = 1.0
    out = []
    for v in values:
        if v != v:  # NaN
            out.append(" ")
            continue
        level = int(round(min(max(v, 0.0), maximum) / maximum * 8))
        out.append(_BLOCKS[level])
    return "".join(out)


def line_chart(times: Sequence[float], values: Sequence[float],
               width: int = 72, height: int = 12,
               title: str = "", y_label: str = "",
               shade_from: Optional[float] = None,
               shade_to: Optional[float] = None) -> str:
    """A terminal line chart.

    *shade_from*/*shade_to* mark a time window (the attack) with a ``▒``
    strip under the x-axis, like the shaded region in Figures 7–8.
    """
    times = list(times)
    values = list(values)
    if len(times) != len(values):
        raise ExperimentError("times and values must have equal length")
    if not times:
        raise ExperimentError("nothing to plot")
    if width < 16 or height < 4:
        raise ExperimentError("chart too small")

    t_min, t_max = times[0], times[-1]
    span = max(t_max - t_min, 1e-12)
    finite = [v for v in values if v == v]
    v_max = max(finite) if finite else 1.0
    if v_max <= 0:
        v_max = 1.0

    # Bucket values into columns (mean per column).
    columns: list = [[] for _ in range(width)]
    for t, v in zip(times, values):
        if v != v:
            continue
        col = min(int((t - t_min) / span * width), width - 1)
        columns[col].append(v)
    levels = []
    for bucket in columns:
        if not bucket:
            levels.append(None)
        else:
            mean = sum(bucket) / len(bucket)
            levels.append(min(int(mean / v_max * (height - 1) + 0.5),
                              height - 1))

    rows = []
    for row in range(height - 1, -1, -1):
        line = []
        for level in levels:
            if level is None:
                line.append(" ")
            elif level == row:
                line.append("•")
            elif level > row:
                line.append("·" if row == 0 else " ")
            else:
                line.append(" ")
        prefix = f"{v_max * row / (height - 1):8.2f} ┤" if row % 3 == 0 \
            else " " * 8 + " ┤"
        rows.append(prefix + "".join(line))
    axis = " " * 8 + " └" + "─" * width
    rows.append(axis)

    if shade_from is not None and shade_to is not None:
        strip = []
        for col in range(width):
            t = t_min + (col + 0.5) / width * span
            strip.append("▒" if shade_from <= t <= shade_to else " ")
        rows.append(" " * 10 + "".join(strip) + "  (attack window)")
    rows.append(" " * 10 + f"{t_min:<10.1f}"
                + f"{t_max:>{max(width - 10, 1)}.1f}  time (s)")

    header = []
    if title:
        header.append(title)
    if y_label:
        header.append(f"[y: {y_label}, max {v_max:.3g}]")
    return "\n".join(header + rows)


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 50, unit: str = "") -> str:
    """Horizontal comparison bars (defense-vs-defense summaries)."""
    labels = list(labels)
    values = list(values)
    if len(labels) != len(values):
        raise ExperimentError("labels and values must have equal length")
    if not labels:
        raise ExperimentError("nothing to plot")
    v_max = max(max(values), 1e-12)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round(value / v_max * width))
        bar = "█" * filled + "░" * (width - filled)
        lines.append(f"{label:<{label_width}} │{bar}│ {value:.3g}{unit}")
    return "\n".join(lines)
