"""Experiment 1 (Figure 6): impact of (k, m) on client connection time.

A single client connects repeatedly to a server that challenges **every**
SYN (``always_challenge`` — no attack needed), for every combination of
k ∈ {1,2,3,4} and m ∈ {4,10,16,20}. The paper's observation to reproduce:
connection time grows *exponentially* in m and *linearly* in k.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.hosts.cpu import CPU_CATALOG, SERVER_CPU, CPUProfile
from repro.hosts.host import Host
from repro.hosts.server import AppServer, ServerConfig
from repro.metrics.summary import Summary, cdf, describe
from repro.net.addresses import AddressAllocator
from repro.net.network import Network
from repro.net.topology import deter_topology
from repro.puzzles.params import PuzzleParams
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.tcp.connection import ClientConnConfig
from repro.tcp.constants import DefenseMode
from repro.tcp.listener import DefenseConfig

DEFAULT_K_VALUES = (1, 2, 3, 4)
DEFAULT_M_VALUES = (4, 10, 16, 20)


@dataclass
class ConnectionTimeResult:
    """Connection-time samples for one (k, m) cell of Figure 6."""

    k: int
    m: int
    times: np.ndarray  # seconds

    @property
    def summary(self) -> Summary:
        return describe(self.times)

    def cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        return cdf(self.times)


@dataclass
class ConnectionTimeExperiment:
    """One (k, m) measurement run."""

    k: int = 1
    m: int = 4
    samples: int = 40
    seed: int = 11
    client_cpu: CPUProfile = field(
        default_factory=lambda: CPU_CATALOG["cpu1"])

    def run(self) -> ConnectionTimeResult:
        engine = Engine()
        streams = RngStreams(self.seed + self.k * 100 + self.m)
        topology = deter_topology(1, 0)
        network = Network(engine, topology)
        allocator = AddressAllocator()
        server_host = Host("server", allocator.allocate(), engine, network,
                           SERVER_CPU, streams.get("server"))
        defense = DefenseConfig(mode=DefenseMode.PUZZLES,
                                puzzle_params=PuzzleParams(k=self.k,
                                                           m=self.m),
                                always_challenge=True)
        AppServer(server_host, ServerConfig(defense=defense))
        client_host = Host("client0", allocator.allocate(), engine, network,
                           self.client_cpu, streams.get("client"))

        times: List[float] = []

        def issue() -> None:
            connection = client_host.tcp.connect(
                server_host.address, 80,
                ClientConnConfig(solve_backlog_limit=1e9))

            def on_established(conn) -> None:
                times.append(conn.connect_time)
                conn.abort()
                if len(times) < self.samples:
                    engine.schedule(0.01, issue)

            connection.on_established = on_established

        engine.schedule(0.0, issue)
        # Worst cell (k=4, m=20) averages ~6 s/connection on cpu1.
        engine.run(until=self.samples * 20.0)
        engine.drain()
        return ConnectionTimeResult(k=self.k, m=self.m,
                                    times=np.asarray(times))


def connection_time_cdf_grid(
        k_values: Sequence[int] = DEFAULT_K_VALUES,
        m_values: Sequence[int] = DEFAULT_M_VALUES,
        samples: int = 40,
        seed: int = 11) -> Dict[Tuple[int, int], ConnectionTimeResult]:
    """The full Figure 6 grid, keyed by (k, m)."""
    grid: Dict[Tuple[int, int], ConnectionTimeResult] = {}
    for k in k_values:
        for m in m_values:
            grid[(k, m)] = ConnectionTimeExperiment(
                k=k, m=m, samples=samples, seed=seed).run()
    return grid
