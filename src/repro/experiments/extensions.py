"""Experiments for the §7 extensions this library implements beyond the
paper's evaluation:

* :func:`adaptive_difficulty_experiment` — the closed-control-loop
  difficulty tuner, starting from a deliberately-too-easy setting and
  converging under attack;
* :func:`solution_flood_experiment` — the verification-exhaustion attack
  §7 analyses, measured on the simulated server;
* :func:`pow_fairness_table` — hashcash vs memory-bound fairness across
  the hardware catalog (the Bitcoin-mining-pool concern).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.experiments.scenario import Scenario, ScenarioConfig, \
    ScenarioResult
from repro.hosts.attacker import AttackerConfig, SolutionFlooder
from repro.hosts.cpu import CPU_CATALOG, IOT_CATALOG
from repro.puzzles.membound import (
    MemboundParams,
    fairness_ratio,
    solve_seconds,
)
from repro.puzzles.params import PuzzleParams
from repro.tcp.adaptive import AdaptiveConfig, AdaptiveDifficultyController
from repro.tcp.constants import DefenseMode


# ----------------------------------------------------------------------
# Adaptive difficulty
# ----------------------------------------------------------------------
@dataclass
class AdaptiveOutcome:
    """Adaptive-vs-static comparison under the same attack."""

    adaptive: ScenarioResult
    static: ScenarioResult
    m_trajectory: List[Tuple[float, int, float]]

    @property
    def final_m(self) -> int:
        return self.m_trajectory[-1][1] if self.m_trajectory else -1


def adaptive_difficulty_experiment(
        base: Optional[ScenarioConfig] = None,
        start_m: int = 8,
        controller: Optional[AdaptiveConfig] = None) -> AdaptiveOutcome:
    """Run the connection flood twice: once with static (1, start_m)
    puzzles — too easy, per Experiment 3 — and once with the closed-loop
    controller starting from the same point."""
    config = base if base is not None else ScenarioConfig()
    config = replace(config, defense=DefenseMode.PUZZLES,
                     puzzle_params=PuzzleParams(k=1, m=start_m),
                     attack_style="connect")

    static = Scenario(config).run()

    scenario = Scenario(config)
    result = scenario.build()
    tuner = AdaptiveDifficultyController(
        result.engine, result.server_app.listener, controller)
    tuner.start()
    _drive(scenario, result)
    tuner.stop()
    return AdaptiveOutcome(adaptive=result, static=static,
                           m_trajectory=list(tuner.history))


def _drive(scenario: Scenario, result: ScenarioResult) -> None:
    config = scenario.config
    for client in result.clients:
        client.start()
    result.cpu.start()
    result.queues.start()
    if result.botnet is not None:
        result.engine.schedule_at(config.attack_start, result.botnet.start)
        result.engine.schedule_at(config.attack_end, result.botnet.stop)
    result.engine.run(until=config.duration)
    for client in result.clients:
        client.stop()
    result.cpu.stop()
    result.queues.stop()
    result.engine.drain()


# ----------------------------------------------------------------------
# Solution floods
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SolutionFloodPoint:
    flood_rate: float                # bogus solutions/second
    server_cpu_percent: float        # during the flood
    rejected: int                    # solutions that failed verification
    client_completion_percent: float


def solution_flood_experiment(
        rates: Tuple[float, ...] = (1_000.0, 5_000.0, 20_000.0),
        base: Optional[ScenarioConfig] = None) -> List[SolutionFloodPoint]:
    """§7's "Solution floods": bogus-solution barrages at growing rates.

    The §7 closed form says saturating a 10.8 M hash/s server takes
    ~5.4 M pps; these measured points let one check the linear
    extrapolation (CPU% per pps) against it.
    """
    points = []
    for rate in rates:
        config = base if base is not None else ScenarioConfig()
        config = replace(config, defense=DefenseMode.PUZZLES,
                         attack_enabled=False)
        scenario = Scenario(config)
        result = scenario.build()
        # One well-connected machine sprays bogus solutions for the whole
        # attack window.
        flooder_host = result.hosts["client" + str(config.n_clients - 1)]
        flooder = SolutionFlooder(
            flooder_host,
            AttackerConfig(server_ip=result.hosts["server"].address,
                           rate=rate),
            params=config.puzzle_params)
        result.engine.schedule_at(config.attack_start, flooder.start)
        result.engine.schedule_at(config.attack_end, flooder.stop)
        _drive(scenario, result)
        start, end = result.attack_window()
        points.append(SolutionFloodPoint(
            flood_rate=rate,
            server_cpu_percent=result.cpu.mean_in("server", start, end),
            rejected=result.listener_stats.solutions_invalid,
            client_completion_percent=result.client_completion_percent()))
    return points


# ----------------------------------------------------------------------
# Proof-of-work fairness
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FairnessRow:
    device: str
    hashcash_solve_s: float
    membound_solve_s: float


@dataclass(frozen=True)
class FairnessReport:
    rows: List[FairnessRow]
    hashcash_spread: float    # max/min solve time across devices
    membound_spread: float


def pow_fairness_table(
        hashcash: Optional[PuzzleParams] = None,
        membound: Optional[MemboundParams] = None) -> FairnessReport:
    """Solve times per device for CPU-bound vs memory-bound puzzles.

    Difficulties are calibrated so cpu3 (the median Xeon) pays ~the same
    time under both schemes; the spread across the full catalog is then an
    apples-to-apples fairness comparison.
    """
    hashcash = hashcash if hashcash is not None else PuzzleParams(k=2,
                                                                  m=17)
    devices = {**CPU_CATALOG, **IOT_CATALOG}
    reference = CPU_CATALOG["cpu3"]
    if membound is None:
        # Match cpu3's hashcash solve time with walk_length 32.
        target_seconds = hashcash.expected_hashes / reference.hash_rate
        walks_needed = target_seconds * reference.memory_rate / 32
        m = max(1, round(walks_needed).bit_length())
        membound = MemboundParams(table_bits=22, walk_length=32, m=m)

    rows = []
    for name, profile in devices.items():
        rows.append(FairnessRow(
            device=name,
            hashcash_solve_s=hashcash.expected_hashes / profile.hash_rate,
            membound_solve_s=solve_seconds(membound,
                                           profile.memory_rate)))
    return FairnessReport(
        rows=rows,
        hashcash_spread=fairness_ratio(
            [p.hash_rate for p in devices.values()]),
        membound_spread=fairness_ratio(
            [p.memory_rate for p in devices.values()]))


# ----------------------------------------------------------------------
# HTTP/1.1 keep-alive amortisation (§4.2)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KeepAliveOutcome:
    """Per-request vs persistent-session service under the same attack."""

    per_request_completion: float     # % of requests served
    keepalive_completion: float
    per_request_challenged: int       # puzzles actually paid
    keepalive_challenged: int
    keepalive_sessions: int


def keepalive_experiment(base: Optional[ScenarioConfig] = None
                         ) -> KeepAliveOutcome:
    """§4.2's observation, measured: on a persistent session the client
    "would only need to pay p* hashes once", so under attack a keep-alive
    population pays a fraction of the puzzles yet completes more requests.
    """
    from repro.hosts.client import BenignClient, ClientConfig, \
        KeepAliveClient
    from repro.hosts.server import ServerConfig

    config = base if base is not None else ScenarioConfig()
    config = replace(config, defense=DefenseMode.PUZZLES,
                     attack_style="connect")

    results = {}
    for keep_alive in (False, True):
        scenario = Scenario(config)
        result = scenario.build()
        # Rebuild the server app with keep-alive enabled.
        if keep_alive:
            result.server_app.config.keep_alive = True
            # Swap the (not-yet-started) per-request clients for
            # keep-alive sessions on the same hosts.
            keepalive_clients = [
                KeepAliveClient(client.host, client.config,
                                client.tracker)
                for client in result.clients
            ]
            result.clients.clear()
            result.clients.extend(keepalive_clients)
        _drive(scenario, result)
        results[keep_alive] = result

    per_request = results[False]
    keepalive = results[True]
    return KeepAliveOutcome(
        per_request_completion=per_request.client_completion_percent(),
        keepalive_completion=keepalive.client_completion_percent(),
        per_request_challenged=per_request.tracker.counts(
            "client")["challenged"],
        keepalive_challenged=keepalive.tracker.counts(
            "client")["challenged"],
        keepalive_sessions=sum(
            getattr(c, "sessions_opened", 0) for c in keepalive.clients))


# ----------------------------------------------------------------------
# Puzzle Fair Queuing (§7)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FairQueuingOutcome:
    """Uniform Nash pricing vs per-source escalation, same attack."""

    uniform: ScenarioResult
    fair: ScenarioResult
    #: Mean hashes a *client* actually paid per established connection.
    uniform_client_cost: float
    fair_client_cost: float

    @property
    def client_cost_ratio(self) -> float:
        """< 1 means fair queuing made honest clients cheaper."""
        if self.uniform_client_cost == 0:
            return float("nan")
        return self.fair_client_cost / self.uniform_client_cost


def _mean_client_solve_cost(result: ScenarioResult) -> float:
    """Average sampled solve attempts per challenged client connection."""
    total = 0
    count = 0
    for host_name, host in result.hosts.items():
        if not host_name.startswith("client"):
            continue
        total += host.hash_counter.count
    challenged = result.tracker.counts("client")["challenged"]
    return total / challenged if challenged else 0.0


def fair_queuing_experiment(base: Optional[ScenarioConfig] = None
                            ) -> FairQueuingOutcome:
    """Uniform (2, 17) pricing vs Puzzle Fair Queuing under the flood.

    Fair queuing starts everyone at an easy base (k=1, m=12) and escalates
    heavy sources; honest low-rate clients should end up paying *less* per
    connection than under uniform Nash pricing while the flooding sources
    get priced out just as hard.
    """
    from repro.tcp.fairness import FairnessConfig

    config = base if base is not None else ScenarioConfig()
    config = replace(config, defense=DefenseMode.PUZZLES,
                     attack_style="connect", attackers_solve=True)

    uniform = Scenario(replace(
        config, puzzle_params=PuzzleParams(k=2, m=17))).run()
    fair = Scenario(replace(
        config,
        puzzle_params=PuzzleParams(k=1, m=12),
        fairness=FairnessConfig(
            base_params=PuzzleParams(k=1, m=12)))).run()

    return FairQueuingOutcome(
        uniform=uniform, fair=fair,
        uniform_client_cost=_mean_client_solve_cost(uniform),
        fair_client_cost=_mean_client_solve_cost(fair))
