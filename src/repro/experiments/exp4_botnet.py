"""Experiment 4 (Figures 13–14): botnet effectiveness under Nash puzzles.

Two sweeps over the connection flood with solving bots and the Nash
difficulty:

* :func:`per_node_rate_sweep` (Figure 13) — 5 bots, per-node rate from 100
  to 1000 pps. Finding: the *measured* attack rate saturates well below the
  configured rate (the bots' blocking socket pools fill with challenged
  attempts), and the *completion* (effective) rate is flat — raising the
  per-node rate buys the attacker nothing.
* :func:`botnet_size_sweep` (Figure 14) — aggregate 5000 pps split over 2
  to 14 bots. Finding: the effective rate grows only ~linearly in the
  number of machines (each contributes its CPU-bound solving rate), two
  orders of magnitude below the measured rate — to scale the attack you
  must buy machines, not bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.puzzles.params import PuzzleParams
from repro.tcp.constants import DefenseMode


@dataclass(frozen=True)
class BotnetSweepPoint:
    """One x-axis point of Figure 13 or 14."""

    n_bots: int
    configured_rate_per_node: float
    configured_rate_total: float
    measured_attack_rate: float       # pps the botnet actually sent (13a/14a)
    completion_rate: float            # cps accepted by the server (13b/14b)
    completion_rate_steady: float     # same, past the engagement transient
    client_completion_percent: float


def _nash_config(base: Optional[ScenarioConfig]) -> ScenarioConfig:
    config = base if base is not None else ScenarioConfig()
    return replace(config, defense=DefenseMode.PUZZLES,
                   puzzle_params=PuzzleParams(k=2, m=17),
                   attack_style="connect", attackers_solve=True)


def _run_point(config: ScenarioConfig) -> BotnetSweepPoint:
    result = Scenario(config).run()
    return BotnetSweepPoint(
        n_bots=config.n_attackers,
        configured_rate_per_node=config.attack_rate,
        configured_rate_total=config.attack_rate * config.n_attackers,
        measured_attack_rate=result.attacker_measured_rate(),
        completion_rate=result.attacker_established_rate(),
        completion_rate_steady=result.attacker_steady_state_rate(),
        client_completion_percent=result.client_completion_percent())


def per_node_rate_sweep(rates: Sequence[float] = (100, 200, 400, 600, 800,
                                                  1000),
                        n_bots: int = 5,
                        base: Optional[ScenarioConfig] = None
                        ) -> List[BotnetSweepPoint]:
    """Figure 13: fixed 5-bot fleet, increasing per-node rate."""
    points = []
    for rate in rates:
        config = replace(_nash_config(base), n_attackers=n_bots,
                         attack_rate=rate)
        points.append(_run_point(config))
    return points


def botnet_size_sweep(sizes: Sequence[int] = (2, 4, 6, 8, 10, 12, 14),
                      total_rate: float = 5000.0,
                      base: Optional[ScenarioConfig] = None
                      ) -> List[BotnetSweepPoint]:
    """Figure 14: fixed 5000 pps aggregate, increasing fleet size."""
    points = []
    for size in sizes:
        config = replace(_nash_config(base), n_attackers=size,
                         attack_rate=total_rate / size)
        points.append(_run_point(config))
    return points
