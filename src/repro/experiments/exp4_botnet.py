"""Experiment 4 (Figures 13–14): botnet effectiveness under Nash puzzles.

Two sweeps over the connection flood with solving bots and the Nash
difficulty:

* :func:`per_node_rate_sweep` (Figure 13) — 5 bots, per-node rate from 100
  to 1000 pps. Finding: the *measured* attack rate saturates well below the
  configured rate (the bots' blocking socket pools fill with challenged
  attempts), and the *completion* (effective) rate is flat — raising the
  per-node rate buys the attacker nothing.
* :func:`botnet_size_sweep` (Figure 14) — aggregate 5000 pps split over 2
  to 14 bots. Finding: the effective rate grows only ~linearly in the
  number of machines (each contributes its CPU-bound solving rate), two
  orders of magnitude below the measured rate — to scale the attack you
  must buy machines, not bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.experiments.scenario import ScenarioConfig
from repro.experiments.summary import deterministic_engine_stats, \
    run_scenario_summary
from repro.puzzles.params import PuzzleParams
from repro.runner import SweepRunner
from repro.tcp.constants import DefenseMode


@dataclass(frozen=True)
class BotnetSweepPoint:
    """One x-axis point of Figure 13 or 14."""

    n_bots: int
    configured_rate_per_node: float
    configured_rate_total: float
    measured_attack_rate: float       # pps the botnet actually sent (13a/14a)
    completion_rate: float            # cps accepted by the server (13b/14b)
    completion_rate_steady: float     # same, past the engagement transient
    client_completion_percent: float
    #: Deterministic engine accounting (timing keys stripped), read by the
    #: sweep runner for events/sec manifests.
    engine_stats: Optional[Dict[str, float]] = None


def _nash_config(base: Optional[ScenarioConfig]) -> ScenarioConfig:
    config = base if base is not None else ScenarioConfig()
    return replace(config, defense=DefenseMode.PUZZLES,
                   puzzle_params=PuzzleParams(k=2, m=17),
                   attack_style="connect", attackers_solve=True)


def run_botnet_point(config: ScenarioConfig) -> BotnetSweepPoint:
    """Sweep-cell function: one flood run at one botnet shape."""
    summary = run_scenario_summary(config)
    return BotnetSweepPoint(
        n_bots=config.n_attackers,
        configured_rate_per_node=config.attack_rate,
        configured_rate_total=config.attack_rate * config.n_attackers,
        measured_attack_rate=summary.attacker_measured_rate(),
        completion_rate=summary.attacker_established_rate(),
        completion_rate_steady=summary.attacker_steady_state_rate(),
        client_completion_percent=summary.client_completion_percent(),
        engine_stats=deterministic_engine_stats(summary.engine_stats))


def per_node_rate_sweep(rates: Sequence[float] = (100, 200, 400, 600, 800,
                                                  1000),
                        n_bots: int = 5,
                        base: Optional[ScenarioConfig] = None,
                        runner: Optional[SweepRunner] = None
                        ) -> List[BotnetSweepPoint]:
    """Figure 13: fixed 5-bot fleet, increasing per-node rate."""
    if runner is None:
        runner = SweepRunner()
    configs = [replace(_nash_config(base), n_attackers=n_bots,
                       attack_rate=rate) for rate in rates]
    report = runner.map(run_botnet_point, configs,
                        labels=[f"rate{rate:g}" for rate in rates])
    return list(report.values)


def botnet_size_sweep(sizes: Sequence[int] = (2, 4, 6, 8, 10, 12, 14),
                      total_rate: float = 5000.0,
                      base: Optional[ScenarioConfig] = None,
                      runner: Optional[SweepRunner] = None
                      ) -> List[BotnetSweepPoint]:
    """Figure 14: fixed 5000 pps aggregate, increasing fleet size."""
    if runner is None:
        runner = SweepRunner()
    configs = [replace(_nash_config(base), n_attackers=size,
                       attack_rate=total_rate / size) for size in sizes]
    report = runner.map(run_botnet_point, configs,
                        labels=[f"bots{size}" for size in sizes])
    return list(report.values)
