"""Experiment 3 (Figure 12): the Nash difficulty against alternatives.

Sweeps k ∈ {1..4} × m ∈ {12, 15, 16, 17, 18, 20} under the connection
flood and summarises the per-bin client throughput during the attack as
boxplot statistics. The paper's finding: m < 12 fails to limit the
attackers at all; the Nash (2, 17) gives the most *stable* throughput —
competitive mean with low variability.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.scenario import ScenarioConfig
from repro.experiments.summary import deterministic_engine_stats, \
    run_scenario_summary
from repro.metrics.summary import Summary, describe
from repro.obs.hist import Histogram
from repro.puzzles.params import PuzzleParams
from repro.runner import RunnerStats, SweepRunner
from repro.tcp.constants import DefenseMode

DEFAULT_K_VALUES = (1, 2, 3, 4)
DEFAULT_M_VALUES = (12, 15, 16, 17, 18, 20)


@dataclass(frozen=True)
class DifficultyCell:
    """One (k, m) box of Figure 12 plus the rate-limiting side metrics."""

    k: int
    m: int
    throughput: Summary            # client Mbps per bin, attack window
    throughput_bins: np.ndarray
    attacker_established_rate: float   # server-side cps (§6.3 text)
    attacker_steady_rate: float        # same, post-engagement transient
    attacker_measured_rate: float      # attacker SYN pps (§6.3 text)
    client_completion_percent: float
    #: Deterministic engine accounting (timing keys stripped), read by the
    #: sweep runner for events/sec manifests.
    engine_stats: Optional[Dict[str, float]] = None
    #: The run's duration histograms (handshake latency, solve time, …),
    #: merged by the sweep runner into the fig12 manifest.
    histograms: Optional[Dict[str, Histogram]] = None


@dataclass(frozen=True)
class DifficultySpec:
    """Picklable sweep-cell spec: one (k, m) point over a base config."""

    k: int
    m: int
    base: ScenarioConfig = field(default_factory=ScenarioConfig)

    def config(self) -> ScenarioConfig:
        return replace(self.base, defense=DefenseMode.PUZZLES,
                       puzzle_params=PuzzleParams(k=self.k, m=self.m),
                       attack_style="connect")


def run_difficulty_spec(spec: DifficultySpec) -> DifficultyCell:
    """Sweep-cell function: one connection-flood run at (spec.k, spec.m)."""
    config = spec.config()
    summary = run_scenario_summary(config)
    start, end = summary.attack_window()
    times, mbps = summary.client_throughput.rx_mbps(config.duration)
    mask = (times >= start) & (times < end)
    bins = mbps[mask]
    return DifficultyCell(
        k=spec.k, m=spec.m,
        throughput=describe(bins),
        throughput_bins=bins,
        attacker_established_rate=summary.attacker_established_rate(),
        attacker_steady_rate=summary.attacker_steady_state_rate(),
        attacker_measured_rate=summary.attacker_measured_rate(),
        client_completion_percent=summary.client_completion_percent(),
        engine_stats=deterministic_engine_stats(summary.engine_stats),
        histograms=summary.histograms)


def run_difficulty_cell(k: int, m: int,
                        base: Optional[ScenarioConfig] = None
                        ) -> DifficultyCell:
    """One connection-flood run at difficulty (k, m)."""
    return run_difficulty_spec(DifficultySpec(
        k=k, m=m, base=base if base is not None else ScenarioConfig()))


def difficulty_sweep_report(k_values: Sequence[int] = DEFAULT_K_VALUES,
                            m_values: Sequence[int] = DEFAULT_M_VALUES,
                            base: Optional[ScenarioConfig] = None,
                            runner: Optional[SweepRunner] = None
                            ) -> Tuple[Dict[Tuple[int, int],
                                            DifficultyCell], RunnerStats]:
    """The Figure 12 grid plus the runner's execution accounting."""
    if runner is None:
        runner = SweepRunner()
    if base is None:
        base = ScenarioConfig()
    specs = [DifficultySpec(k=k, m=m, base=base)
             for k in k_values for m in m_values]
    report = runner.map(run_difficulty_spec, specs,
                        labels=[f"k{s.k}m{s.m}" for s in specs])
    grid = {(cell.k, cell.m): cell for cell in report.values}
    return grid, report.stats


def difficulty_sweep(k_values: Sequence[int] = DEFAULT_K_VALUES,
                     m_values: Sequence[int] = DEFAULT_M_VALUES,
                     base: Optional[ScenarioConfig] = None,
                     runner: Optional[SweepRunner] = None
                     ) -> Dict[Tuple[int, int], DifficultyCell]:
    """The full Figure 12 grid, keyed by (k, m)."""
    grid, _ = difficulty_sweep_report(k_values, m_values, base, runner)
    return grid


def stability_ranking(grid: Dict[Tuple[int, int], DifficultyCell]
                      ) -> List[Tuple[Tuple[int, int], float]]:
    """Cells ranked by throughput stability (mean − std, higher better) —
    the criterion under which §6.3 argues the Nash cell wins."""
    scored = []
    for key, cell in grid.items():
        if cell.throughput.count == 0:
            continue
        scored.append((key, cell.throughput.mean - cell.throughput.std))
    scored.sort(key=lambda item: item[1], reverse=True)
    return scored


def rate_limiting_cells(grid: Dict[Tuple[int, int], DifficultyCell],
                        max_attacker_cps: float
                        ) -> Dict[Tuple[int, int], DifficultyCell]:
    """The subset of cells that actually contain the attack — §6.3's
    precondition before stability is even worth comparing ("the ease of
    solving the challenges does not affect the attackers' rate, thus
    causing a denial of service")."""
    return {key: cell for key, cell in grid.items()
            if cell.attacker_steady_rate <= max_attacker_cps}


def in_nash_band(k: int, m: int, target: float = 66_966.0,
                 factor: float = 2.0) -> bool:
    """Whether ℓ(k, m) lies within *factor* of the continuous optimum ℓ*.

    §6.3's own data places the best throughput near the Nash price — the
    paper notes (2, 16) (= ℓ*/1.02) "achieves a slightly better average
    with comparable variability" — so the reproduction target is the
    *band*, not one rounding of it."""
    expected = PuzzleParams(k=k, m=m).expected_hashes
    return target / factor <= expected <= target * factor
