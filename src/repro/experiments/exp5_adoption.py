"""Experiment 5 (Figure 15): partial adoption of TCP puzzles.

Clients and attackers independently may or may not run the patch:

* ``(NA, NC)`` — neither solves: clients get almost no service (their plain
  ACKs are ignored while the non-solving flood keeps the queues pressured);
* ``(SA, NC)`` — solving attacker, non-solving clients: erratic service
  (the rate-limited attacker leaves openings that non-solvers race for);
* ``(*A, SC)`` — solving clients against either attacker: near-full
  service. The paper groups (NA, SC) and (SA, SC) into one series because
  they coincide; we run all four and expose the grouping.

The reported metric is the per-bin percentage of client connection
attempts that completed (Figure 15's y-axis).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

import numpy as np

from repro.experiments.scenario import ScenarioConfig
from repro.experiments.summary import ScenarioSummary, run_scenario_summary
from repro.puzzles.params import PuzzleParams
from repro.runner import SweepRunner
from repro.tcp.constants import DefenseMode

#: The paper's scenario labels.
SCENARIOS = {
    "NA,NC": (False, False),
    "SA,NC": (True, False),
    "NA,SC": (False, True),
    "SA,SC": (True, True),
}


@dataclass
class AdoptionOutcome:
    """One adoption scenario's Figure 15 series and summary."""

    label: str
    attacker_solves: bool
    client_solves: bool
    times: np.ndarray
    completion_percent: np.ndarray     # per attempt-bin, NaN when no attempts
    mean_completion_percent: float
    summary: ScenarioSummary

    @property
    def engine_stats(self):
        """Runner accounting hook (delegates to the summary)."""
        return self.summary.engine_stats


@dataclass(frozen=True)
class AdoptionSpec:
    """Picklable sweep-cell spec: one adoption label over a base config."""

    label: str
    base: ScenarioConfig = field(default_factory=ScenarioConfig)

    def config(self) -> ScenarioConfig:
        attacker_solves, client_solves = SCENARIOS[self.label]
        return replace(self.base,
                       defense=DefenseMode.PUZZLES,
                       puzzle_params=PuzzleParams(k=2, m=17),
                       attack_style="connect",
                       attackers_solve=attacker_solves,
                       clients_patched=client_solves,
                       clients_solve=client_solves)


def run_adoption_cell(spec: AdoptionSpec) -> AdoptionOutcome:
    """Sweep-cell function: one adoption scenario."""
    attacker_solves, client_solves = SCENARIOS[spec.label]
    config = spec.config()
    summary = run_scenario_summary(config)
    start, end = summary.attack_window()
    times, percent = summary.connections.completion_percent_series(
        "client", config.duration)
    mask = (times >= start) & (times < end)
    window = percent[mask]
    window = window[~np.isnan(window)]
    mean = float(np.mean(window)) if window.size else float("nan")
    return AdoptionOutcome(label=spec.label,
                           attacker_solves=attacker_solves,
                           client_solves=client_solves, times=times,
                           completion_percent=percent,
                           mean_completion_percent=mean, summary=summary)


def run_adoption_scenario(label: str,
                          base: Optional[ScenarioConfig] = None
                          ) -> AdoptionOutcome:
    return run_adoption_cell(AdoptionSpec(
        label=label, base=base if base is not None else ScenarioConfig()))


def adoption_study(base: Optional[ScenarioConfig] = None,
                   runner: Optional[SweepRunner] = None
                   ) -> Dict[str, AdoptionOutcome]:
    """All four scenarios, keyed by the paper's labels."""
    if runner is None:
        runner = SweepRunner()
    if base is None:
        base = ScenarioConfig()
    specs = [AdoptionSpec(label=label, base=base) for label in SCENARIOS]
    report = runner.map(run_adoption_cell, specs,
                        labels=[spec.label for spec in specs])
    return {outcome.label: outcome for outcome in report.values}


def grouped_series(outcomes: Dict[str, AdoptionOutcome]
                   ) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """The paper's three Figure 15 series: (NA,NC), (SA,NC), (*A,SC)."""
    solving = [outcomes["NA,SC"], outcomes["SA,SC"]]
    stacked = np.vstack([o.completion_percent for o in solving])
    with np.errstate(invalid="ignore"):
        merged = np.nanmean(stacked, axis=0)
    return {
        "(NA, NC)": (outcomes["NA,NC"].times,
                     outcomes["NA,NC"].completion_percent),
        "(SA, NC)": (outcomes["SA,NC"].times,
                     outcomes["SA,NC"].completion_percent),
        "(*A, SC)": (solving[0].times, merged),
    }
