"""Experiment 5 (Figure 15): partial adoption of TCP puzzles.

Clients and attackers independently may or may not run the patch:

* ``(NA, NC)`` — neither solves: clients get almost no service (their plain
  ACKs are ignored while the non-solving flood keeps the queues pressured);
* ``(SA, NC)`` — solving attacker, non-solving clients: erratic service
  (the rate-limited attacker leaves openings that non-solvers race for);
* ``(*A, SC)`` — solving clients against either attacker: near-full
  service. The paper groups (NA, SC) and (SA, SC) into one series because
  they coincide; we run all four and expose the grouping.

The reported metric is the per-bin percentage of client connection
attempts that completed (Figure 15's y-axis).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

import numpy as np

from repro.experiments.scenario import Scenario, ScenarioConfig, \
    ScenarioResult
from repro.puzzles.params import PuzzleParams
from repro.tcp.constants import DefenseMode

#: The paper's scenario labels.
SCENARIOS = {
    "NA,NC": (False, False),
    "SA,NC": (True, False),
    "NA,SC": (False, True),
    "SA,SC": (True, True),
}


@dataclass
class AdoptionOutcome:
    """One adoption scenario's Figure 15 series and summary."""

    label: str
    attacker_solves: bool
    client_solves: bool
    times: np.ndarray
    completion_percent: np.ndarray     # per attempt-bin, NaN when no attempts
    mean_completion_percent: float
    result: ScenarioResult


def run_adoption_scenario(label: str,
                          base: Optional[ScenarioConfig] = None
                          ) -> AdoptionOutcome:
    attacker_solves, client_solves = SCENARIOS[label]
    config = base if base is not None else ScenarioConfig()
    config = replace(config,
                     defense=DefenseMode.PUZZLES,
                     puzzle_params=PuzzleParams(k=2, m=17),
                     attack_style="connect",
                     attackers_solve=attacker_solves,
                     clients_patched=client_solves,
                     clients_solve=client_solves)
    result = Scenario(config).run()
    start, end = result.attack_window()
    times, percent = result.tracker.completion_percent_series(
        "client", config.duration)
    mask = (times >= start) & (times < end)
    window = percent[mask]
    window = window[~np.isnan(window)]
    mean = float(np.mean(window)) if window.size else float("nan")
    return AdoptionOutcome(label=label, attacker_solves=attacker_solves,
                           client_solves=client_solves, times=times,
                           completion_percent=percent,
                           mean_completion_percent=mean, result=result)


def adoption_study(base: Optional[ScenarioConfig] = None
                   ) -> Dict[str, AdoptionOutcome]:
    """All four scenarios, keyed by the paper's labels."""
    return {label: run_adoption_scenario(label, base)
            for label in SCENARIOS}


def grouped_series(outcomes: Dict[str, AdoptionOutcome]
                   ) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """The paper's three Figure 15 series: (NA,NC), (SA,NC), (*A,SC)."""
    solving = [outcomes["NA,SC"], outcomes["SA,SC"]]
    stacked = np.vstack([o.completion_percent for o in solving])
    with np.errstate(invalid="ignore"):
        merged = np.nanmean(stacked, axis=0)
    return {
        "(NA, NC)": (outcomes["NA,NC"].times,
                     outcomes["NA,NC"].completion_percent),
        "(SA, NC)": (outcomes["SA,NC"].times,
                     outcomes["SA,NC"].completion_percent),
        "(*A, SC)": (solving[0].times, merged),
    }
