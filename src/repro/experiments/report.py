"""Plain-text table rendering for experiment output.

The harness prints the same rows the paper's tables/figures report; these
helpers keep the formatting in one place (and EXPERIMENTS.md embeds the
rendered output).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence]) -> str:
    """Monospace table with a header rule."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row]
                                 for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
