"""Figure 3: obtaining the model parameters w_av and α (§4.3–§4.4).

* Figure 3(a): per-CPU hash trajectories over the 400 ms budget, and the
  resulting ``w_av`` (the paper's 140,630).
* Figure 3(b): a stress test of the application server — closed-loop
  clients sweep the concurrency level; the measured service rate converges
  to µ and the service parameter ``α = µ/n`` to its asymptote (the paper's
  1.1 at µ ≈ 1100).

The stress test here runs against the *simulated* server (the same
M/M/1-style worker pool the experiments use), exactly as the paper ran
``ab`` against its apache2 deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.profiling import (
    DEFAULT_DELAY_BUDGET_SECONDS,
    ServerProfile,
    estimate_w_av,
)
from repro.hosts.cpu import CPU_CATALOG, SERVER_CPU, CPUProfile
from repro.hosts.host import Host
from repro.hosts.server import AppServer, ServerConfig
from repro.net.addresses import AddressAllocator
from repro.net.network import Network
from repro.net.topology import deter_topology
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.tcp.connection import ClientConnConfig


@dataclass(frozen=True)
class ClientProfileRow:
    """One Figure 3(a) trajectory endpoint."""

    name: str
    description: str
    hash_rate: float
    hashes_in_budget: float


def client_profile_table(
        catalog: Optional[Dict[str, CPUProfile]] = None,
        budget: float = DEFAULT_DELAY_BUDGET_SECONDS
) -> Tuple[List[ClientProfileRow], float]:
    """Rows for each profiled CPU plus the resulting ``w_av``."""
    catalog = catalog if catalog is not None else CPU_CATALOG
    rows = [
        ClientProfileRow(name=p.name, description=p.description,
                         hash_rate=p.hash_rate,
                         hashes_in_budget=p.hash_rate * budget)
        for p in catalog.values()
    ]
    w_av = estimate_w_av([p.to_client_profile() for p in catalog.values()],
                         budget)
    return rows, w_av


class _ClosedLoopClient:
    """One ``ab``-style concurrent requester: re-requests on completion."""

    def __init__(self, host: Host, server_ip: int, on_served) -> None:
        self.host = host
        self.server_ip = server_ip
        self.on_served = on_served
        self._issue()

    def _issue(self) -> None:
        connection = self.host.tcp.connect(self.server_ip, 80,
                                           ClientConnConfig())
        connection.on_established = lambda conn: conn.send_data(
            120, app_data=("gettext", 1000))
        connection.on_data = self._on_response
        connection.on_reset = lambda conn: self._retry()
        connection.on_failed = lambda conn, reason: self._retry()

    def _on_response(self, connection, payload_bytes, app_data) -> None:
        connection.abort()
        self.on_served()
        self._issue()

    def _retry(self) -> None:
        self.host.engine.schedule(0.05, self._issue)


def server_stress_test(concurrency_levels: Sequence[int] = (
        1, 10, 50, 100, 200, 400, 600, 800, 1000),
        measure_seconds: float = 10.0,
        service_rate: float = 1100.0,
        seed: int = 7) -> ServerProfile:
    """Figure 3(b): sweep concurrency, record the served rate.

    Each level runs an independent simulation with *n* closed-loop clients
    hammering the server; the measured rate is requests served over the
    measurement window (after a warm-up of one window-tenth).
    """
    points = []
    for n in concurrency_levels:
        engine = Engine()
        streams = RngStreams(seed + n)
        # Closed-loop load generators live on a handful of client hosts.
        n_hosts = min(n, 16)
        topology = deter_topology(n_hosts, 0)
        network = Network(engine, topology)
        allocator = AddressAllocator()
        server_host = Host("server", allocator.allocate(), engine, network,
                           SERVER_CPU, streams.get("server"))
        server = AppServer(server_host, ServerConfig(
            service_rate=service_rate,
            workers=max(128, n),
            idle_timeout=1.0))
        served = [0]

        def count() -> None:
            served[0] += 1

        hosts = []
        for i in range(n_hosts):
            hosts.append(Host(f"client{i}", allocator.allocate(), engine,
                              network, list(CPU_CATALOG.values())[i % 3],
                              streams.get(f"client{i}")))
        warmup = measure_seconds / 10.0
        for i in range(n):
            host = hosts[i % n_hosts]
            engine.schedule(warmup * i / max(n, 1) * 0.1,
                            _ClosedLoopClient, host,
                            server_host.address, count)
        engine.run(until=warmup)
        served[0] = 0
        engine.run(until=warmup + measure_seconds)
        engine.drain()
        rate = served[0] / measure_seconds
        points.append((n, max(rate, 1e-9)))
    return ServerProfile.from_points(points)
