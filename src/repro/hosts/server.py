"""The application server: an apache2-like ``gettext/size`` responder.

The experiments' server runs an HTTP application that "accepts
gettext/size requests and returns messages containing size bytes of random
text" (§6). Two resources shape its behaviour:

* a **worker pool** of connection handlers — each free worker accepts one
  connection from the listener's accept queue and waits for its request;
  silent connections (a connection flood's zombies) tie a worker down for
  ``idle_timeout`` before being shed, which is the damage that flood does;
* a **processing unit** that serves requests *serially* at exponential
  rate µ — the M/M/1 abstraction of §4.1 made executable. Under light
  load a request takes ≈ 1/µ; under saturation the aggregate rate pins at
  µ, and the measured latency tracks the theory's ``S(x̄) = 1/(µ − x̄)``.
  This is what the Figure 3(b) stress test measures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ExperimentError
from repro.hosts.host import Host
from repro.tcp.connection import ServerConnection
from repro.tcp.listener import DefenseConfig, ListenSocket


@dataclass
class ServerConfig:
    """Application-level server knobs."""

    port: int = 80
    service_rate: float = 1100.0     # µ: the M/M/1 processing rate (Fig 3b)
    workers: int = 128               # concurrent connection handlers
    idle_timeout: float = 0.57       # seconds a worker waits on silence
    cpu_seconds_per_request: float = 0.0001  # non-hash CPU per request
    #: HTTP/1.1-style persistent connections (§4.2: a client on a
    #: keep-alive session pays the puzzle once per *session*). The worker
    #: keeps the connection after responding, up to the request cap or an
    #: idle gap.
    keep_alive: bool = False
    max_keepalive_requests: int = 100
    defense: DefenseConfig = field(default_factory=DefenseConfig)

    def __post_init__(self) -> None:
        if self.service_rate <= 0:
            raise ExperimentError("service_rate must be positive")
        if self.workers < 1:
            raise ExperimentError("workers must be >= 1")
        if self.idle_timeout <= 0:
            raise ExperimentError("idle_timeout must be positive")


@dataclass
class ServerStats:
    requests_served: int = 0
    response_bytes: int = 0
    idle_closed: int = 0
    malformed_requests: int = 0


class _ProcessingUnit:
    """Serial request processor: the executable M/M/1 server.

    Jobs queue FIFO; each takes an Exp(µ) service draw. Implemented like
    :class:`~repro.hosts.host.CPUResource` — an analytic ``next_free``
    clock and one completion event per job.
    """

    def __init__(self, host: Host, rate: float, rng: random.Random) -> None:
        self.host = host
        self.rate = rate
        self.rng = rng
        self._next_free = 0.0
        self.jobs_done = 0

    def backlog_seconds(self) -> float:
        return max(0.0, self._next_free - self.host.engine.now)

    def submit(self, callback: Callable[[], None]) -> None:
        now = self.host.engine.now
        start = max(now, self._next_free)
        service = self.rng.expovariate(self.rate)
        self._next_free = start + service

        def finish() -> None:
            self.jobs_done += 1
            callback()

        self.host.engine.schedule_at(self._next_free, finish)


class AppServer:
    """Worker-pool + M/M/1 application on top of a :class:`ListenSocket`."""

    def __init__(self, host: Host, config: Optional[ServerConfig] = None
                 ) -> None:
        self.host = host
        self.config = config if config is not None else ServerConfig()
        self.listener: ListenSocket = host.tcp.listen(
            self.config.port, self.config.defense)
        self.listener.on_acceptable = self._dispatch
        self.free_workers = self.config.workers
        self.stats = ServerStats()
        self.processing = _ProcessingUnit(host, self.config.service_rate,
                                          host.rng)

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        while self.free_workers > 0:
            connection = self.listener.accept()
            if connection is None:
                return
            self.free_workers -= 1
            _Worker(self, connection)

    def _worker_done(self) -> None:
        self.free_workers += 1
        self._dispatch()


class _Worker:
    """One connection handler's lifecycle on one accepted connection."""

    def __init__(self, server: AppServer, connection: ServerConnection
                 ) -> None:
        self.server = server
        self.connection = connection
        self.host = server.host
        self._done = False
        self._served = 0
        # ±15% jitter: zombies attached in one engagement burst would
        # otherwise shed in phase-locked waves, holding the accept queue
        # below full long enough for floods to refill it wholesale. Real
        # servers desynchronise through timer granularity and scheduling
        # variance.
        timeout = server.config.idle_timeout * self.host.rng.uniform(
            0.85, 1.15)
        self._idle_timer = self.host.engine.schedule(
            timeout, self._idle_timeout)
        connection.attach_reader(self._on_request)

    def _on_request(self, connection: ServerConnection, payload_bytes: int,
                    app_data: object) -> None:
        if self._done:
            return
        self._idle_timer.cancel()
        if (not isinstance(app_data, tuple) or len(app_data) != 2
                or app_data[0] != "gettext"):
            self.server.stats.malformed_requests += 1
            self.host.mib.incr("MalformedRequests")
            self._finish(reset=True)
            return
        size = int(app_data[1])
        self.host.cpu.consume_seconds(
            self.server.config.cpu_seconds_per_request)
        self.server.processing.submit(lambda: self._respond(size))

    def _respond(self, size: int) -> None:
        if self._done:
            return
        self.connection.send_data(size, app_data=("response", size))
        self.server.stats.requests_served += 1
        self.host.mib.incr("RequestsServed")
        self.server.stats.response_bytes += size
        self._served += 1
        config = self.server.config
        if (config.keep_alive
                and self._served < config.max_keepalive_requests):
            # HTTP/1.1 persistence: hold the connection for the next
            # request, bounded by the idle timer.
            self._idle_timer = self.host.engine.schedule(
                config.idle_timeout * self.host.rng.uniform(0.85, 1.15),
                self._idle_timeout)
            return
        # Keep-alive request cap reached: notify the peer so it re-opens
        # promptly instead of timing out on a dead session.
        self._finish(reset=config.keep_alive)

    def _idle_timeout(self) -> None:
        """The connection never sent a request — shed it (RST) and move on.

        This is how connection-flood zombies eventually lose their accept
        slot; until then they have consumed a worker, which is the damage
        the flood does.
        """
        if self._done:
            return
        self.server.stats.idle_closed += 1
        self.host.mib.incr("IdleWorkersShed")
        self._finish(reset=True)

    def _finish(self, reset: bool) -> None:
        self._done = True
        self._idle_timer.cancel()
        self.connection.close(reset=reset)
        self.server._worker_done()
