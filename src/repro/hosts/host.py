"""Base host: address + CPU + TCP stack + hash accounting.

The CPU model is what turns puzzle difficulty into *time*: all solve work on
a host is serialised through :class:`CPUResource`, so a machine that must
brute-force ``k·2^(m-1)`` hashes per connection is physically limited to
``hash_rate / (k·2^(m-1))`` connections per second — the rate-limiting
mechanism the whole paper turns on.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.crypto.sha256 import HashCounter
from repro.errors import SimulationError
from repro.hosts.cpu import CPUProfile
from repro.net.network import Network
from repro.net.packet import Packet
from repro.obs import hub_for
from repro.sim.engine import Engine
from repro.tcp.stack import TCPStack


class CPUResource:
    """Serialised compute resource with busy-time accounting.

    Work is packed back-to-back: a job submitted while the CPU is busy
    starts when the previous job finishes. Because of that packing, the
    cumulative busy time *up to* any instant ``t`` is simply
    ``credited − max(0, busy_until − t)`` — which gives the Figure 9
    utilisation sampler an O(1) exact measurement.
    """

    def __init__(self, engine: Engine, profile: CPUProfile) -> None:
        self.engine = engine
        self.profile = profile
        self.busy_until = 0.0
        self._credited = 0.0
        self.jobs_run = 0

    @property
    def hash_rate(self) -> float:
        return self.profile.hash_rate

    def backlog_seconds(self) -> float:
        """Queued work ahead of a new submission, in seconds."""
        return max(0.0, self.busy_until - self.engine.now)

    def run(self, hashes: int, callback: Callable[[], None]) -> float:
        """Queue *hashes* of brute-force work; *callback* fires when done.

        Returns the completion time.
        """
        if hashes < 0:
            raise SimulationError(f"hashes must be >= 0, got {hashes!r}")
        now = self.engine.now
        start = max(now, self.busy_until)
        duration = hashes / self.hash_rate
        self.busy_until = start + duration
        self._credited += duration
        self.jobs_run += 1
        self.engine.schedule_at(self.busy_until, callback)
        return self.busy_until

    def consume(self, hashes: float) -> None:
        """Account for synchronous work (e.g. server-side verification)."""
        if hashes < 0:
            raise SimulationError(f"hashes must be >= 0, got {hashes!r}")
        # _consume_seconds inlined: this runs once per issued challenge
        # and per verified solution, so the extra frame is measurable.
        duration = hashes / self.hash_rate
        start = self.busy_until
        now = self.engine.now
        if now > start:
            start = now
        self.busy_until = start + duration
        self._credited += duration

    def consume_seconds(self, seconds: float) -> None:
        """Account for non-hash CPU work (e.g. request processing)."""
        if seconds < 0:
            raise SimulationError(f"seconds must be >= 0, got {seconds!r}")
        start = self.busy_until
        now = self.engine.now
        if now > start:
            start = now
        self.busy_until = start + seconds
        self._credited += seconds

    def _consume_seconds(self, duration: float) -> None:
        now = self.engine.now
        start = max(now, self.busy_until)
        self.busy_until = start + duration
        self._credited += duration

    def busy_seconds(self, at: Optional[float] = None) -> float:
        """Cumulative busy seconds up to *at* (default: now)."""
        if at is None:
            at = self.engine.now
        return self._credited - max(0.0, self.busy_until - at)


class Host:
    """A machine on the experiment network."""

    def __init__(self, name: str, address: int, engine: Engine,
                 network: Network, cpu_profile: CPUProfile,
                 rng: random.Random) -> None:
        self.name = name
        self.address = address
        self.engine = engine
        self.network = network
        self.rng = rng
        self.cpu = CPUResource(engine, cpu_profile)
        self.hash_counter = HashCounter(name)
        # Observability: every host on one engine shares the engine's hub;
        # `mib` is this host's own SNMP-style counter scope.
        self.obs = hub_for(engine)
        self.mib = self.obs.counters.scope(name)
        self.tcp = TCPStack(self)
        network.register(self)

    @property
    def now(self) -> float:
        """This host's wall-clock reading: engine time plus injected skew.

        Timestamp generation/verification (puzzle challenges, SYN
        cookies) reads this; internal timers stay on the engine's
        monotonic clock, matching how real clock drift perturbs wall
        reads but not jiffies.
        """
        return self.engine.now_for(self.name)

    def send(self, packet: Packet) -> None:
        self.network.send(self, packet)

    def receive(self, packet: Packet) -> None:
        self.tcp.receive(packet)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        from repro.net.addresses import format_ip

        return f"<Host {self.name} {format_ip(self.address)}>"
