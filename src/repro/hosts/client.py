"""Benign clients: Poisson request arrivals, puzzle solving, timeouts.

Each client issues ``gettext/size`` requests at exponentially distributed
intervals (§6: 15 machines, 20 requests/second, 10,000 bytes). A request's
lifecycle: connect (solving a challenge if one arrives and the machine is
patched and willing) → send the request → await the full response →
success; RST or timeout → failure.

A client whose CPU is saturated with pending puzzle work defers new
requests (``max_cpu_backlog``) — a browser on a busy machine stalls rather
than queueing unbounded work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hosts.host import Host
from repro.metrics.connections import ConnectionRecord, ConnectionTracker
from repro.sim.process import PoissonProcess
from repro.tcp.connection import ClientConnConfig, ClientConnection


@dataclass
class ClientConfig:
    """Benign-client behaviour knobs."""

    server_ip: int = 0
    server_port: int = 80
    request_rate: float = 20.0       # requests/second (Poisson)
    request_size: int = 10_000       # bytes of text requested
    request_overhead: int = 120      # bytes of the request itself
    request_timeout: float = 10.0    # give up waiting for the response
    supports_puzzles: bool = True    # machine runs the kernel patch
    solve_puzzles: bool = True       # and is willing to solve
    max_cpu_backlog: float = 1.0     # defer new requests past this (s)
    #: Solver instance (None → the modelled solver). Must match the
    #: server scheme's mode; the scenario builder wires this.
    solver: Optional[object] = None
    label: str = "client"

    def conn_config(self) -> ClientConnConfig:
        """The per-connection handshake config this client uses."""
        kwargs = dict(supports_puzzles=self.supports_puzzles,
                      solve_puzzles=self.solve_puzzles)
        if self.solver is not None:
            kwargs["solver"] = self.solver
        return ClientConnConfig(**kwargs)


class BenignClient:
    """One client machine's request generator."""

    def __init__(self, host: Host, config: ClientConfig,
                 tracker: Optional[ConnectionTracker] = None) -> None:
        self.host = host
        self.config = config
        self.tracker = tracker
        self.deferred = 0  # requests skipped because the CPU was saturated
        self._process = PoissonProcess(
            host.engine, self._new_request, rate=config.request_rate,
            rng=host.rng)

    def start(self, delay: Optional[float] = None) -> None:
        self._process.start(delay)

    def stop(self) -> None:
        self._process.stop()

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def _new_request(self) -> None:
        if self.host.cpu.backlog_seconds() > self.config.max_cpu_backlog:
            self.deferred += 1
            return
        record = (self.tracker.open(self.config.label)
                  if self.tracker is not None else None)
        connection = self.host.tcp.connect(
            self.config.server_ip, self.config.server_port,
            self.config.conn_config())
        _Request(self, connection, record)


class _Request:
    """Tracks one connection + request/response exchange."""

    def __init__(self, client: BenignClient, connection: ClientConnection,
                 record: Optional[ConnectionRecord]) -> None:
        self.client = client
        self.connection = connection
        self.record = record
        self.received = 0
        self._finished = False
        connection.on_established = self._on_established
        connection.on_data = self._on_data
        connection.on_reset = self._on_reset
        connection.on_failed = self._on_failed
        self._timeout = client.host.engine.schedule(
            client.config.request_timeout, self._on_timeout)

    def _on_established(self, connection: ClientConnection) -> None:
        if self.record is not None and self.client.tracker is not None:
            self.client.tracker.established(
                self.record, challenged=connection.was_challenged)
        connection.send_data(
            self.client.config.request_overhead,
            app_data=("gettext", self.client.config.request_size))

    def _on_data(self, connection: ClientConnection, payload_bytes: int,
                 app_data: object) -> None:
        self.received += payload_bytes
        if self.received >= self.client.config.request_size:
            self._finish(success=True)

    def _on_reset(self, connection: ClientConnection) -> None:
        self._finish(success=False, reason="reset")

    def _on_failed(self, connection: ClientConnection, reason: str) -> None:
        self._finish(success=False, reason=reason)

    def _on_timeout(self) -> None:
        self._finish(success=False, reason="timeout")

    def _finish(self, success: bool, reason: str = "") -> None:
        if self._finished:
            return
        self._finished = True
        self._timeout.cancel()
        if self.record is not None and self.client.tracker is not None:
            if success:
                self.client.tracker.completed(self.record)
            else:
                self.client.tracker.failed(self.record, reason)
        self.connection.abort()


class KeepAliveClient:
    """A benign client using HTTP/1.1-style persistent sessions (§4.2).

    One TCP connection (one puzzle, if challenged) carries many requests.
    Arrivals are Poisson like :class:`BenignClient`'s; requests are issued
    serially on the live session — arrivals during an in-flight exchange
    queue up to ``max_queued``, beyond which they are dropped as failures
    (a saturated browser tab). When the session dies (RST, timeout) the
    next arrival pays for a fresh handshake.
    """

    def __init__(self, host: Host, config: ClientConfig,
                 tracker: Optional[ConnectionTracker] = None) -> None:
        self.host = host
        self.config = config
        self.tracker = tracker
        self.deferred = 0
        self.sessions_opened = 0
        self.max_queued = 50
        self._conn: Optional[ClientConnection] = None
        self._inflight: Optional[ConnectionRecord] = None
        self._queue: list = []
        self._received = 0
        self._timeout = None
        self._process = PoissonProcess(
            host.engine, self._new_request, rate=config.request_rate,
            rng=host.rng)

    def start(self, delay: Optional[float] = None) -> None:
        self._process.start(delay)

    def stop(self) -> None:
        self._process.stop()

    # ------------------------------------------------------------------
    def _new_request(self) -> None:
        if self.host.cpu.backlog_seconds() > self.config.max_cpu_backlog:
            self.deferred += 1
            return
        record = (self.tracker.open(self.config.label)
                  if self.tracker is not None else None)
        if self._inflight is not None or (
                self._conn is not None and self._conn.established_at is
                None):
            if len(self._queue) >= self.max_queued:
                if record is not None:
                    self.tracker.failed(record, "queue-full")
                return
            self._queue.append(record)
            return
        self._issue(record)

    def _issue(self, record) -> None:
        self._inflight = record
        self._received = 0
        if self._conn is None:
            self.sessions_opened += 1
            self._conn = self.host.tcp.connect(
                self.config.server_ip, self.config.server_port,
                self.config.conn_config())
            self._conn.on_established = self._on_established
            self._conn.on_data = self._on_data
            self._conn.on_reset = self._on_reset
            self._conn.on_failed = self._on_failed
        else:
            self._send_request()
        self._timeout = self.host.engine.schedule(
            self.config.request_timeout, self._on_timeout)

    def _send_request(self) -> None:
        self._conn.send_data(self.config.request_overhead,
                             app_data=("gettext",
                                       self.config.request_size))

    def _on_established(self, connection: ClientConnection) -> None:
        if self._inflight is not None and self.tracker is not None:
            self.tracker.established(
                self._inflight, challenged=connection.was_challenged)
        self._send_request()

    def _on_data(self, connection, payload_bytes: int,
                 app_data: object) -> None:
        self._received += payload_bytes
        if self._received >= self.config.request_size:
            self._complete(success=True)

    def _on_reset(self, connection) -> None:
        self._teardown("reset")

    def _on_failed(self, connection, reason: str) -> None:
        self._teardown(reason)

    def _on_timeout(self) -> None:
        self._teardown("timeout")

    # ------------------------------------------------------------------
    def _complete(self, success: bool) -> None:
        if self._timeout is not None:
            self._timeout.cancel()
            self._timeout = None
        if self._inflight is not None and self.tracker is not None:
            if success:
                self.tracker.completed(self._inflight)
        self._inflight = None
        self._pump()

    def _teardown(self, reason: str) -> None:
        """Session died: fail the in-flight request, drop the session."""
        if self._timeout is not None:
            self._timeout.cancel()
            self._timeout = None
        if self._inflight is not None and self.tracker is not None:
            self.tracker.failed(self._inflight, reason)
        self._inflight = None
        if self._conn is not None:
            self._conn.abort()
            self._conn = None
        self._pump()

    def _pump(self) -> None:
        if self._inflight is None and self._queue:
            self._issue(self._queue.pop(0))
