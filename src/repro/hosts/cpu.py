"""CPU profiles: the hash rates of the paper's evaluation hardware.

Figure 3(a) profiles three Xeon-class client CPUs whose *average* completes
``w_av = 140630`` SHA-256 operations within the 400 ms delay budget
(≈ 351,575 hashes/s mean). The paper reports only the average, so the
individual rates below are chosen to be plausible for the named parts while
reproducing the published mean exactly.

Table 1 profiles four Raspberry Pi boards; those rates are published
directly and are reproduced verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.profiling import (
    DEFAULT_DELAY_BUDGET_SECONDS,
    ClientProfile,
)
from repro.errors import GameError


@dataclass(frozen=True)
class CPUProfile:
    """A named CPU with a SHA-256 hash rate (operations/second).

    ``memory_rate`` is the sustained *random* memory-access rate, used by
    the memory-bound proof-of-work extension (§7 fairness discussion).
    DRAM latency varies far less across the device spectrum than compute
    throughput — the catalog's memory rates span ~2× where hash rates span
    ~7× — which is exactly the property memory-bound puzzles exploit. The
    values are synthetic estimates consistent with DDR3-era parts.
    """

    name: str
    description: str
    hash_rate: float
    memory_rate: float = 50e6

    def __post_init__(self) -> None:
        if self.hash_rate <= 0:
            raise GameError(
                f"hash_rate must be positive, got {self.hash_rate!r}")
        if self.memory_rate <= 0:
            raise GameError(
                f"memory_rate must be positive, got {self.memory_rate!r}")

    @property
    def hashes_in_budget(self) -> float:
        """Hashes completed within the 400 ms usability budget."""
        return self.hash_rate * DEFAULT_DELAY_BUDGET_SECONDS

    def solve_seconds(self, expected_hashes: float) -> float:
        """Expected wall time to perform *expected_hashes* operations."""
        if expected_hashes < 0:
            raise GameError("expected_hashes must be >= 0")
        return expected_hashes / self.hash_rate

    def to_client_profile(self) -> ClientProfile:
        return ClientProfile(name=self.name, hash_rate=self.hash_rate)


#: Figure 3(a) client CPUs. Individual rates are calibrated so the catalog
#: mean over 400 ms is the paper's w_av = 140630 exactly.
CPU_CATALOG: Dict[str, CPUProfile] = {
    "cpu1": CPUProfile(
        name="cpu1",
        description="Intel Xeon E3-1260L quad-core @ 2.4 GHz",
        hash_rate=372_500.0, memory_rate=55e6),
    "cpu2": CPUProfile(
        name="cpu2",
        description="Intel Xeon X3210 quad-core @ 2.13 GHz",
        hash_rate=330_000.0, memory_rate=45e6),
    "cpu3": CPUProfile(
        name="cpu3",
        description="Intel Xeon @ 3 GHz",
        hash_rate=352_225.0, memory_rate=50e6),
}

#: Table 1 IoT devices: (average hashing rate, hashes done in 400 ms) as
#: published. The 400 ms column is the paper's *measured* value, which
#: differs slightly from rate × 0.4 — both are preserved.
IOT_CATALOG: Dict[str, CPUProfile] = {
    "D1": CPUProfile(
        name="D1",
        description="Raspberry Pi Model B rev 2.0 (700 MHz ARM 11)",
        hash_rate=49_617.0, memory_rate=24e6),
    "D2": CPUProfile(
        name="D2",
        description="Raspberry Pi Zero (1 GHz ARM 11)",
        hash_rate=68_960.0, memory_rate=28e6),
    "D3": CPUProfile(
        name="D3",
        description="Raspberry Pi 2 Model B v1.1 (quad 1.2 GHz Cortex-A53)",
        hash_rate=70_009.0, memory_rate=30e6),
    "D4": CPUProfile(
        name="D4",
        description="Raspberry Pi 3 Model B v1.2 (quad 1.2 GHz BCM2837)",
        hash_rate=74_201.0, memory_rate=32e6),
}

#: The paper's measured hashes-in-400ms column of Table 1, verbatim.
IOT_MEASURED_HASHES_400MS: Dict[str, int] = {
    "D1": 19_901,
    "D2": 26_563,
    "D3": 27_987,
    "D4": 29_732,
}

#: The server used in the evaluation: dual Xeon hexa-core @ 2.2 GHz.
#: §7 reports it performs 10.8 million hash operations per second.
SERVER_CPU = CPUProfile(
    name="server",
    description="HP DL360 G8, dual Intel Xeon hexa-core @ 2.2 GHz",
    hash_rate=10_800_000.0, memory_rate=80e6)


def catalog_w_av(budget: float = DEFAULT_DELAY_BUDGET_SECONDS) -> float:
    """``w_av`` over the Figure 3(a) catalog — 140630 for the 400 ms budget."""
    profiles = [p.to_client_profile() for p in CPU_CATALOG.values()]
    from repro.core.profiling import estimate_w_av

    return estimate_w_av(profiles, budget)
