"""Host models: the server, benign clients, attackers, and their CPUs.

* :mod:`repro.hosts.cpu` — hash-rate profiles of the paper's hardware
  (Figure 3(a) Xeons, Table 1 Raspberry Pis);
* :mod:`repro.hosts.host` — base host: NIC + TCP stack + hash accounting;
* :mod:`repro.hosts.server` — the apache2-like ``gettext/size`` application
  server with an M/M/1 accept-service loop;
* :mod:`repro.hosts.client` — benign clients issuing requests at
  exponentially distributed intervals and solving puzzles;
* :mod:`repro.hosts.attacker` — hping3-like spoofed SYN flooders and
  nping-like connection flooders (solving and non-solving);
* :mod:`repro.hosts.botnet` — fleet construction helpers.
"""

from repro.hosts.cpu import CPU_CATALOG, IOT_CATALOG, CPUProfile
from repro.hosts.host import Host
from repro.hosts.server import AppServer, ServerConfig
from repro.hosts.client import BenignClient, ClientConfig
from repro.hosts.attacker import (
    AttackerConfig,
    ConnectionFlooder,
    SynFlooder,
)
from repro.hosts.botnet import Botnet, build_botnet

__all__ = [
    "CPUProfile",
    "CPU_CATALOG",
    "IOT_CATALOG",
    "Host",
    "AppServer",
    "ServerConfig",
    "BenignClient",
    "ClientConfig",
    "AttackerConfig",
    "SynFlooder",
    "ConnectionFlooder",
    "Botnet",
    "build_botnet",
]
