"""Botnet construction: a fleet of attacker hosts under one switch.

The paper's default botnet is 10 machines at 500 attempts/second each
(5,000 pps aggregate); Experiments 4a/4b sweep per-node rate and fleet
size. ``build_botnet`` wires attacker objects onto already-created hosts;
:class:`Botnet` starts/stops them together and aggregates their stats.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Union

from repro.errors import ExperimentError
from repro.hosts.attacker import (
    AttackerConfig,
    AttackStats,
    ConnectionFlooder,
    SynFlooder,
)
from repro.hosts.host import Host
from repro.metrics.connections import ConnectionTracker

Bot = Union[SynFlooder, ConnectionFlooder]


@dataclass
class Botnet:
    """A started/stopped-together fleet of bots."""

    bots: List[Bot]

    def start(self, delay: float = 0.0, stagger: float = 0.0) -> None:
        """Start every bot; *stagger* spreads starts to avoid phase-locking
        constant-rate floods into synchronized bursts."""
        for i, bot in enumerate(self.bots):
            bot.start(delay + i * stagger)

    def stop(self) -> None:
        for bot in self.bots:
            bot.stop()

    @property
    def size(self) -> int:
        return len(self.bots)

    def aggregate_stats(self) -> AttackStats:
        total = AttackStats()
        for bot in self.bots:
            total.syns_sent += bot.stats.syns_sent
            total.attempts += bot.stats.attempts
            total.pool_stalled += bot.stats.pool_stalled
        return total


def build_botnet(hosts: Sequence[Host], style: str,
                 config: AttackerConfig,
                 tracker: Optional[ConnectionTracker] = None) -> Botnet:
    """Create one bot per host.

    *style* is ``"syn"`` (spoofed SYN flood) or ``"connect"`` (connection
    flood). Each bot gets its own copy of *config*.
    """
    if style not in ("syn", "connect"):
        raise ExperimentError(f"unknown attack style {style!r}")
    bots: List[Bot] = []
    for host in hosts:
        bot_config = replace(config)
        if style == "syn":
            bots.append(SynFlooder(host, bot_config))
        else:
            bots.append(ConnectionFlooder(host, bot_config, tracker))
    return Botnet(bots=bots)
