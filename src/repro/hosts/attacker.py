"""Attacker models (§6): spoofed SYN flooders and connection flooders.

* :class:`SynFlooder` — the hping3 behaviour: raw SYN packets with random
  spoofed sources at a constant rate, never completing handshakes. Targets
  the *listen* queue.
* :class:`ConnectionFlooder` — the nping behaviour: real source address,
  completes the three-way handshake and then goes silent, holding its
  accept-queue/worker slot. Targets the *accept* queue. The ``solve``
  flag selects a patched bot that answers challenges (burning its own CPU —
  which is exactly the rate limiter) versus a stock bot whose plain ACKs a
  protected server ignores.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import SimulationError
from repro.hosts.host import Host
from repro.metrics.connections import ConnectionTracker
from repro.net.addresses import SpoofingPool
from repro.net.packet import (FLAG_ACK, FLAG_SYN, Packet, TCPOptions,
                              mss_options)
from repro.sim.process import PeriodicProcess
from repro.tcp.connection import ClientConnConfig, ClientConnection
from repro.tcp.constants import DEFAULT_MSS


@dataclass
class AttackerConfig:
    """Per-bot attack parameters."""

    server_ip: int = 0
    server_port: int = 80
    rate: float = 500.0              # attempts/second (§6 default)
    solve: bool = False              # answer challenges? (Experiment 5 "SA")
    hold_time: float = 30.0          # abandon "established" zombies after
    #: nping-style blocking socket pool: at most this many unresolved
    #: connection attempts in flight. Against an unprotected server a slot
    #: is held for ~one RTT (full configured rate); against a challenging
    #: server slots are held until :attr:`tool_timeout`, so the *measured*
    #: attack rate falls to ≈ max_pending/tool_timeout per bot — the
    #: Figures 13(a)/14(a) saturation.
    max_pending: int = 150
    #: The tool's per-connection timeout: how long a slot stays blocked on
    #: an attempt whose handshake is not progressing.
    tool_timeout: float = 1.0
    #: Solver instance for solving bots (None → the modelled solver);
    #: must match the server scheme's mode.
    solver: Optional[object] = None
    label: str = "attacker"


@dataclass
class AttackStats:
    syns_sent: int = 0
    attempts: int = 0
    pool_stalled: int = 0            # attempts not made: socket pool full


class SynFlooder:
    """Raw spoofed-SYN generator (no TCP state of its own)."""

    def __init__(self, host: Host, config: AttackerConfig) -> None:
        self.host = host
        self.config = config
        self.stats = AttackStats()
        self._pool = SpoofingPool(host.rng)
        # Self-scheduled firing loop instead of a PeriodicProcess: the
        # wrapper's _fire frame is pure overhead at flood rates, and this
        # bot's action needs none of the process bookkeeping. The
        # schedule call order (action first, reschedule after) matches
        # PeriodicProcess exactly, so event ids and times are unchanged.
        if config.rate <= 0:
            raise SimulationError(
                f"rate must be positive, got {config.rate!r}")
        self._interval = 1.0 / config.rate
        self._running = False
        self._event = None
        # Flyweight SYN pipeline (repro.net.floodpath), resolved lazily
        # on the first fire so the server can register after this bot is
        # built. None = unresolved, False = unavailable (batched path
        # off, or no listener at the target).
        self._fast = None

    def start(self, delay: float = 0.0) -> None:
        if self._running:
            raise SimulationError("process already started")
        self._running = True
        self._event = self.host.engine.schedule(delay, self._fire)

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        if not self._running:
            return
        host = self.host
        rng = host.rng
        grb = rng.getrandbits
        # Inlined SpoofingPool.draw and random.randrange(1024, 65536):
        # both rejection loops consume exactly the same getrandbits draws
        # as the stdlib's _randbelow, so the RNG stream — and every
        # downstream counter — is unchanged while skipping three Python
        # frames per SYN.
        pool = self._pool
        span = pool._span
        bits = pool._span_bits
        value = grb(bits)
        while value >= span:
            value = grb(bits)
        src_ip = pool._base + value
        port = grb(16)
        while port >= 64512:
            port = grb(16)
        seq = grb(32)
        fast = self._fast
        if fast is None:
            fast = host.network.syn_fast_path(
                host, self.config.server_ip, self.config.server_port)
            fast = fast if fast is not None else False
            self._fast = fast
        if fast is not False and fast.send(src_ip, 1024 + port, seq):
            self.stats.syns_sent += 1
        else:
            packet = Packet(
                src_ip=src_ip,
                dst_ip=self.config.server_ip,
                src_port=1024 + port,
                dst_port=self.config.server_port,
                seq=seq,
                flags=FLAG_SYN,
                options=mss_options(DEFAULT_MSS))
            host.send(packet)
            self.stats.syns_sent += 1
        if self._running:
            self._event = host.engine.schedule(self._interval, self._fire)


class ConnectionFlooder:
    """Handshake-completing flood from a real address."""

    def __init__(self, host: Host, config: AttackerConfig,
                 tracker: Optional[ConnectionTracker] = None) -> None:
        self.host = host
        self.config = config
        self.tracker = tracker
        self.stats = AttackStats()
        self._zombies: Dict[ClientConnection, float] = {}
        self._slot_holders: set = set()  # conns occupying a pool slot
        self._process = PeriodicProcess(host.engine, self._fire,
                                        rate=config.rate)
        # A single periodic sweep replaces per-connection reap timers —
        # at flood rates the timers alone would dominate the event heap.
        self._reaper = PeriodicProcess(
            host.engine, self._sweep,
            interval=max(0.5, config.hold_time / 4.0))

    def start(self, delay: float = 0.0) -> None:
        self._process.start(delay)
        self._reaper.start(delay)

    def stop(self) -> None:
        self._process.stop()
        self._reaper.stop()
        for connection in list(self._zombies):
            connection.abort()
        self._zombies.clear()

    @property
    def _pending(self) -> int:
        return len(self._slot_holders)

    def _fire(self) -> None:
        if self._pending >= self.config.max_pending:
            # All of the tool's sockets are blocked mid-handshake (solving
            # or waiting out the tool timeout) — the measured attack rate
            # falls below the configured one (Figures 13a/14a).
            self.stats.pool_stalled += 1
            return
        record = (self.tracker.open(self.config.label)
                  if self.tracker is not None else None)
        kwargs = dict(supports_puzzles=self.config.solve,
                      solve_puzzles=self.config.solve,
                      syn_retries=0)  # flood tools fire and forget
        if self.config.solver is not None:
            kwargs["solver"] = self.config.solver
        conn_config = ClientConnConfig(**kwargs)
        connection = self.host.tcp.connect(
            self.config.server_ip, self.config.server_port, conn_config)
        self.stats.attempts += 1
        self.stats.syns_sent += 1
        self._slot_holders.add(connection)
        self._zombies[connection] = self.host.engine.now
        connection.on_established = lambda conn: self._on_established(
            conn, record)
        connection.on_reset = self._on_resolved
        connection.on_failed = self._on_failed

    def _on_established(self, connection: ClientConnection,
                        record) -> None:
        if record is not None and self.tracker is not None:
            self.tracker.established(
                record, challenged=connection.was_challenged)
        self._slot_holders.discard(connection)
        # Go silent: never send data, keep the server-side slot occupied
        # (§6's nping flood); the tool's own socket slot is free again.

    def _on_resolved(self, connection: ClientConnection) -> None:
        self._zombies.pop(connection, None)
        self._slot_holders.discard(connection)

    def _on_failed(self, connection: ClientConnection,
                   reason: str) -> None:
        self._zombies.pop(connection, None)
        if reason == "challenge-abandoned" and \
                connection in self._slot_holders:
            # The kernel dropped the solve, but the blocking tool socket
            # only notices at its own timeout.
            self.host.engine.schedule(
                self.config.tool_timeout,
                lambda: self._slot_holders.discard(connection))
        else:
            self._slot_holders.discard(connection)

    def _sweep(self) -> None:
        cutoff = self.host.engine.now - self.config.hold_time
        stale = [conn for conn, born in self._zombies.items()
                 if born < cutoff]
        for connection in stale:
            connection.abort()
            del self._zombies[connection]


class SolutionFlooder:
    """A verification-exhaustion attacker (§7, "Solution floods").

    Sends a barrage of ACK packets carrying *bogus* solutions, forcing the
    server to spend ``1 + up-to-k`` hash operations rejecting each. The
    paper's §7 analysis: a server hashing at 10.8 M ops/s would need
    ~5.4 M packets/s of this to saturate — the ablation benchmarks measure
    exactly that trade-off on our simulated server.

    Requires knowing the server's current ``(k, m, l)`` (public — they are
    in every challenge); the solution bytes are random garbage.
    """

    def __init__(self, host: Host, config: AttackerConfig,
                 params=None) -> None:
        from repro.puzzles.params import PuzzleParams

        self.host = host
        self.config = config
        self.params = params if params is not None else PuzzleParams(
            k=2, m=17)
        self.stats = AttackStats()
        self._process = PeriodicProcess(host.engine, self._fire,
                                        rate=config.rate)

    def start(self, delay: float = 0.0) -> None:
        self._process.start(delay)

    def stop(self) -> None:
        self._process.stop()

    def _fire(self) -> None:
        from repro.puzzles.juels import Solution

        rng = self.host.rng
        bogus = Solution(
            params=self.params,
            solutions=[bytes(rng.getrandbits(8) for _ in
                             range(self.params.length_bytes))
                       for _ in range(self.params.k)],
            issued_at_ms=int(self.host.engine.now * 1000) & 0xFFFFFFFF,
        )
        packet = Packet(
            src_ip=self.host.address,
            dst_ip=self.config.server_ip,
            src_port=self.host.rng.randrange(1024, 65536),
            dst_port=self.config.server_port,
            seq=self.host.rng.getrandbits(32),
            flags=FLAG_ACK,
            options=TCPOptions(solution=bogus))
        self.host.send(packet)
        self.stats.syns_sent += 1
        self.stats.attempts += 1
