"""Handshake tracepoints: a ring buffer of timestamped protocol events.

The counters (:mod:`repro.obs.counters`) say *how many*; tracepoints say
*what happened to this flow, in order*. Instrumentation sites emit
:class:`TraceEvent` records (SYN-in → challenge-out → solution-in →
accept/reject) into one bounded :class:`HandshakeTracer` per simulation;
grouping events by flow reconstructs a per-connection timeline — the
in-simulator equivalent of following one 4-tuple through a pcap.

Tracing is **off by default** and every emit site is gated on
:attr:`HandshakeTracer.enabled`, so the disabled cost is one attribute
check per would-be event. The buffer is a ``deque(maxlen=capacity)``:
when full, the oldest events fall off and ``dropped`` counts them.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from repro.errors import SimulationError

#: (remote_ip, remote_port, local_port) — the listener-side flow key.
Flow = Tuple[int, int, int]

#: Default ring capacity: enough for every handshake of a scaled-down
#: scenario run without growing unbounded under a flood.
DEFAULT_CAPACITY = 65536

#: The event vocabulary, in rough lifecycle order. Emit sites may attach
#: free-form detail fields, but the event names come from this set so
#: renderers and tests can pattern-match.
EVENTS = (
    "syn-in",          # SYN arrived at the listener
    "synack-out",      # plain SYN-ACK sent (detail: retrans)
    "challenge-out",   # SYN-ACK carrying a puzzle challenge (detail: k, m)
    "cookie-out",      # SYN-ACK carrying a SYN cookie
    "ack-in",          # completing ACK arrived (detail: solution, payload)
    "accept",          # connection installed (detail: path)
    "reject",          # completion refused, sender learns via RST/silence
    "ignore",          # completion silently ignored (deception path)
    "drop",            # SYN dropped (detail: reason)
    "expire",          # half-open reaped after retry exhaustion
    "overload-state",  # watchdog transition (detail: src, dst, occupancy)
)


class TraceEvent:
    """One timestamped tracepoint hit."""

    __slots__ = ("t", "host", "event", "flow", "detail")

    def __init__(self, t: float, host: str, event: str, flow: Flow,
                 detail: Optional[Dict[str, object]] = None) -> None:
        self.t = t
        self.host = host
        self.event = event
        self.flow = flow
        self.detail = detail if detail is not None else {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TraceEvent t={self.t:.6f} {self.event} "
                f"flow={self.flow}>")


class HandshakeTracer:
    """Bounded, per-simulation trace buffer for handshake events."""

    __slots__ = ("enabled", "_buffer", "emitted", "dropped")

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 enabled: bool = False) -> None:
        if capacity < 1:
            raise SimulationError(
                f"trace capacity must be >= 1, got {capacity}")
        self.enabled = enabled
        self._buffer: Deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0
        self.dropped = 0

    @property
    def capacity(self) -> int:
        return self._buffer.maxlen or 0

    def configure(self, capacity: Optional[int] = None,
                  enabled: Optional[bool] = None) -> None:
        """Resize and/or toggle the tracer; resizing keeps newest events."""
        if capacity is not None and capacity != self.capacity:
            if capacity < 1:
                raise SimulationError(
                    f"trace capacity must be >= 1, got {capacity}")
            self._buffer = deque(self._buffer, maxlen=capacity)
        if enabled is not None:
            self.enabled = enabled

    def __len__(self) -> int:
        return len(self._buffer)

    # ------------------------------------------------------------------
    # Emission (call sites gate on `tracer.enabled` themselves; emit
    # re-checks so an unguarded call is still safe)
    # ------------------------------------------------------------------
    def emit(self, t: float, host: str, event: str, flow: Flow,
             **detail: object) -> None:
        if not self.enabled:
            return
        if len(self._buffer) == self._buffer.maxlen:
            self.dropped += 1
        self._buffer.append(TraceEvent(t, host, event, flow, detail))
        self.emitted += 1

    def clear(self) -> None:
        self._buffer.clear()
        self.emitted = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def events(self, flow: Optional[Flow] = None) -> Iterator[TraceEvent]:
        """Events in emission order, optionally filtered to one flow."""
        for event in self._buffer:
            if flow is None or event.flow == flow:
                yield event

    def timelines(self) -> "OrderedDict[Flow, List[TraceEvent]]":
        """Events grouped per flow, flows ordered by first appearance."""
        grouped: "OrderedDict[Flow, List[TraceEvent]]" = OrderedDict()
        for event in self._buffer:
            grouped.setdefault(event.flow, []).append(event)
        return grouped

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    @staticmethod
    def _format_flow(flow: Flow) -> str:
        from repro.net.addresses import format_ip

        remote_ip, remote_port, local_port = flow
        return f"{format_ip(remote_ip)}:{remote_port} -> :{local_port}"

    @staticmethod
    def _format_detail(detail: Dict[str, object]) -> str:
        if not detail:
            return ""
        inner = " ".join(f"{k}={detail[k]}" for k in sorted(detail))
        return f"  [{inner}]"

    def render_timeline(self, flow: Flow) -> str:
        """One flow's handshake as an indented, delta-timed timeline."""
        events = list(self.events(flow))
        if not events:
            return f"{self._format_flow(flow)}: no trace events"
        t0 = events[0].t
        lines = [self._format_flow(flow) + ":"]
        for event in events:
            delta_us = (event.t - t0) * 1e6
            lines.append(f"    t={event.t:11.6f}s  (+{delta_us:9.1f}us)  "
                         f"{event.event:<13s}{self._format_detail(event.detail)}")
        return "\n".join(lines)

    def render(self, max_flows: Optional[int] = None) -> str:
        """Timelines for every traced flow (or the first *max_flows*)."""
        sections = []
        for i, flow in enumerate(self.timelines()):
            if max_flows is not None and i >= max_flows:
                sections.append(f"... ({len(self.timelines()) - max_flows} "
                                f"more flows)")
                break
            sections.append(self.render_timeline(flow))
        if not sections:
            return "(no trace events recorded)"
        return "\n".join(sections)
