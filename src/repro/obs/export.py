"""Exporters: JSON-lines and Prometheus-style text exposition.

Two consumers, two formats:

* **JSON-lines** — one self-describing object per line (``type`` is
  ``counter`` / ``trace`` / ``span`` / ``hist`` / ``engine`` /
  ``profile``), for post-run analysis pipelines. All output is
  deterministically ordered and ``sort_keys``-serialised, so two
  identical runs produce byte-identical exports (the determinism tests
  rely on this).
* **Prometheus text exposition** — ``repro_mib_total{host=...,counter=...}``
  counter families plus ``repro_duration_seconds{name=...}`` summary
  families (histogram quantiles), with ``# HELP``/``# TYPE`` headers,
  for scraping a long-running simulation service.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, Optional, TextIO, Union

from repro.obs.counters import CATALOGUE, CounterRegistry
from repro.obs.hist import (
    QUANTILE_LABELS,
    Histogram,
    HistogramRegistry,
)
from repro.obs.profile import EngineProfiler
from repro.obs.trace import HandshakeTracer


def _dumps(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# JSON-lines
# ----------------------------------------------------------------------
def counter_lines(registry: CounterRegistry) -> Iterator[str]:
    for scope_name, counters in registry.snapshot().items():
        for counter, value in counters.items():
            yield _dumps({"type": "counter", "host": scope_name,
                          "counter": counter, "value": value})


def trace_lines(tracer: HandshakeTracer) -> Iterator[str]:
    for event in tracer.events():
        yield _dumps({"type": "trace", "t": event.t, "host": event.host,
                      "event": event.event, "flow": list(event.flow),
                      "detail": event.detail})


def engine_lines(engine) -> Iterator[str]:
    """One line of engine statistics (``engine.stats()``)."""
    stats = dict(engine.stats())
    stats["type"] = "engine"
    yield _dumps(stats)


def profile_lines(profiler: EngineProfiler) -> Iterator[str]:
    for kind, entry in profiler.snapshot().items():
        yield _dumps({"type": "profile", "kind": kind,
                      "count": entry["count"],
                      "wall_seconds": entry["wall_seconds"]})


def _hist_map(hists: Union[HistogramRegistry, Dict[str, Histogram]]
              ) -> Dict[str, Histogram]:
    if isinstance(hists, HistogramRegistry):
        return hists.as_dict()
    return dict(hists)


def hist_lines(hists: Union[HistogramRegistry, Dict[str, Histogram]]
               ) -> Iterator[str]:
    """One ``type: "hist"`` line per histogram, name-sorted."""
    table = _hist_map(hists)
    for name in sorted(table):
        yield _dumps({"type": "hist", **table[name].as_payload()})


def _series_map(series) -> Dict[str, object]:
    from repro.obs.timeseries import SeriesRegistry

    if isinstance(series, SeriesRegistry):
        return series.as_dict()
    return dict(series)


def series_lines(series) -> Iterator[str]:
    """One ``type: "series"`` line per telemetry series, name-sorted.

    Accepts a :class:`~repro.obs.timeseries.SeriesRegistry` or a plain
    name → :class:`~repro.obs.timeseries.TimeSeries` dict.
    """
    table = _series_map(series)
    for name in sorted(table):
        yield _dumps({"type": "series", **table[name].as_payload()})


def counters_jsonl(registry: CounterRegistry) -> str:
    return "".join(line + "\n" for line in counter_lines(registry))


def trace_jsonl(tracer: HandshakeTracer) -> str:
    return "".join(line + "\n" for line in trace_lines(tracer))


def write_jsonl(stream: TextIO, registry: Optional[CounterRegistry] = None,
                tracer: Optional[HandshakeTracer] = None,
                engine=None,
                profiler: Optional[EngineProfiler] = None,
                hists=None, spans=None, series=None) -> int:
    """Write every provided source to *stream*; returns lines written."""
    from repro.obs.spans import span_lines

    count = 0
    if registry is not None:
        for line in counter_lines(registry):
            stream.write(line + "\n")
            count += 1
    if tracer is not None:
        for line in trace_lines(tracer):
            stream.write(line + "\n")
            count += 1
    if spans is not None:
        for line in span_lines(spans):
            stream.write(line + "\n")
            count += 1
    if hists is not None:
        for line in hist_lines(hists):
            stream.write(line + "\n")
            count += 1
    if series is not None:
        for line in series_lines(series):
            stream.write(line + "\n")
            count += 1
    if engine is not None:
        for line in engine_lines(engine):
            stream.write(line + "\n")
            count += 1
    if profiler is not None:
        for line in profile_lines(profiler):
            stream.write(line + "\n")
            count += 1
        for line in hist_lines({profiler.hist.name: profiler.hist}):
            stream.write(line + "\n")
            count += 1
    return count


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace(
        "\n", "\\n")


def _summary_lines(lines, table: Dict[str, Histogram]) -> None:
    """Append one Prometheus summary family covering *table*."""
    lines.append("# HELP repro_duration_seconds log-bucketed duration "
                 "histogram quantiles (see repro.obs.hist.CATALOGUE)")
    lines.append("# TYPE repro_duration_seconds summary")
    for name in sorted(table):
        hist = table[name]
        label = _escape_label(name)
        if hist.count:
            for qlabel, q in QUANTILE_LABELS:
                lines.append(
                    f'repro_duration_seconds{{name="{label}",'
                    f'quantile="{q}"}} {hist.quantile(q)}')
        lines.append(f'repro_duration_seconds_sum{{name="{label}"}} '
                     f'{hist.total}')
        lines.append(f'repro_duration_seconds_count{{name="{label}"}} '
                     f'{hist.count}')


def _series_gauge_lines(lines, table) -> None:
    """Append one gauge family with each series' latest sample."""
    lines.append("# HELP repro_series_value latest streaming-telemetry "
                 "sample per series (see repro.obs.timeseries)")
    lines.append("# TYPE repro_series_value gauge")
    for name in sorted(table):
        series = table[name]
        samples = series.samples()
        if not samples:
            continue
        t, value = samples[-1]
        label = _escape_label(name)
        lines.append(f'repro_series_value{{name="{label}",'
                     f'kind="{_escape_label(series.kind)}"}} {value}')


def prometheus_text(registry: Optional[CounterRegistry] = None,
                    engine=None,
                    profiler: Optional[EngineProfiler] = None,
                    hists=None, series=None) -> str:
    """Render the registry (and optional engine/profiler/histograms) as
    exposition text. Counter HELP strings come from the catalogue."""
    lines = []
    if registry is not None:
        lines.append("# HELP repro_mib_total SNMP-style protocol counter "
                     "(see repro.obs.counters.CATALOGUE)")
        lines.append("# TYPE repro_mib_total counter")
        for scope_name, counters in registry.snapshot().items():
            host = _escape_label(scope_name)
            for counter, value in counters.items():
                name = _escape_label(counter)
                lines.append(f'repro_mib_total{{host="{host}",'
                             f'counter="{name}"}} {value}')
    if engine is not None:
        stats = engine.stats()
        gauges = {
            "repro_engine_events_processed_total":
                ("counter", "callbacks executed", "events_processed"),
            "repro_engine_events_cancelled_total":
                ("counter", "events cancelled before firing",
                 "events_cancelled"),
            "repro_engine_heap_compactions_total":
                ("counter", "lazy-deletion heap compactions",
                 "compactions"),
            "repro_engine_heap_high_water":
                ("gauge", "largest heap size observed", "heap_high_water"),
            "repro_engine_pending_events":
                ("gauge", "heap entries still pending", "pending"),
            "repro_engine_sim_seconds":
                ("gauge", "simulation clock", "sim_seconds"),
            "repro_engine_wall_seconds":
                ("gauge", "wall time spent inside run()", "wall_seconds"),
            "repro_engine_sim_wall_ratio":
                ("gauge", "simulated seconds per wall second",
                 "sim_wall_ratio"),
        }
        for metric, (mtype, help_text, key) in gauges.items():
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} {mtype}")
            lines.append(f"{metric} {stats[key]}")
    if profiler is not None:
        lines.append("# HELP repro_engine_callback_wall_seconds_total "
                     "wall time spent in each callback kind")
        lines.append("# TYPE repro_engine_callback_wall_seconds_total "
                     "counter")
        lines.append("# HELP repro_engine_callback_calls_total dispatches "
                     "of each callback kind")
        lines.append("# TYPE repro_engine_callback_calls_total counter")
        for kind, entry in profiler.snapshot().items():
            label = _escape_label(kind)
            lines.append(f'repro_engine_callback_wall_seconds_total'
                         f'{{kind="{label}"}} {entry["wall_seconds"]}')
            lines.append(f'repro_engine_callback_calls_total'
                         f'{{kind="{label}"}} {entry["count"]}')
    hist_table: Dict[str, Histogram] = {}
    if hists is not None:
        hist_table.update(_hist_map(hists))
    if profiler is not None and profiler.hist.count:
        hist_table.setdefault(profiler.hist.name, profiler.hist)
    if hist_table:
        _summary_lines(lines, hist_table)
    if series is not None:
        table = _series_map(series)
        if table:
            _series_gauge_lines(lines, table)
    return "\n".join(lines) + "\n" if lines else ""


def catalogue_text() -> str:
    """The counter catalogue as documentation text (used by the docs)."""
    width = max(len(name) for name in CATALOGUE)
    return "\n".join(f"{name:<{width}s}  {desc}"
                     for name, desc in sorted(CATALOGUE.items()))
