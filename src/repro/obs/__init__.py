"""``repro.obs`` — the kernel-style observability layer.

Three pillars, all zero-cost when left at their defaults:

* **Counters** (:mod:`repro.obs.counters`) — per-host SNMP/MIB-style
  monotonic counters (``SynsRecv``, ``SynCookiesSent``, ``PuzzlesVerified``,
  …) incremented by the TCP stack, the listener's defense paths, and the
  puzzle verification code. Always on; an increment is one dict update.
* **Tracepoints** (:mod:`repro.obs.trace`) — a bounded ring buffer of
  timestamped handshake events that reconstructs per-connection timelines.
  Off by default; every emit site gates on ``tracer.enabled``. Elevated
  into structured per-connection spans by :mod:`repro.obs.spans`.
* **Histograms** (:mod:`repro.obs.hist`) — log-bucketed duration
  histograms (handshake latency, puzzle solve time, accept-queue wait)
  with fixed boundaries so they merge across sweep workers. Always on;
  a record is one dict lookup plus a ``log10``.
* **Profiling** (:mod:`repro.obs.profile`) — per-callback-kind wall-time
  accounting inside the simulation engine. Off unless a profiler is
  attached.

One :class:`Observability` hub exists per engine (``hub_for(engine)``
creates it on demand and caches it on the engine), so every host built on
the same engine shares one registry and one tracer without any extra
plumbing through constructors.
"""

from __future__ import annotations

from repro.obs.counters import (
    CATALOGUE,
    DROP_CAUSES,
    ESTABLISHED_COUNTERS,
    CounterRegistry,
    CounterScope,
    drop_attribution,
    established_total,
)
from repro.obs.hist import Histogram, HistogramRegistry
from repro.obs.perf import (
    AttributionProfiler,
    callback_module,
    collapsed_stacks,
    component_of,
    component_of_frame,
    heap_churn,
    make_profiler,
    write_flamegraph,
)
from repro.obs.profile import EngineProfiler, callback_kind
from repro.obs.sketch import CountMinSketch, SourceAttribution, SpaceSaving
from repro.obs.spans import HandshakeSpan, SpanPhase, build_spans
from repro.obs.trace import DEFAULT_CAPACITY, HandshakeTracer, TraceEvent

__all__ = [
    "AttributionProfiler",
    "CATALOGUE",
    "DROP_CAUSES",
    "ESTABLISHED_COUNTERS",
    "CountMinSketch",
    "CounterRegistry",
    "CounterScope",
    "DEFAULT_CAPACITY",
    "EngineProfiler",
    "HandshakeSpan",
    "HandshakeTracer",
    "Histogram",
    "HistogramRegistry",
    "Observability",
    "SeriesRegistry",
    "SimSampler",
    "SourceAttribution",
    "SpaceSaving",
    "SpanPhase",
    "TelemetrySpec",
    "TimeSeries",
    "TraceEvent",
    "build_spans",
    "callback_kind",
    "callback_module",
    "chrome_counter_events",
    "collapsed_stacks",
    "component_of",
    "component_of_frame",
    "drop_attribution",
    "established_total",
    "heap_churn",
    "hub_for",
    "make_profiler",
    "series_payload",
    "write_flamegraph",
]


class Observability:
    """Counters + tracer + histograms for one simulation."""

    def __init__(self, trace_capacity: int = DEFAULT_CAPACITY,
                 tracing: bool = False) -> None:
        self.counters = CounterRegistry()
        self.tracer = HandshakeTracer(capacity=trace_capacity,
                                      enabled=tracing)
        self.hist = HistogramRegistry()


def hub_for(engine) -> Observability:
    """The engine's observability hub, created on first access.

    Stored as ``engine.obs`` — the engine itself stays ignorant of what
    the hub contains (no import from :mod:`repro.sim`).
    """
    hub = getattr(engine, "obs", None)
    if hub is None:
        hub = Observability()
        engine.obs = hub
    return hub


# Imported last: repro.obs.timeseries pulls in repro.metrics, whose
# modules import ``hub_for`` from this package — the name must already
# be bound here when that import re-enters mid-initialisation.
from repro.obs.timeseries import (  # noqa: E402
    SeriesRegistry,
    SimSampler,
    TelemetrySpec,
    TimeSeries,
    chrome_counter_events,
    series_payload,
)
