"""Log-bucketed latency histograms: mergeable, picklable, quantile-ready.

The paper's evaluation is about *latency distributions under load* —
Figure 6's connection-time CDFs, Figure 12's boxplots — so the stack
records durations into HDR-style histograms with **fixed** logarithmic
bucket boundaries. Fixed boundaries are the load-bearing property:

* two histograms of the same layout merge by adding bucket counts, so a
  parallel sweep's per-worker histograms combine into exactly what a
  serial run would have produced (order-independent, associative);
* a histogram is plain data (no engine reference), so it pickles into
  :class:`~repro.experiments.summary.ScenarioSummary` and crosses
  process boundaries / the on-disk result cache untouched;
* quantiles (p50/p95/p99/p99.9) come from a cumulative walk with
  geometric interpolation inside the hit bucket — bounded relative error
  of one bucket width (~12% at 20 buckets/decade), which is plenty for
  regression gating.

The default layout spans 1 µs to 10 ks in 200 buckets (10 decades × 20
buckets/decade). Durations below the lowest bound clamp into bucket 0,
above the highest into the last bucket; the exact ``min``/``max``/``sum``
are tracked alongside, so clamping never corrupts the summary stats.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import SimulationError

#: Default layout: 1 µs lower bound, 10 decades, 20 buckets per decade.
DEFAULT_LOWEST = 1e-6
DEFAULT_DECADES = 10
DEFAULT_BUCKETS_PER_DECADE = 20

#: The quantiles every exporter/manifests surface, label → q.
QUANTILE_LABELS: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
    ("p99.9", 0.999),
)

#: What each histogram family measures (base name, before any ``.label``
#: suffix). HELP strings for the Prometheus exposition and the docs.
CATALOGUE = {
    "handshake_latency":
        "connection-establishment time, SYN sent to ESTABLISHED, as seen "
        "by the initiating host (seconds; per tracker label)",
    "puzzle_solve":
        "client-side puzzle solve time, challenge received to solution "
        "sent (seconds)",
    "accept_wait":
        "time an established connection waits in the accept queue before "
        "the application accept()s it (seconds)",
    "callback_wall":
        "wall-clock seconds per dispatched engine callback "
        "(profiler-gated; not deterministic)",
    "micro_op":
        "wall-clock seconds per micro-benchmark operation, one sample "
        "per timed repeat (same-machine comparisons only)",
}

#: Histogram families measuring *wall* time — excluded from deterministic
#: payload comparisons (they legitimately differ between identical runs).
WALL_FAMILIES = frozenset({"callback_wall"})


def family(name: str) -> str:
    """The catalogue family of a histogram name (strips ``.label``)."""
    return name.split(".", 1)[0]


def describe(name: str) -> str:
    """Catalogue description for a histogram name, or the name itself."""
    return CATALOGUE.get(family(name), name)


class Histogram:
    """One log-bucketed duration histogram with exact count/sum/min/max."""

    __slots__ = ("name", "lowest", "buckets_per_decade", "n_buckets",
                 "count", "total", "minimum", "maximum", "counts")

    def __init__(self, name: str = "",
                 lowest: float = DEFAULT_LOWEST,
                 buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
                 decades: int = DEFAULT_DECADES) -> None:
        if lowest <= 0.0:
            raise SimulationError(
                f"histogram lowest bound must be > 0, got {lowest}")
        if buckets_per_decade < 1 or decades < 1:
            raise SimulationError(
                "histogram needs >= 1 bucket per decade and >= 1 decade")
        self.name = name
        self.lowest = float(lowest)
        self.buckets_per_decade = int(buckets_per_decade)
        self.n_buckets = int(buckets_per_decade) * int(decades)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        # Sparse index → count map: scenarios touch a handful of decades,
        # and sparse merges/pickles stay proportional to what was hit.
        self.counts: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    @property
    def layout(self) -> Tuple[float, int, int]:
        """(lowest, buckets_per_decade, n_buckets) — merge compatibility."""
        return (self.lowest, self.buckets_per_decade, self.n_buckets)

    def bucket_index(self, value: float) -> int:
        """Bucket for *value*; out-of-range values clamp to the ends."""
        if value <= self.lowest:
            return 0
        index = int(math.log10(value / self.lowest)
                    * self.buckets_per_decade)
        return index if index < self.n_buckets else self.n_buckets - 1

    def bucket_bounds(self, index: int) -> Tuple[float, float]:
        """(lower, upper) value bounds of bucket *index*."""
        lower = self.lowest * 10.0 ** (index / self.buckets_per_decade)
        upper = self.lowest * 10.0 ** ((index + 1)
                                       / self.buckets_per_decade)
        return lower, upper

    # ------------------------------------------------------------------
    # Recording and merging
    # ------------------------------------------------------------------
    def record(self, value: float, n: int = 1) -> None:
        """Record *value* (seconds, >= 0) *n* times."""
        if value < 0.0:
            raise SimulationError(
                f"cannot record negative duration {value} into "
                f"histogram {self.name!r}")
        index = self.bucket_index(value)
        self.counts[index] = self.counts.get(index, 0) + n
        self.count += n
        self.total += value * n
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold *other* into this histogram; layouts must match."""
        if other.layout != self.layout:
            raise SimulationError(
                f"cannot merge histograms with layouts {self.layout} "
                f"and {other.layout}")
        for index, n in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        if other.count:
            self.minimum = min(self.minimum, other.minimum)
            self.maximum = max(self.maximum, other.maximum)
        return self

    def copy(self) -> "Histogram":
        decades = self.n_buckets // self.buckets_per_decade
        clone = Histogram(self.name, lowest=self.lowest,
                          buckets_per_decade=self.buckets_per_decade,
                          decades=decades)
        return clone.merge(self)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Value at quantile *q* in [0, 1]; NaN when empty.

        Cumulative bucket walk, geometric interpolation inside the hit
        bucket (matching the log spacing), clamped to the exact observed
        [min, max] so the ends are never off by a bucket width.
        """
        if not 0.0 <= q <= 1.0:
            raise SimulationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        if rank <= 1.0:
            return self.minimum
        cumulative = 0
        for index in sorted(self.counts):
            bucket_count = self.counts[index]
            cumulative += bucket_count
            if cumulative >= rank:
                lower, upper = self.bucket_bounds(index)
                fraction = 1.0 - (cumulative - rank) / bucket_count
                value = lower * (upper / lower) ** fraction
                return min(max(value, self.minimum), self.maximum)
        return self.maximum

    def quantiles(self) -> Dict[str, float]:
        """The exporters' standard quantile set (NaN-valued when empty)."""
        return {label: self.quantile(q) for label, q in QUANTILE_LABELS}

    def as_payload(self) -> Dict[str, object]:
        """JSON-friendly snapshot; empty histograms use null, not NaN."""
        empty = self.count == 0
        return {
            "name": self.name,
            "count": self.count,
            "sum": self.total,
            "min": None if empty else self.minimum,
            "max": None if empty else self.maximum,
            "mean": None if empty else self.mean,
            "quantiles": {
                label: (None if empty else self.quantile(q))
                for label, q in QUANTILE_LABELS
            },
            "buckets": {str(index): self.counts[index]
                        for index in sorted(self.counts)},
            "layout": {
                "lowest": self.lowest,
                "buckets_per_decade": self.buckets_per_decade,
                "n_buckets": self.n_buckets,
            },
        }

    snapshot = as_payload

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "Histogram":
        """Rebuild a histogram from :meth:`as_payload` output."""
        layout = payload.get("layout") or {}
        buckets_per_decade = int(layout.get(
            "buckets_per_decade", DEFAULT_BUCKETS_PER_DECADE))
        n_buckets = int(layout.get(
            "n_buckets", buckets_per_decade * DEFAULT_DECADES))
        hist = cls(str(payload.get("name", "")),
                   lowest=float(layout.get("lowest", DEFAULT_LOWEST)),
                   buckets_per_decade=buckets_per_decade,
                   decades=max(1, n_buckets // buckets_per_decade))
        for index, count in (payload.get("buckets") or {}).items():
            hist.counts[int(index)] = int(count)
        hist.count = int(payload.get("count", 0))
        hist.total = float(payload.get("sum", 0.0))
        if hist.count:
            hist.minimum = float(payload["min"])
            hist.maximum = float(payload["max"])
        return hist

    def render(self) -> str:
        """One human line: count, mean and the standard quantiles."""
        if self.count == 0:
            return f"{self.name}: (empty)"
        parts = [f"n={self.count}", f"mean={self.mean:.6g}s"]
        parts += [f"{label}={self.quantile(q):.6g}s"
                  for label, q in QUANTILE_LABELS]
        parts.append(f"max={self.maximum:.6g}s")
        return f"{self.name}: " + " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Histogram {self.name!r} n={self.count}>"


class HistogramRegistry:
    """Name → :class:`Histogram` map shared by one simulation's hosts.

    Lives on the :class:`~repro.obs.Observability` hub (``hub.hist``), so
    every emit site reaches the same registry via ``host.obs.hist``.
    Always on — a record is one dict lookup plus one ``log10``.
    """

    def __init__(self) -> None:
        self._hists: Dict[str, Histogram] = {}

    def hist(self, name: str) -> Histogram:
        """The named histogram, created on first use."""
        hist = self._hists.get(name)
        if hist is None:
            hist = Histogram(name)
            self._hists[name] = hist
        return hist

    def get(self, name: str) -> Optional[Histogram]:
        return self._hists.get(name)

    def record(self, name: str, value: float, n: int = 1) -> None:
        """Record into the named histogram (the hot-path entry point)."""
        self.hist(name).record(value, n)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._hists)

    def __contains__(self, name: str) -> bool:
        return name in self._hists

    def names(self) -> List[str]:
        return sorted(self._hists)

    def histograms(self) -> Iterator[Histogram]:
        """Histograms in name order."""
        for name in self.names():
            yield self._hists[name]

    def as_dict(self) -> Dict[str, Histogram]:
        """A shallow copy of the name → histogram map (for summaries)."""
        return dict(self._hists)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Name-sorted JSON-friendly payloads of every histogram."""
        return {name: self._hists[name].as_payload()
                for name in self.names()}

    def merge(self, other) -> "HistogramRegistry":
        """Fold another registry (or name → Histogram dict) into this one.

        Incoming histograms are copied, never aliased, so merging a
        worker's summary cannot mutate the worker's data.
        """
        source = other.as_dict() if isinstance(other, HistogramRegistry) \
            else dict(other)
        for name in sorted(source):
            hist = source[name]
            mine = self._hists.get(name)
            if mine is None:
                self._hists[name] = hist.copy()
            else:
                mine.merge(hist)
        return self

    def render(self) -> str:
        """One quantile line per histogram, name-sorted."""
        if not self._hists:
            return "(no histograms recorded)"
        return "\n".join(hist.render() for hist in self.histograms())
