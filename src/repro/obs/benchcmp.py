"""The benchmark regression gate: diff two ``BENCH_*.json`` manifest sets.

PR 1 made benchmark runs leave machine-readable manifests behind
(counters, engine statistics, runner accounting, and — since the
histogram layer — latency quantiles). This module closes the loop:
``tcp-puzzles bench-compare <baseline-dir> <current-dir>`` loads both
manifest sets, compares them metric by metric inside configurable
tolerance bands, and exits non-zero when anything regressed, so CI can
gate on the perf trajectory instead of writing it append-only.

What is compared, and how:

* **counters** — protocol behaviour; same config + seed must reproduce
  them, so the default tolerance is exact (any drift in either direction
  is a behaviour change);
* **perf** — direction-aware: ``wall_seconds`` up, or
  ``events_per_second`` / ``sim_wall_ratio`` down, beyond the tolerance
  is a regression; improvements are reported as notes;
* **latency histograms** (top-level and inside the ``runner`` block) —
  quantile *increases* beyond the tolerance are regressions; counts are
  held to the counter tolerance (deterministic sim-time data). Wall-time
  families (``callback_wall``) are skipped — they legitimately differ
  between identical runs.
* **telemetry series** (the ``timeseries`` block) — deterministic like
  counters: sample-count or mass drift is a behaviour change.

One-sided entries are never silently skipped: a metric, histogram, or
series present only in the baseline is reported as lost coverage (a
regression); one present only in the current run is reported as a note.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ExperimentError
from repro.obs.hist import QUANTILE_LABELS, WALL_FAMILIES, family

#: Manifest stems never compared (the session roll-up lists file names,
#: not measurements).
SKIPPED_MANIFESTS = frozenset({"session"})

#: perf-block keys → direction (+1: higher is worse, -1: lower is worse).
PERF_DIRECTIONS: Tuple[Tuple[str, int], ...] = (
    ("wall_seconds", +1),
    ("events_per_second", -1),
    ("sim_wall_ratio", -1),
)


@dataclass(frozen=True)
class Tolerance:
    """Relative tolerance bands for one comparison run."""

    counters: float = 0.0     # exact: counters are deterministic
    perf: float = 0.30        # wall-clock noise allowance
    quantile: float = 0.25    # latency quantile drift allowance


@dataclass(frozen=True)
class Finding:
    """One compared metric that moved."""

    manifest: str
    metric: str
    baseline: Optional[float]
    current: Optional[float]
    severity: str             # "regression" | "note"
    message: str

    def render(self) -> str:
        marker = "FAIL" if self.severity == "regression" else "note"
        return (f"[{marker}] {self.manifest}: {self.metric} — "
                f"{self.message}")


@dataclass
class CompareReport:
    """Everything one bench-compare run decided."""

    baseline_dir: str
    current_dir: str
    manifests: List[str]
    findings: List[Finding]

    @property
    def regressions(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "regression"]

    @property
    def passed(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [f"bench-compare: {len(self.manifests)} manifest(s) "
                 f"({', '.join(self.manifests) or 'none'})"]
        for finding in self.findings:
            lines.append("  " + finding.render())
        verdict = "PASS" if self.passed else \
            f"FAIL ({len(self.regressions)} regression(s))"
        lines.append(f"bench-compare: {verdict}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def load_manifests(directory,
                   prefix: Optional[str] = None) -> Dict[str, dict]:
    """``BENCH_<name>.json`` bodies keyed by name, roll-ups skipped.

    With *prefix*, only manifests whose name starts with it load —
    ``tcp-puzzles perf compare`` uses ``prefix="micro_"`` to gate the
    micro-benchmark suite in isolation.
    """
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        raise ExperimentError(
            f"manifest directory {directory} does not exist")
    manifests: Dict[str, dict] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        if name in SKIPPED_MANIFESTS:
            continue
        if prefix is not None and not name.startswith(prefix):
            continue
        try:
            manifests[name] = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ExperimentError(f"manifest {path} is not valid JSON: "
                                  f"{exc}") from exc
    return manifests


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def _relative(baseline: float, current: float) -> float:
    if baseline == 0.0:
        return 0.0 if current == 0.0 else float("inf")
    return (current - baseline) / abs(baseline)


def _number(value) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _compare_counters(name: str, base: dict, current: dict,
                      tolerance: Tolerance,
                      findings: List[Finding]) -> None:
    base_hosts = base.get("counters") or {}
    cur_hosts = current.get("counters") or {}
    for host in sorted(set(base_hosts) | set(cur_hosts)):
        base_scope = base_hosts.get(host) or {}
        cur_scope = cur_hosts.get(host) or {}
        for counter in sorted(set(base_scope) | set(cur_scope)):
            b = float(base_scope.get(counter, 0))
            c = float(cur_scope.get(counter, 0))
            if b == c:
                continue
            drift = _relative(b, c)
            if abs(drift) > tolerance.counters:
                findings.append(Finding(
                    manifest=name,
                    metric=f"counters.{host}.{counter}",
                    baseline=b, current=c, severity="regression",
                    message=f"{b:g} -> {c:g} ({drift:+.1%}), beyond "
                            f"counter tolerance {tolerance.counters:.1%}"))


def _compare_perf(name: str, base: dict, current: dict,
                  tolerance: Tolerance,
                  findings: List[Finding]) -> None:
    base_perf = base.get("perf") or {}
    cur_perf = current.get("perf") or {}
    for key, direction in PERF_DIRECTIONS:
        b = _number(base_perf.get(key))
        c = _number(cur_perf.get(key))
        if b is not None and c is None:
            findings.append(Finding(
                manifest=name, metric=f"perf.{key}",
                baseline=b, current=None, severity="regression",
                message="present in baseline but missing from current "
                        "manifest (lost perf coverage)"))
            continue
        if b is None and c is not None:
            findings.append(Finding(
                manifest=name, metric=f"perf.{key}",
                baseline=None, current=c, severity="note",
                message="new perf metric (no baseline to compare "
                        "against)"))
            continue
        if b is None or c is None or b <= 0.0:
            continue
        worse = _relative(b, c) * direction
        if worse > tolerance.perf:
            findings.append(Finding(
                manifest=name, metric=f"perf.{key}",
                baseline=b, current=c, severity="regression",
                message=f"{b:g} -> {c:g}, {worse:+.1%} worse than "
                        f"baseline (tolerance {tolerance.perf:.1%})"))
        elif worse < -tolerance.perf:
            findings.append(Finding(
                manifest=name, metric=f"perf.{key}",
                baseline=b, current=c, severity="note",
                message=f"{b:g} -> {c:g}, improved {-worse:.1%}"))


def _compare_histograms(name: str, prefix: str, base: dict, current: dict,
                        tolerance: Tolerance,
                        findings: List[Finding]) -> None:
    base_hists = base or {}
    cur_hists = current or {}
    for hist_name in sorted(set(base_hists) | set(cur_hists)):
        if family(hist_name) in WALL_FAMILIES:
            continue
        if hist_name not in cur_hists:
            findings.append(Finding(
                manifest=name, metric=f"{prefix}.{hist_name}",
                baseline=None, current=None, severity="regression",
                message="histogram present in baseline but missing from "
                        "current manifest (lost latency coverage)"))
            continue
        if hist_name not in base_hists:
            findings.append(Finding(
                manifest=name, metric=f"{prefix}.{hist_name}",
                baseline=None, current=None, severity="note",
                message="new histogram (no baseline to compare "
                        "against)"))
            continue
        b_hist = base_hists[hist_name] or {}
        c_hist = cur_hists[hist_name] or {}
        b_count = _number(b_hist.get("count")) or 0.0
        c_count = _number(c_hist.get("count")) or 0.0
        if b_count != c_count and \
                abs(_relative(b_count, c_count)) > tolerance.counters:
            findings.append(Finding(
                manifest=name,
                metric=f"{prefix}.{hist_name}.count",
                baseline=b_count, current=c_count,
                severity="regression",
                message=f"sample count {b_count:g} -> {c_count:g} "
                        f"(deterministic data; behaviour changed)"))
        b_q = b_hist.get("quantiles") or {}
        c_q = c_hist.get("quantiles") or {}
        for label, _q in QUANTILE_LABELS:
            b = _number(b_q.get(label))
            c = _number(c_q.get(label))
            if b is None or c is None or b <= 0.0:
                continue
            drift = _relative(b, c)
            if drift > tolerance.quantile:
                findings.append(Finding(
                    manifest=name,
                    metric=f"{prefix}.{hist_name}.{label}",
                    baseline=b, current=c, severity="regression",
                    message=f"latency {label} {b:.6g}s -> {c:.6g}s "
                            f"({drift:+.1%}, tolerance "
                            f"{tolerance.quantile:.1%})"))
            elif drift < -tolerance.quantile:
                findings.append(Finding(
                    manifest=name,
                    metric=f"{prefix}.{hist_name}.{label}",
                    baseline=b, current=c, severity="note",
                    message=f"latency {label} improved "
                            f"{-drift:.1%}"))


def _compare_timeseries(name: str, base: dict, current: dict,
                        tolerance: Tolerance,
                        findings: List[Finding]) -> None:
    """Telemetry series: one-sided coverage loss plus sample drift.

    Series are sim-time driven and deterministic, so like counters any
    change in sample count or total mass is a behaviour change, not
    noise.
    """
    base_series = base.get("timeseries") or {}
    cur_series = current.get("timeseries") or {}
    for series_name in sorted(set(base_series) | set(cur_series)):
        if series_name not in cur_series:
            findings.append(Finding(
                manifest=name, metric=f"timeseries.{series_name}",
                baseline=None, current=None, severity="regression",
                message="series present in baseline but missing from "
                        "current manifest (lost telemetry coverage)"))
            continue
        if series_name not in base_series:
            findings.append(Finding(
                manifest=name, metric=f"timeseries.{series_name}",
                baseline=None, current=None, severity="note",
                message="new telemetry series (no baseline to compare "
                        "against)"))
            continue
        b_samples = (base_series[series_name] or {}).get("samples") or []
        c_samples = (cur_series[series_name] or {}).get("samples") or []
        if len(b_samples) != len(c_samples):
            findings.append(Finding(
                manifest=name,
                metric=f"timeseries.{series_name}.samples",
                baseline=float(len(b_samples)),
                current=float(len(c_samples)), severity="regression",
                message=f"sample count {len(b_samples)} -> "
                        f"{len(c_samples)} (deterministic data; "
                        f"behaviour changed)"))
            continue
        b_mass = sum(float(v) for _t, v in b_samples)
        c_mass = sum(float(v) for _t, v in c_samples)
        if b_mass != c_mass and \
                abs(_relative(b_mass, c_mass)) > tolerance.counters:
            findings.append(Finding(
                manifest=name,
                metric=f"timeseries.{series_name}.mass",
                baseline=b_mass, current=c_mass,
                severity="regression",
                message=f"series mass {b_mass:g} -> {c_mass:g}, beyond "
                        f"counter tolerance {tolerance.counters:.1%}"))


def compare_manifest(name: str, base: dict, current: dict,
                     tolerance: Tolerance) -> List[Finding]:
    """Every finding from comparing one manifest pair."""
    findings: List[Finding] = []
    _compare_counters(name, base, current, tolerance, findings)
    _compare_perf(name, base, current, tolerance, findings)
    _compare_timeseries(name, base, current, tolerance, findings)
    _compare_histograms(name, "histograms",
                        base.get("histograms"),
                        current.get("histograms"), tolerance, findings)
    _compare_histograms(name, "runner.histograms",
                        (base.get("runner") or {}).get("histograms"),
                        (current.get("runner") or {}).get("histograms"),
                        tolerance, findings)
    return findings


def compare_dirs(baseline_dir, current_dir,
                 tolerance: Optional[Tolerance] = None,
                 prefix: Optional[str] = None) -> CompareReport:
    """Compare two manifest directories; missing coverage is a failure.

    *prefix* restricts both sides to manifests whose name starts with it
    (see :func:`load_manifests`).
    """
    tolerance = tolerance if tolerance is not None else Tolerance()
    baseline = load_manifests(baseline_dir, prefix=prefix)
    current = load_manifests(current_dir, prefix=prefix)
    findings: List[Finding] = []
    shared = sorted(set(baseline) & set(current))
    for name in sorted(set(baseline) - set(current)):
        findings.append(Finding(
            manifest=name, metric="(manifest)", baseline=None,
            current=None, severity="regression",
            message="present in baseline but missing from current run "
                    "(lost benchmark coverage)"))
    for name in sorted(set(current) - set(baseline)):
        findings.append(Finding(
            manifest=name, metric="(manifest)", baseline=None,
            current=None, severity="note",
            message="new manifest (no baseline to compare against)"))
    for name in shared:
        findings.extend(compare_manifest(name, baseline[name],
                                         current[name], tolerance))
    return CompareReport(
        baseline_dir=str(baseline_dir), current_dir=str(current_dir),
        manifests=shared, findings=findings)
