"""Engine profiling: per-callback-kind wall-time accounting.

The ROADMAP's "fast as the hardware allows" needs to know where wall time
goes before anything can be optimised. :class:`EngineProfiler` attaches to
a :class:`~repro.sim.engine.Engine` (``engine.attach_profiler``) and the
run loop then times every dispatched callback, bucketing by *kind* — the
callback's qualified name, which groups e.g. all ``ListenSocket._synack_timeout``
timer pops together regardless of which socket owns them.

Profiling is opt-in: with no profiler attached the run loop takes a branch
that never calls ``perf_counter`` per event.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, List, Tuple

from repro.obs.hist import Histogram


def callback_kind(callback: Callable) -> str:
    """Stable bucket name for a callback.

    Bound methods and plain functions use their qualified name; partials
    unwrap to the underlying function; anything else falls back to its
    type name (lambdas keep their ``<lambda>`` qualname, which is still a
    stable per-definition bucket).
    """
    if isinstance(callback, functools.partial):
        return callback_kind(callback.func)
    qualname = getattr(callback, "__qualname__", None)
    if qualname:
        return qualname
    return type(callback).__name__


class EngineProfiler:
    """Accumulates per-kind dispatch counts and wall seconds."""

    __slots__ = ("_kinds", "events", "wall_seconds", "hist")

    def __init__(self) -> None:
        # kind -> [count, wall_seconds]; a list so the hot path mutates
        # in place instead of rebuilding tuples.
        self._kinds: Dict[str, List[float]] = {}
        self.events = 0
        self.wall_seconds = 0.0
        # Per-event dispatch time distribution (wall clock, so never part
        # of deterministic payload comparisons).
        self.hist = Histogram("callback_wall")

    def record(self, callback: Callable, wall: float) -> None:
        kind = callback_kind(callback)
        entry = self._kinds.get(kind)
        if entry is None:
            entry = [0, 0.0]
            self._kinds[kind] = entry
        entry[0] += 1
        entry[1] += wall
        self.events += 1
        self.wall_seconds += wall
        self.hist.record(wall if wall > 0.0 else 0.0)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def rows(self) -> List[Tuple[str, int, float, float]]:
        """(kind, count, wall_seconds, mean_us) sorted by wall desc."""
        rows = []
        for kind, (count, wall) in self._kinds.items():
            mean_us = (wall / count) * 1e6 if count else 0.0
            rows.append((kind, int(count), wall, mean_us))
        rows.sort(key=lambda row: (-row[2], row[0]))
        return rows

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly per-kind accounting, kind-sorted."""
        return {kind: {"count": int(count), "wall_seconds": wall}
                for kind, (count, wall) in sorted(self._kinds.items())}

    def render(self, top: int = 15) -> str:
        """A ``perf report``-style table of the hottest callback kinds."""
        rows = self.rows()
        lines = [f"{'wall %':>7s}  {'wall s':>9s}  {'calls':>9s}  "
                 f"{'mean us':>9s}  kind"]
        total = self.wall_seconds or 1.0
        for kind, count, wall, mean_us in rows[:top]:
            lines.append(f"{100.0 * wall / total:6.1f}%  {wall:9.4f}  "
                         f"{count:9d}  {mean_us:9.2f}  {kind}")
        if len(rows) > top:
            lines.append(f"... ({len(rows) - top} more kinds)")
        if len(rows) == 0:
            lines.append("(no callbacks profiled)")
        return "\n".join(lines)
