"""Per-connection handshake spans, distilled from tracepoint events.

The tracer (:mod:`repro.obs.trace`) records a flat ring of events; this
module folds each flow's events into one :class:`HandshakeSpan` — a
start time, a terminal outcome, and the named **phases** between
consecutive events (challenge issue → solve → verify …), each carrying
its sim-time duration. Spans are the structured view the text timeline
renderer cannot give you: they aggregate, they export as Chrome
trace-event JSON (``tcp-puzzles trace --format=chrome``, drop the file
into Perfetto or ``chrome://tracing``), and one span maps to exactly one
handshake attempt (client connections use a fresh ephemeral port per
attempt, so the listener-side flow key is unique per attempt).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.obs.trace import Flow, HandshakeTracer, TraceEvent

#: Terminal tracer events → span outcome.
TERMINAL_OUTCOMES = {
    "accept": "accepted",
    "reject": "rejected",
    "ignore": "ignored",
    "drop": "dropped",
    "expire": "expired",
}

#: Phase names for (previous event, next event) transitions. Anything
#: not listed falls back to ``"<prev>-><next>"`` so novel emit sites
#: still produce a well-formed span.
PHASE_NAMES = {
    ("syn-in", "challenge-out"): "challenge-issue",
    ("syn-in", "synack-out"): "synack",
    ("syn-in", "cookie-out"): "cookie-issue",
    ("challenge-out", "ack-in"): "solve",
    ("synack-out", "ack-in"): "ack-wait",
    ("cookie-out", "ack-in"): "ack-wait",
    ("synack-out", "synack-out"): "synack-retransmit",
    ("ack-in", "accept"): "verify-accept",
    ("ack-in", "reject"): "verify-reject",
    ("ack-in", "ignore"): "verify-ignore",
}


@dataclass(frozen=True)
class SpanPhase:
    """One named segment of a handshake span."""

    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class HandshakeSpan:
    """One connection attempt: phases plus a terminal outcome."""

    flow: Flow
    host: str
    start: float
    end: float
    outcome: str                      # accepted/rejected/ignored/dropped/
    phases: Tuple[SpanPhase, ...]     # expired/pending
    detail: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def phase(self, name: str) -> Optional[SpanPhase]:
        """The first phase with *name*, or None."""
        for phase in self.phases:
            if phase.name == name:
                return phase
        return None


def _phase_name(previous: str, following: str) -> str:
    return PHASE_NAMES.get((previous, following),
                           f"{previous}->{following}")


def build_spans(source: Union[HandshakeTracer, Iterator[TraceEvent],
                              List[TraceEvent]]) -> List[HandshakeSpan]:
    """Fold tracer events into one span per flow (= per handshake).

    Accepts a :class:`HandshakeTracer` or any iterable of
    :class:`TraceEvent`; flows keep their first-appearance order, events
    within a flow keep emission (= time) order.
    """
    if isinstance(source, HandshakeTracer):
        grouped = source.timelines()
    else:
        grouped: Dict[Flow, List[TraceEvent]] = {}
        for event in source:
            grouped.setdefault(event.flow, []).append(event)
    spans: List[HandshakeSpan] = []
    for flow, events in grouped.items():
        last = events[-1]
        phases = tuple(
            SpanPhase(name=_phase_name(a.event, b.event),
                      start=a.t, end=b.t)
            for a, b in zip(events, events[1:]))
        spans.append(HandshakeSpan(
            flow=flow,
            host=last.host,
            start=events[0].t,
            end=last.t,
            outcome=TERMINAL_OUTCOMES.get(last.event, "pending"),
            phases=phases,
            detail=dict(last.detail)))
    return spans


def outcome_counts(spans: List[HandshakeSpan]) -> Dict[str, int]:
    """Span count per terminal outcome, name-sorted."""
    counts: Dict[str, int] = {}
    for span in spans:
        counts[span.outcome] = counts.get(span.outcome, 0) + 1
    return {name: counts[name] for name in sorted(counts)}


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
def _json_safe(value: object) -> object:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def chrome_trace_events(spans: List[HandshakeSpan],
                        series=None) -> List[Dict[str, object]]:
    """Spans as Chrome trace-event objects (``ph: "X"`` complete events).

    One thread per span (named after the flow), one top-level event per
    handshake plus one nested event per phase; ``ts``/``dur`` are
    microseconds per the trace-event format. With *series* (a name →
    :class:`~repro.obs.timeseries.TimeSeries` dict or a
    ``SeriesRegistry``), telemetry counter tracks (``ph: "C"``) are
    appended so Perfetto draws the rate/gauge curves on the same
    timeline as the handshake spans.
    """
    events: List[Dict[str, object]] = []
    for tid, span in enumerate(spans, start=1):
        flow_name = HandshakeTracer._format_flow(span.flow)
        events.append({
            "ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
            "args": {"name": flow_name},
        })
        events.append({
            "ph": "X", "cat": "handshake",
            "name": f"handshake:{span.outcome}",
            "pid": 1, "tid": tid,
            "ts": span.start * 1e6, "dur": span.duration * 1e6,
            "args": {
                "flow": flow_name,
                "host": span.host,
                "outcome": span.outcome,
                **{key: _json_safe(value)
                   for key, value in sorted(span.detail.items())},
            },
        })
        for phase in span.phases:
            events.append({
                "ph": "X", "cat": "phase", "name": phase.name,
                "pid": 1, "tid": tid,
                "ts": phase.start * 1e6, "dur": phase.duration * 1e6,
            })
    if series is not None:
        from repro.obs.timeseries import SeriesRegistry, \
            chrome_counter_events

        table = series.as_dict() \
            if isinstance(series, SeriesRegistry) else dict(series)
        events.extend(chrome_counter_events(table))
    return events


def chrome_trace_json(spans: List[HandshakeSpan], series=None) -> str:
    """The full Chrome trace JSON document (Perfetto-loadable)."""
    return json.dumps(
        {"traceEvents": chrome_trace_events(spans, series=series),
         "displayTimeUnit": "ms"},
        sort_keys=True)


def span_lines(spans: List[HandshakeSpan]) -> Iterator[str]:
    """Spans as deterministic JSONL (``type: "span"``), one per line."""
    for span in spans:
        yield json.dumps({
            "type": "span",
            "flow": list(span.flow),
            "host": span.host,
            "start": span.start,
            "end": span.end,
            "outcome": span.outcome,
            "phases": [{"name": phase.name, "start": phase.start,
                        "end": phase.end} for phase in span.phases],
        }, sort_keys=True, separators=(",", ":"))
