"""SNMP-style counter registry — the simulator's ``netstat -s``.

Linux keeps its protocol statistics as named monotonic MIB counters
(``SynsRecv``, ``ListenOverflows``, …) that ``netstat -s`` renders; this
module gives every simulated host the same surface. Counters live in
per-host :class:`CounterScope` bags inside one :class:`CounterRegistry`
per simulation, and instrumentation sites increment them unconditionally —
an increment is one dict operation, cheap enough to leave always-on while
tracepoints (:mod:`repro.obs.trace`) stay gated.

The catalogue below documents every counter the stack increments and is
what the Prometheus exporter uses for ``# HELP`` lines. Scopes accept
counters outside the catalogue (experiments may mint their own), but the
drop-attribution helpers only reason about catalogued names.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

#: Counter name -> human description. Grouped roughly by subsystem; the
#: names are Linux-MIB flavoured so a kernel person can read the dump.
CATALOGUE: Dict[str, str] = {
    # -- stack demux ---------------------------------------------------
    "InSegs": "TCP segments delivered to the stack",
    "OutRsts": "RFC 793 catch-all resets sent (no matching state)",
    # -- listener, SYN side -------------------------------------------
    "SynsRecv": "SYN segments arriving at a listening socket",
    "SynAcksSent": "plain SYN-ACKs sent (stock half-open path)",
    "SynAckRetrans": "SYN-ACK retransmissions for half-open connections",
    "PuzzlesIssued": "puzzle challenges sent in SYN-ACKs",
    "SynCookiesSent": "SYN cookies sent in place of half-open state",
    "ListenOverflows": "SYNs dropped because the listen queue was full",
    "HalfOpenExpired":
        "half-open connections reaped after SYN-ACK retry exhaustion",
    # -- listener, completion side ------------------------------------
    "SynCookiesRecv": "handshakes completed by a valid cookie echo",
    "SynCookiesFailed": "completing ACKs whose cookie failed validation",
    "PuzzlesVerified": "puzzle solutions that verified OK",
    "PuzzlesRejected":
        "puzzle solutions rejected (bad solution or parameter mismatch)",
    "ReplaysBlocked":
        "puzzle solutions rejected as stale or future-dated "
        "(outside the replay window)",
    "DeceptionAcksIgnored":
        "completing ACKs silently ignored while under attack "
        "(the §5 deception path)",
    "PlainAcksIgnored":
        "plain ACKs from hosts that ignored a challenge, silently dropped",
    "AcceptOverflows":
        "handshake completions refused because the accept queue was full",
    "EstabNormal": "handshakes established via the stock three-way path",
    "EstabCookie": "handshakes established via a SYN cookie",
    "EstabPuzzle": "handshakes established via a verified puzzle",
    "EstabSynCache": "handshakes established via the SYN cache",
    # -- SYN cache ------------------------------------------------------
    "SynCacheAdded": "compact half-open records inserted into the cache",
    "SynCacheEvictions": "cache records evicted by bucket overflow",
    "SynCacheHits": "completing ACKs that found their cache record",
    "SynCacheMisses": "completing ACKs whose cache record was gone",
    "SynCacheExpired": "cache records reaped by timeout expiry",
    "SynCacheRejects":
        "SYNs refused by the reject-new overflow policy (no record made)",
    # -- graceful-degradation ladder ------------------------------------
    "SynCacheCookieFallback":
        "SYNs answered with a stateless cookie because syncache occupancy "
        "crossed the high watermark",
    "AdmissionDrops":
        "SYNs dropped by the listener's token-bucket admission control",
    # -- fault injection ------------------------------------------------
    "MemoryPressureReclaims":
        "queue/cache entries reclaimed by injected memory pressure",
    # -- tooling ---------------------------------------------------------
    "cache_corrupt_entries":
        "result-cache entries dropped because their pickle was corrupt "
        "or truncated",
    # -- client side ----------------------------------------------------
    "SynRetrans": "client SYN retransmissions",
    "ChallengesReceived": "challenges this host started solving",
    "ChallengesAbandoned":
        "challenges dropped because the CPU solve backlog was too deep",
    "PuzzlesSolved": "puzzle solutions this host finished computing",
    # -- application server --------------------------------------------
    "RequestsServed": "application requests answered",
    "MalformedRequests": "requests rejected as malformed",
    "IdleWorkersShed": "silent connections shed by the worker idle timer",
}

#: Terminal causes a failed/refused handshake can be attributed to. The
#: instrumentation keeps these disjoint: one refused handshake event
#: increments exactly one of them. ``MemoryPressureReclaims`` is
#: deliberately excluded — accept-queue reclaim kills connections that
#: already counted as established, so including it would double-book.
DROP_CAUSES: Tuple[str, ...] = (
    "ListenOverflows",
    "HalfOpenExpired",
    "AcceptOverflows",
    "DeceptionAcksIgnored",
    "PlainAcksIgnored",
    "PuzzlesRejected",
    "ReplaysBlocked",
    "SynCookiesFailed",
    "SynCacheEvictions",
    "SynCacheMisses",
    "SynCacheRejects",
    "AdmissionDrops",
)

#: Per-path establishment counters (sum = accepted handshakes).
ESTABLISHED_COUNTERS: Tuple[str, ...] = (
    "EstabNormal", "EstabCookie", "EstabPuzzle", "EstabSynCache")


class CounterScope:
    """One host's bag of named monotonic counters.

    Missing counters read as zero, so call sites never pre-register; the
    increment path is a single dict update.
    """

    __slots__ = ("name", "_values")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: Dict[str, int] = {}

    def incr(self, counter: str, n: int = 1) -> None:
        """Add *n* (default 1) to *counter*."""
        values = self._values
        values[counter] = values.get(counter, 0) + n

    def get(self, counter: str) -> int:
        return self._values.get(counter, 0)

    def __getitem__(self, counter: str) -> int:
        return self._values.get(counter, 0)

    def __contains__(self, counter: str) -> bool:
        return counter in self._values

    def __len__(self) -> int:
        return len(self._values)

    def snapshot(self) -> Dict[str, int]:
        """Name-sorted copy of every counter touched so far."""
        return dict(sorted(self._values.items()))

    def render(self) -> str:
        """``netstat -s``-style text: one indented line per counter."""
        lines = [f"{self.name}:"]
        for counter, value in sorted(self._values.items()):
            lines.append(f"    {value} {describe(counter)}")
        if len(lines) == 1:
            lines.append("    (no counters incremented)")
        return "\n".join(lines)


class CounterRegistry:
    """All scopes of one simulation, keyed by host name."""

    def __init__(self) -> None:
        self._scopes: Dict[str, CounterScope] = {}

    def scope(self, name: str) -> CounterScope:
        """The scope for *name*, created on first use."""
        scope = self._scopes.get(name)
        if scope is None:
            scope = CounterScope(name)
            self._scopes[name] = scope
        return scope

    def scopes(self) -> Iterator[CounterScope]:
        for name in sorted(self._scopes):
            yield self._scopes[name]

    def __len__(self) -> int:
        return len(self._scopes)

    def __contains__(self, name: str) -> bool:
        return name in self._scopes

    def total(self, counter: str) -> int:
        """Sum of *counter* across every scope."""
        return sum(s.get(counter) for s in self._scopes.values())

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        return {name: self._scopes[name].snapshot()
                for name in sorted(self._scopes)}

    def render(self) -> str:
        return "\n".join(scope.render() for scope in self.scopes())


def describe(counter: str) -> str:
    """The catalogue description, or the raw name for ad-hoc counters."""
    return CATALOGUE.get(counter, counter)


def drop_attribution(scope) -> Dict[str, int]:
    """Nonzero terminal drop causes for a listener host, name -> count.

    Because the increment sites are disjoint, summing these gives the
    total number of refused/failed handshake events, each attributed to
    exactly one cause. Accepts a live :class:`CounterScope` or a plain
    snapshot dict (``registry.snapshot()[host]``), whose ``get`` returns
    ``None`` for untouched counters.
    """
    return {cause: scope.get(cause) for cause in DROP_CAUSES
            if scope.get(cause)}


def established_total(scope) -> int:
    """Accepted handshakes across every establishment path.

    Accepts a live :class:`CounterScope` or a plain snapshot dict.
    """
    return sum(scope.get(name) or 0 for name in ESTABLISHED_COUNTERS)
