"""Attribution profiling: where the wall time (and memory) actually goes.

:class:`~repro.obs.profile.EngineProfiler` answers "which callback kind
is hot"; this module answers the next three questions an optimization PR
gets asked:

* **which component** — per-callback wall seconds rolled up to the
  package layer (``tcp`` / ``net`` / ``puzzles`` / ``hosts`` / ``obs`` /
  ``engine``) via the callback's defining module, so "the codec is 18%
  of the run" is one table row instead of a grep over qualnames;
* **how much churn** — engine heap traffic (schedules, pops,
  cancellations, compactions) normalised per simulated second, the
  number the timer-wheel rework must move;
* **what it allocates** — opt-in :mod:`tracemalloc` snapshots and GC
  pause accounting around a profiled run (both off by default; the
  profiler adds nothing to runs that do not ask for them).

Everything here is opt-in on top of an opt-in profiler: the engine's
no-profiler dispatch branch is untouched, and attaching the plain
:class:`EngineProfiler` still does exactly what it did before.

Export: :func:`collapsed_stacks` renders the attribution as
``component;module;qualname wall_us`` lines — the Brendan Gregg
collapsed-stack format that ``flamegraph.pl`` and speedscope load
directly (``tcp-puzzles perf profile --flame out.txt``).
"""

from __future__ import annotations

import functools
import gc
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.profile import EngineProfiler, callback_kind

#: Module-prefix → component mapping, first match wins (most specific
#: prefixes first). Anything unmatched lands in ``other``.
COMPONENT_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("repro.tcp", "tcp"),
    ("repro.net", "net"),
    ("repro.puzzles", "puzzles"),
    ("repro.crypto", "puzzles"),
    ("repro.obs", "obs"),
    ("repro.metrics", "obs"),
    ("repro.sim", "engine"),
    ("repro.hosts", "hosts"),
    ("repro.experiments", "experiments"),
    ("repro.faults", "faults"),
    ("repro.runner", "runner"),
)

_UNKNOWN_MODULE = "<unknown>"


def component_of(module: str) -> str:
    """The component a module name belongs to (``other`` when unmapped)."""
    for prefix, component in COMPONENT_PREFIXES:
        if module == prefix or module.startswith(prefix + "."):
            return component
    return "other"


#: The compiled core's module, and its types that implement *another*
#: layer's primitive. The extension lives under ``repro.sim`` (→
#: ``engine``), but e.g. its fabric fold belongs beside the Python
#: fabric it accelerates: without this, a batched flood profile banks
#: the path-fold wall time against the engine and the ``net`` row
#: silently shrinks when the C core is adopted.
CENGINE_MODULE = "repro.sim._cengine"
CENGINE_TYPE_COMPONENTS: Tuple[Tuple[str, str], ...] = (
    ("FabricPath", "net"),
)


def component_of_frame(module: str, qualname: str) -> str:
    """Component of a ``(module, qualname)`` profile frame.

    Like :func:`component_of`, plus compiled-core awareness: frames
    from ``repro.sim._cengine`` map by their type — ``Engine``/``Event``
    dispatch machinery stays ``engine`` while ``FabricPath.fold`` rolls
    up under ``net``, so component tables stay comparable across
    ``REPRO_ENGINE``/``REPRO_FABRIC`` modes.
    """
    if module == CENGINE_MODULE:
        head = qualname.split(".", 1)[0]
        for type_name, component in CENGINE_TYPE_COMPONENTS:
            if head == type_name:
                return component
    return component_of(module)


def callback_module(callback: Callable) -> str:
    """The defining module of a callback, partials unwrapped.

    Bound methods report their function's module; builtin methods of
    extension types (``__module__ is None``, e.g. the compiled engine
    core's ``stop``) report the module of the object they are bound to;
    callable instances without ``__module__`` fall back to their type's
    module; anything else reports ``<unknown>``.
    """
    if isinstance(callback, functools.partial):
        return callback_module(callback.func)
    module = getattr(callback, "__module__", None)
    if module:
        return module
    bound_to = getattr(callback, "__self__", None)
    if bound_to is not None:
        module = getattr(type(bound_to), "__module__", None)
        if module:
            return module
    module = getattr(type(callback), "__module__", None)
    return module if module else _UNKNOWN_MODULE


class AttributionProfiler(EngineProfiler):
    """An :class:`EngineProfiler` that also attributes by frame.

    Per-dispatch accounting is keyed ``(module, qualname)``; component
    rollups and flamegraph stacks are derived views. Optional memory
    and GC accounting bracket the run via :meth:`start` / :meth:`finish`
    (both no-ops unless the matching flag was set).
    """

    __slots__ = ("_frames", "_component_cache", "track_memory", "track_gc",
                 "memory", "gc_stats", "_gc_started", "_gc_hook",
                 "_started_tracemalloc")

    def __init__(self, track_memory: bool = False,
                 track_gc: bool = False) -> None:
        super().__init__()
        # (module, qualname) -> [count, wall_seconds]
        self._frames: Dict[Tuple[str, str], List[float]] = {}
        self._component_cache: Dict[Tuple[str, str], str] = {}
        self.track_memory = track_memory
        self.track_gc = track_gc
        #: Filled by :meth:`finish` when ``track_memory`` was set.
        self.memory: Optional[Dict[str, float]] = None
        #: Filled live by the GC hook when ``track_gc`` was set.
        self.gc_stats: Dict[str, float] = {"collections": 0,
                                           "pause_seconds": 0.0}
        self._gc_started = 0.0
        self._gc_hook = None
        self._started_tracemalloc = False

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def record(self, callback: Callable, wall: float) -> None:
        super().record(callback, wall)
        key = (callback_module(callback), callback_kind(callback))
        entry = self._frames.get(key)
        if entry is None:
            entry = [0, 0.0]
            self._frames[key] = entry
        entry[0] += 1
        entry[1] += wall

    # ------------------------------------------------------------------
    # Memory + GC bracketing
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin memory/GC accounting (no-op without the flags)."""
        if self.track_memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
            tracemalloc.reset_peak()
        if self.track_gc and self._gc_hook is None:
            def hook(phase: str, info: dict) -> None:
                if phase == "start":
                    self._gc_started = perf_counter()
                else:
                    self.gc_stats["collections"] += 1
                    self.gc_stats["pause_seconds"] += \
                        perf_counter() - self._gc_started
            self._gc_hook = hook
            gc.callbacks.append(hook)

    def finish(self) -> None:
        """Stop accounting and snapshot the results (idempotent)."""
        if self.track_memory:
            import tracemalloc

            if tracemalloc.is_tracing():
                current, peak = tracemalloc.get_traced_memory()
                self.memory = {"current_bytes": float(current),
                               "peak_bytes": float(peak)}
                if self._started_tracemalloc:
                    tracemalloc.stop()
                    self._started_tracemalloc = False
        if self._gc_hook is not None:
            try:
                gc.callbacks.remove(self._gc_hook)
            except ValueError:  # pragma: no cover - already removed
                pass
            self._gc_hook = None

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def _component(self, module: str, qualname: str) -> str:
        key = (module, qualname)
        component = self._component_cache.get(key)
        if component is None:
            component = component_of_frame(module, qualname)
            self._component_cache[key] = component
        return component

    def component_rows(self) -> List[Tuple[str, int, float, float]]:
        """(component, count, wall_seconds, wall_fraction), wall-sorted."""
        rollup: Dict[str, List[float]] = {}
        for (module, kind), (count, wall) in self._frames.items():
            entry = rollup.setdefault(self._component(module, kind),
                                      [0, 0.0])
            entry[0] += count
            entry[1] += wall
        total = self.wall_seconds or 1.0
        rows = [(component, int(count), wall, wall / total)
                for component, (count, wall) in rollup.items()]
        rows.sort(key=lambda row: (-row[2], row[0]))
        return rows

    def frame_rows(self) -> List[Tuple[str, str, str, int, float]]:
        """(component, module, qualname, count, wall), wall-sorted."""
        rows = [(self._component(module, kind), module, kind, int(count),
                 wall)
                for (module, kind), (count, wall) in self._frames.items()]
        rows.sort(key=lambda row: (-row[4], row[0], row[1], row[2]))
        return rows

    def components_payload(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly per-component accounting, name-sorted."""
        return {component: {"count": count, "wall_seconds": wall,
                            "wall_fraction": fraction}
                for component, count, wall, fraction
                in sorted(self.component_rows())}

    def render_components(self) -> str:
        """A per-component rollup table (the attribution summary)."""
        lines = [f"{'wall %':>7s}  {'wall s':>9s}  {'calls':>9s}  "
                 f"component"]
        for component, count, wall, fraction in self.component_rows():
            lines.append(f"{100.0 * fraction:6.1f}%  {wall:9.4f}  "
                         f"{count:9d}  {component}")
        if len(lines) == 1:
            lines.append("(no callbacks profiled)")
        return "\n".join(lines)

    def render_memory(self) -> str:
        """One line each for memory and GC accounting (when tracked)."""
        lines = []
        if self.memory is not None:
            lines.append(
                f"memory: {self.memory['current_bytes'] / 1024.0:,.1f} KiB "
                f"live, {self.memory['peak_bytes'] / 1024.0:,.1f} KiB peak "
                f"(tracemalloc)")
        if self.track_gc:
            lines.append(
                f"gc: {int(self.gc_stats['collections'])} collections, "
                f"{self.gc_stats['pause_seconds'] * 1e3:.2f} ms total "
                f"pause")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Engine heap churn
# ----------------------------------------------------------------------
def heap_churn(engine) -> Dict[str, float]:
    """Engine heap traffic, absolute and per simulated second.

    ``schedules`` counts every :meth:`Engine.schedule_at` push,
    ``pops`` every heap pop (fired + lazily-deleted entries),
    ``cancellations`` every :meth:`Event.cancel`. The per-sim-second
    rates are the yardstick the timer-wheel rework must move.
    """
    stats = engine.stats()
    sim = stats.get("sim_seconds") or 0.0
    schedules = stats.get("events_scheduled", 0)
    processed = stats.get("events_processed", 0)
    cancelled = stats.get("events_cancelled", 0)
    pending = stats.get("pending", 0)
    # Everything scheduled either fired, is still pending, or was popped/
    # compacted away as a cancelled entry.
    pops = schedules - pending
    churn = {
        "schedules": float(schedules),
        "pops": float(pops),
        "cancellations": float(cancelled),
        "compactions": float(stats.get("compactions", 0)),
        "heap_high_water": float(stats.get("heap_high_water", 0)),
        "events_processed": float(processed),
    }
    if sim > 0:
        churn["schedules_per_sim_second"] = schedules / sim
        churn["pops_per_sim_second"] = pops / sim
        churn["cancellations_per_sim_second"] = cancelled / sim
    return churn


def render_heap_churn(churn: Dict[str, float]) -> str:
    line = (f"heap churn: {churn['schedules']:,.0f} schedules, "
            f"{churn['pops']:,.0f} pops, "
            f"{churn['cancellations']:,.0f} cancellations, "
            f"{churn['compactions']:,.0f} compactions "
            f"(high water {churn['heap_high_water']:,.0f})")
    if "schedules_per_sim_second" in churn:
        line += (f"; per sim-second: "
                 f"{churn['schedules_per_sim_second']:,.0f} sched, "
                 f"{churn['cancellations_per_sim_second']:,.0f} cancel")
    return line


# ----------------------------------------------------------------------
# Flamegraph export
# ----------------------------------------------------------------------
def collapsed_stacks(profiler: EngineProfiler) -> List[str]:
    """Collapsed-stack lines (``frame;frame value``), wall-sorted.

    Values are integer microseconds (collapsed-stack tools expect
    integer sample counts; 1 sample = 1 µs of wall time). An
    :class:`AttributionProfiler` yields three-deep stacks
    ``component;module;qualname``; a plain :class:`EngineProfiler`
    yields one frame per callback kind.
    """
    lines = []
    if isinstance(profiler, AttributionProfiler):
        for component, module, kind, _count, wall in profiler.frame_rows():
            micros = int(round(wall * 1e6))
            if micros > 0:
                lines.append(f"{component};{module};{kind} {micros}")
    else:
        for kind, _count, wall, _mean in profiler.rows():
            micros = int(round(wall * 1e6))
            if micros > 0:
                lines.append(f"{kind} {micros}")
    return lines


def write_flamegraph(profiler: EngineProfiler, path) -> int:
    """Write collapsed stacks to *path*; returns the line count.

    The output loads directly in speedscope (https://speedscope.app) and
    ``flamegraph.pl``.
    """
    import pathlib

    lines = collapsed_stacks(profiler)
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def make_profiler(spec) -> Optional[EngineProfiler]:
    """Build a profiler from a config flag.

    ``True``/``"basic"`` → plain :class:`EngineProfiler`;
    ``"attribution"`` → :class:`AttributionProfiler`;
    ``"attribution+mem"`` → attribution with tracemalloc + GC accounting;
    falsy → ``None``. An already-constructed profiler passes through.
    """
    if not spec:
        return None
    if isinstance(spec, EngineProfiler):
        return spec
    if spec is True or spec == "basic":
        return EngineProfiler()
    if spec == "attribution":
        return AttributionProfiler()
    if spec == "attribution+mem":
        return AttributionProfiler(track_memory=True, track_gc=True)
    from repro.errors import ExperimentError

    raise ExperimentError(
        f"unknown profiler spec {spec!r} (use True, 'basic', "
        f"'attribution', or 'attribution+mem')")


def profile_payload(profiler: EngineProfiler,
                    engine=None) -> Dict[str, object]:
    """Manifest block for a profiled run: per-kind table plus, for
    attribution profilers, component rollups, heap churn, and any
    memory/GC accounting."""
    payload: Dict[str, object] = {"kinds": profiler.snapshot()}
    if isinstance(profiler, AttributionProfiler):
        payload["components"] = profiler.components_payload()
        if profiler.memory is not None:
            payload["memory"] = dict(profiler.memory)
        if profiler.track_gc:
            payload["gc"] = dict(profiler.gc_stats)
    if engine is not None:
        payload["heap_churn"] = heap_churn(engine)
    return payload
