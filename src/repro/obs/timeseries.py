"""Streaming telemetry: deterministic sim-time series from a live run.

End-of-run counters answer "how many"; the paper's §4 equilibrium story
is about *rates over time* — SYN arrival vs. verification vs. drop as
the attack engages and the controller responds. This module adds the
streaming layer:

* :class:`TelemetrySpec` — the picklable, hashable configuration knob
  (``ScenarioConfig.telemetry``). ``None`` (the default) means fully
  detached: no sampler is built, no events are scheduled, no per-event
  cost anywhere (the zero-overhead invariant of
  ``tests/obs/test_profile.py`` covers this).
* :class:`TimeSeries` — one named series in a bounded
  :class:`~repro.metrics.series.RingSeries`: memory is fixed no matter
  how long the run is. Three kinds: ``rate`` (counter delta / cadence),
  ``gauge`` (instantaneous occupancy), ``quantile`` (histogram
  quantile). Rates and gauges merge sample-for-sample across sweep
  workers; quantiles do not (a quantile of quantiles is meaningless)
  and are kept per-cell only.
* :class:`SimSampler` — an engine tap firing on an
  :class:`~repro.sim.process.AlignedPeriodicProcess` cadence (absolute
  times ``k * cadence``, so every cell's time column is bit-identical)
  that snapshots counter deltas, listener/accept-queue occupancy,
  syncache fill, and selected histogram quantiles.
* :func:`chrome_counter_events` — Chrome trace-event counter records
  (``"ph": "C"``) so Perfetto draws the rate curves as counter tracks on
  the same timeline as the :mod:`repro.obs.spans` handshake spans.

Everything here is sim-time driven and reads engine/hub state that is
itself deterministic, so two runs of the same seeded config produce
byte-identical series — they ride the same serial ≡ parallel contract
as the counters and histograms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.metrics.series import RingSeries
from repro.obs.counters import DROP_CAUSES
from repro.obs.hist import QUANTILE_LABELS

#: Series kinds that sum meaningfully across sweep cells.
MERGEABLE_KINDS = frozenset({"rate", "gauge"})

#: The counters sampled by default: the paper's arrival/verification/
#: drop/establishment story, one rate curve each.
DEFAULT_COUNTERS: Tuple[str, ...] = (
    "SynsRecv",
    "PuzzlesIssued",
    "PuzzlesVerified",
    "PuzzlesRejected",
    "SynCookiesSent",
    "ListenOverflows",
    "EstabNormal",
    "EstabCookie",
    "EstabPuzzle",
    "EstabSynCache",
    "RequestsServed",
)

#: Histogram families whose quantiles are sampled by default.
DEFAULT_HISTOGRAMS: Tuple[str, ...] = ("accept_wait",)

_QUANTILE_BY_LABEL = dict(QUANTILE_LABELS)


@dataclass(frozen=True)
class TelemetrySpec:
    """Streaming-telemetry configuration (``ScenarioConfig.telemetry``).

    Frozen and built from plain tuples so it pickles across sweep
    workers and canonicalizes into result-cache keys unchanged.
    """

    #: Sim-seconds between samples. Every sample lands at an exact
    #: multiple ``k * cadence``, so same-cadence cells share time columns.
    cadence: float = 0.5
    #: Ring capacity per series; the oldest samples are evicted beyond it.
    capacity: int = 2048
    #: Counter names turned into ``rate.<Name>`` series (delta/cadence).
    counters: Tuple[str, ...] = DEFAULT_COUNTERS
    #: Histogram names whose quantiles become ``quantile.<name>.<p>``.
    histograms: Tuple[str, ...] = DEFAULT_HISTOGRAMS
    #: Quantile labels to sample (subset of the exporters' standard set).
    quantiles: Tuple[str, ...] = ("p95",)
    #: Sample listener/accept-queue depth and syncache fill gauges.
    queues: bool = True
    #: Attach bounded-memory per-source attribution sketches
    #: (:mod:`repro.obs.sketch`) to the listener.
    attribution: bool = False
    #: Space-Saving heavy-hitter slots per tracked dimension.
    top_k: int = 16
    #: Count-Min sketch width (rounded up to a power of two) and depth.
    cms_width: int = 512
    cms_depth: int = 4
    #: Source addresses are masked to this prefix before sketching
    #: (32 = exact /32 hosts; 24 aggregates per /24, etc.).
    prefix_bits: int = 32

    def __post_init__(self) -> None:
        if self.cadence <= 0:
            raise SimulationError(
                f"telemetry cadence must be positive, got {self.cadence!r}")
        if self.capacity < 1:
            raise SimulationError(
                f"telemetry capacity must be >= 1, got {self.capacity!r}")
        for label in self.quantiles:
            if label not in _QUANTILE_BY_LABEL:
                known = ", ".join(label for label, _ in QUANTILE_LABELS)
                raise SimulationError(
                    f"unknown quantile label {label!r} (known: {known})")
        if self.top_k < 1:
            raise SimulationError(
                f"telemetry top_k must be >= 1, got {self.top_k!r}")
        if self.cms_width < 1 or self.cms_depth < 1:
            raise SimulationError(
                "Count-Min sketch needs width >= 1 and depth >= 1")
        if not 0 <= self.prefix_bits <= 32:
            raise SimulationError(
                f"prefix_bits must be in [0, 32], got {self.prefix_bits!r}")


class TimeSeries:
    """One named, kinded, bounded time series."""

    __slots__ = ("name", "kind", "cadence", "ring")

    def __init__(self, name: str, kind: str, cadence: float,
                 capacity: int = 2048) -> None:
        if kind not in ("rate", "gauge", "quantile"):
            raise SimulationError(f"unknown series kind {kind!r}")
        self.name = name
        self.kind = kind
        self.cadence = cadence
        self.ring = RingSeries(capacity)

    # ------------------------------------------------------------------
    def record(self, t: float, value: float) -> None:
        self.ring.append(t, value)

    def __len__(self) -> int:
        return len(self.ring)

    def samples(self) -> List[Tuple[float, float]]:
        return self.ring.samples()

    def arrays(self):
        return self.ring.arrays()

    @property
    def dropped(self) -> int:
        return self.ring.dropped

    @property
    def capacity(self) -> int:
        return self.ring.capacity

    # ------------------------------------------------------------------
    def copy(self) -> "TimeSeries":
        clone = TimeSeries(self.name, self.kind, self.cadence,
                           self.ring.capacity)
        clone.ring.replace(self.samples())
        clone.ring.dropped = self.ring.dropped
        return clone

    def merge(self, other: "TimeSeries") -> "TimeSeries":
        """Fold *other* into this series by summing aligned samples.

        Only meaningful for the mergeable kinds (rates add to an
        aggregate rate, gauges to an aggregate occupancy). Timestamps
        are exact cadence multiples computed identically in every cell,
        so alignment is bitwise float equality, not tolerance matching.
        """
        if (self.name, self.kind) != (other.name, other.kind):
            raise SimulationError(
                f"cannot merge series {other.name!r}/{other.kind!r} into "
                f"{self.name!r}/{self.kind!r}")
        if self.kind not in MERGEABLE_KINDS:
            raise SimulationError(
                f"series kind {self.kind!r} does not merge")
        acc: Dict[float, float] = dict(self.samples())
        for t, value in other.samples():
            acc[t] = acc.get(t, 0.0) + value
        self.ring.dropped += other.ring.dropped
        self.ring.replace(sorted(acc.items()))
        return self

    # ------------------------------------------------------------------
    def as_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "cadence": self.cadence,
            "capacity": self.ring.capacity,
            "dropped": self.ring.dropped,
            "samples": [[t, value] for t, value in self.samples()],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "TimeSeries":
        series = cls(str(payload["name"]), str(payload["kind"]),
                     float(payload.get("cadence", 0.0)),
                     int(payload.get("capacity", 2048)))
        series.ring.replace(
            (float(t), float(v)) for t, v in payload.get("samples", []))
        series.ring.dropped = int(payload.get("dropped", 0))
        return series

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TimeSeries {self.name!r} kind={self.kind} "
                f"n={len(self)}>")


class SeriesRegistry:
    """Name → :class:`TimeSeries` map, mirroring ``HistogramRegistry``."""

    def __init__(self) -> None:
        self._series: Dict[str, TimeSeries] = {}

    def series(self, name: str, kind: str, cadence: float,
               capacity: int = 2048) -> TimeSeries:
        """The named series, created on first use."""
        series = self._series.get(name)
        if series is None:
            series = TimeSeries(name, kind, cadence, capacity)
            self._series[name] = series
        return series

    def get(self, name: str) -> Optional[TimeSeries]:
        return self._series.get(name)

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def names(self) -> List[str]:
        return sorted(self._series)

    def all(self) -> Iterator[TimeSeries]:
        for name in self.names():
            yield self._series[name]

    def as_dict(self) -> Dict[str, TimeSeries]:
        """Shallow copy of the name → series map (for summaries)."""
        return dict(self._series)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Name-sorted JSON-friendly payloads of every series."""
        return {name: self._series[name].as_payload()
                for name in self.names()}

    def merge(self, other) -> "SeriesRegistry":
        """Fold another registry (or name → TimeSeries dict) into this.

        Incoming series are copied, never aliased. Non-mergeable kinds
        (quantiles) are skipped: they stay per-cell, because averaging
        or summing quantiles across cells is statistically wrong.
        """
        source = other.as_dict() if isinstance(other, SeriesRegistry) \
            else dict(other)
        for name in sorted(source):
            series = source[name]
            if series.kind not in MERGEABLE_KINDS:
                continue
            mine = self._series.get(name)
            if mine is None:
                self._series[name] = series.copy()
            else:
                mine.merge(series)
        return self


class SimSampler:
    """The sim-time telemetry tap: one aligned cadence, many series.

    Reads — never mutates — hub counters, listener queues, the syncache
    and histograms, so attaching it cannot change protocol behaviour or
    any deterministic payload other than adding its own events to the
    engine's schedule accounting.
    """

    def __init__(self, engine, hub, spec: TelemetrySpec,
                 listener=None) -> None:
        # Deferred import: repro.obs must stay importable without
        # repro.sim (the hub promises engine-ignorance; see hub_for).
        from repro.sim.process import AlignedPeriodicProcess

        self.engine = engine
        self.hub = hub
        self.spec = spec
        self.listener = listener
        self.registry = SeriesRegistry()
        self.samples_taken = 0
        self._last_totals: Dict[str, int] = {
            name: 0 for name in spec.counters}
        self._last_drop_total = 0
        self._process = AlignedPeriodicProcess(
            engine, self._sample, spec.cadence)

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._process.start()

    def stop(self) -> None:
        self._process.stop()

    # ------------------------------------------------------------------
    def _series(self, name: str, kind: str) -> TimeSeries:
        return self.registry.series(name, kind, self.spec.cadence,
                                    self.spec.capacity)

    def _sample(self) -> None:
        spec = self.spec
        now = self.engine.now
        cadence = spec.cadence
        counters = self.hub.counters
        for name in spec.counters:
            total = counters.total(name)
            delta = total - self._last_totals[name]
            self._last_totals[name] = total
            self._series(f"rate.{name}", "rate").record(
                now, delta / cadence)
        # One aggregate drop-rate curve across every terminal cause —
        # the monitor's headline number.
        drop_total = sum(counters.total(cause) for cause in DROP_CAUSES)
        self._series("rate.Drops", "rate").record(
            now, (drop_total - self._last_drop_total) / cadence)
        self._last_drop_total = drop_total
        listener = self.listener
        if spec.queues and listener is not None:
            self._series("gauge.listen_depth", "gauge").record(
                now, float(len(listener.listen_queue)))
            self._series("gauge.accept_depth", "gauge").record(
                now, float(len(listener.accept_queue)))
            syncache = listener.config.syncache
            if syncache is not None:
                self._series("gauge.syncache_fill", "gauge").record(
                    now, float(len(syncache)))
                if syncache.memory_budget is not None:
                    # Budgeted caches chart occupancy in bytes against
                    # the budget; unbudgeted runs stay byte-identical.
                    self._series("gauge.syncache_bytes", "gauge").record(
                        now, float(syncache.occupancy_bytes))
            watchdog = getattr(listener, "watchdog", None)
            if watchdog is not None:
                self._series("gauge.overload_state", "gauge").record(
                    now, float(watchdog.state.value))
        if spec.histograms:
            hists = self.hub.hist
            for hist_name in spec.histograms:
                hist = hists.get(hist_name)
                if hist is None or hist.count == 0:
                    continue
                for label in spec.quantiles:
                    q = _QUANTILE_BY_LABEL[label]
                    self._series(
                        f"quantile.{hist_name}.{label}",
                        "quantile").record(now, hist.quantile(q))
        self.samples_taken += 1

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, TimeSeries]:
        return self.registry.as_dict()

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return self.registry.snapshot()


# ----------------------------------------------------------------------
def series_payload(series: Dict[str, TimeSeries]
                   ) -> Dict[str, Dict[str, object]]:
    """Name-sorted JSON-friendly payloads for a series dict."""
    return {name: series[name].as_payload() for name in sorted(series)}


def chrome_counter_events(series: Dict[str, TimeSeries],
                          pid: int = 1) -> List[Dict[str, object]]:
    """Chrome trace-event counter records (``"ph": "C"``).

    One counter track per series (keyed by ``pid`` + event name), one
    event per sample with the value under ``args.value`` — the layout
    Perfetto renders as a stepped counter curve alongside span tracks.
    Timestamps convert sim-seconds to trace microseconds like
    :mod:`repro.obs.spans` does, so both land on one timeline.
    """
    events: List[Dict[str, object]] = []
    for name in sorted(series):
        one = series[name]
        for t, value in one.samples():
            events.append({
                "name": one.name,
                "ph": "C",
                "ts": t * 1e6,
                "pid": pid,
                "tid": 0,
                "args": {"value": value},
            })
    events.sort(key=lambda event: (event["ts"], event["name"]))
    return events
