"""Bounded-memory per-source attribution: heavy hitters and sketches.

The per-host counter scopes in :mod:`repro.obs.counters` are exact but
unbounded — one dict entry per source — which cannot survive the
ROADMAP's million-host fluid/packet era (Arnaboldi & Morisset's IoT DoS
analysis works at 10^6 devices). This module provides the streaming
alternatives with *fixed* memory:

* :class:`SpaceSaving` — the Metwally–Abbadi–Agrawal top-K heavy-hitter
  summary. ``capacity`` slots total; when full, the minimum-count slot
  is recycled for the newcomer, inheriting its count as the documented
  overestimation error. Guarantees: every true heavy hitter with
  frequency > N/capacity is retained, and each reported count satisfies
  ``true <= reported <= true + error`` with ``error`` tracked per slot.
* :class:`CountMinSketch` — a depth × width counter matrix with seeded
  multiply-shift hashing. Point estimates never undercount and
  overcount by at most ``e/width × N`` with probability
  ``1 - e^-depth`` (the standard CM bound with width = e/ε). Hashing is
  integer multiply-shift over the (integer) source address, so
  estimates are deterministic across processes — no salted ``hash()``.
* :class:`SourceAttribution` — the listener-facing bundle: SYN arrivals
  (Space-Saving + Count-Min), terminal drops by cause, and puzzle
  verification failures, all keyed by the source address masked to a
  configurable prefix.

Eviction scans are O(capacity) per update in the worst case; capacity
is the spec's ``top_k`` (16 by default), attribution is opt-in
(``TelemetrySpec.attribution``), and the structures are plain picklable
data — deliberately simple over asymptotically optimal.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.net.addresses import format_ip

_MASK64 = (1 << 64) - 1


class SpaceSaving:
    """Deterministic Space-Saving top-K heavy-hitter summary."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError(
                f"SpaceSaving capacity must be >= 1, got {capacity!r}")
        self.capacity = int(capacity)
        self.evictions = 0
        self.total = 0
        self._counts: Dict[int, int] = {}
        self._errors: Dict[int, int] = {}

    def update(self, key: int, n: int = 1) -> None:
        counts = self._counts
        self.total += n
        if key in counts:
            counts[key] += n
            return
        if len(counts) < self.capacity:
            counts[key] = n
            self._errors[key] = 0
            return
        # Recycle the minimum-count slot; ties break on the smaller key
        # so eviction order is deterministic across runs and platforms.
        victim = min(counts, key=lambda k: (counts[k], k))
        floor = counts.pop(victim)
        self._errors.pop(victim)
        counts[key] = floor + n
        self._errors[key] = floor
        self.evictions += 1

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: int) -> bool:
        return key in self._counts

    def count(self, key: int) -> int:
        """Reported (over-)count for *key*; 0 when not tracked."""
        return self._counts.get(key, 0)

    def error(self, key: int) -> int:
        """Maximum overestimation of *key*'s reported count."""
        return self._errors.get(key, 0)

    def heavy_keys(self, min_count: int,
                   k: Optional[int] = None) -> List[int]:
        """Keys whose reported count is at least *min_count*, largest
        first (deterministic tie order) — how admission control picks
        the prefixes worth a tier of their own."""
        return [key for key, count, _ in self.top(k)
                if count >= min_count]

    def top(self, k: Optional[int] = None
            ) -> List[Tuple[int, int, int]]:
        """``(key, count, error)`` triples, largest count first.

        Ties break on the smaller key, so the ordering — like the
        eviction rule — is deterministic.
        """
        items = sorted(self._counts.items(),
                       key=lambda item: (-item[1], item[0]))
        if k is not None:
            items = items[:k]
        return [(key, count, self._errors[key]) for key, count in items]

    def as_payload(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "total": self.total,
            "evictions": self.evictions,
            "top": [
                {"source": format_ip(key), "count": count, "error": error}
                for key, count, error in self.top()
            ],
        }


class CountMinSketch:
    """Seeded Count-Min sketch over integer keys."""

    def __init__(self, width: int, depth: int, seed: int = 0) -> None:
        if width < 1 or depth < 1:
            raise SimulationError(
                "Count-Min sketch needs width >= 1 and depth >= 1")
        # Power-of-two width turns the row index into a cheap shift.
        self.width = 1 << max(0, (int(width) - 1).bit_length())
        self.depth = int(depth)
        self.seed = int(seed)
        self.total = 0
        self._shift = 64 - self.width.bit_length() + 1
        rng = random.Random(self.seed)
        # Multiply-shift hashing (Dietzfelbinger): odd 64-bit multiplier
        # per row, top bits select the column. Integer-only, so the
        # estimates are identical in every worker process — Python's
        # salted str hash never enters the picture.
        self._a = tuple(rng.randrange(1, 1 << 64) | 1
                        for _ in range(self.depth))
        self._b = tuple(rng.randrange(0, 1 << 64)
                        for _ in range(self.depth))
        self._rows = [[0] * self.width for _ in range(self.depth)]

    def _index(self, row: int, key: int) -> int:
        return ((self._a[row] * key + self._b[row]) & _MASK64) \
            >> self._shift

    def update(self, key: int, n: int = 1) -> None:
        self.total += n
        for row in range(self.depth):
            self._rows[row][self._index(row, key)] += n

    def estimate(self, key: int) -> int:
        """Point estimate for *key*: never below the true count."""
        return min(self._rows[row][self._index(row, key)]
                   for row in range(self.depth))

    def error_bound(self) -> float:
        """Additive overcount bound ``e/width × total`` (holds with
        probability ``1 - e^-depth``)."""
        return math.e / self.width * self.total

    def as_payload(self) -> Dict[str, object]:
        return {
            "width": self.width,
            "depth": self.depth,
            "seed": self.seed,
            "total": self.total,
            "error_bound": self.error_bound(),
        }


class SourceAttribution:
    """Bounded-memory per-source attack attribution for a listener.

    Tracks three dimensions, each through a :class:`SpaceSaving`
    summary (SYN arrivals additionally through a :class:`CountMinSketch`
    for point estimates on non-heavy sources):

    * ``syns`` — every SYN reaching the listening socket;
    * ``drops`` — terminal drop events, overall and per cause (lazily
      one summary per :data:`~repro.obs.counters.DROP_CAUSES` name, so
      the cause dimension is bounded by the catalogue, not the hosts);
    * ``puzzle_failures`` — rejected/replayed puzzle solutions.

    Keys are source addresses masked to ``prefix_bits``. Total memory is
    O(top_k × causes + cms_width × cms_depth), independent of how many
    distinct sources the attack spoofs. ``SynCacheEvictions`` is the one
    drop cause that never lands here: it is incremented inside the
    cache, where the evicted entry's opener is no longer on hand.
    """

    def __init__(self, top_k: int = 16, cms_width: int = 512,
                 cms_depth: int = 4, prefix_bits: int = 32,
                 seed: int = 0) -> None:
        if not 0 <= prefix_bits <= 32:
            raise SimulationError(
                f"prefix_bits must be in [0, 32], got {prefix_bits!r}")
        self.prefix_bits = int(prefix_bits)
        self._mask = (0xFFFFFFFF << (32 - self.prefix_bits)) & 0xFFFFFFFF
        self.syns = SpaceSaving(top_k)
        self.syn_sketch = CountMinSketch(cms_width, cms_depth, seed)
        self.drops = SpaceSaving(top_k)
        self.drops_by_cause: Dict[str, SpaceSaving] = {}
        self.puzzle_failures = SpaceSaving(top_k)
        self._top_k = int(top_k)

    @classmethod
    def from_spec(cls, spec, seed: int = 0) -> "SourceAttribution":
        """Build from a :class:`~repro.obs.timeseries.TelemetrySpec`."""
        return cls(top_k=spec.top_k, cms_width=spec.cms_width,
                   cms_depth=spec.cms_depth,
                   prefix_bits=spec.prefix_bits, seed=seed)

    # ------------------------------------------------------------------
    def key_for(self, src_ip: int) -> int:
        return src_ip & self._mask

    def on_syn(self, src_ip: int) -> None:
        key = src_ip & self._mask
        self.syns.update(key)
        self.syn_sketch.update(key)

    def on_drop(self, src_ip: int, cause: str) -> None:
        key = src_ip & self._mask
        self.drops.update(key)
        per_cause = self.drops_by_cause.get(cause)
        if per_cause is None:
            per_cause = SpaceSaving(self._top_k)
            self.drops_by_cause[cause] = per_cause
        per_cause.update(key)

    def on_puzzle_failure(self, src_ip: int) -> None:
        self.puzzle_failures.update(src_ip & self._mask)

    # ------------------------------------------------------------------
    def estimate_syns(self, src_ip: int) -> int:
        """Count-Min estimate of SYNs from a source (≥ true count)."""
        return self.syn_sketch.estimate(src_ip & self._mask)

    def snapshot(self) -> Dict[str, object]:
        """Deterministic JSON-friendly digest of every dimension."""
        return {
            "prefix_bits": self.prefix_bits,
            "syns": self.syns.as_payload(),
            "syn_sketch": self.syn_sketch.as_payload(),
            "drops": self.drops.as_payload(),
            "drops_by_cause": {
                cause: self.drops_by_cause[cause].as_payload()
                for cause in sorted(self.drops_by_cause)
            },
            "puzzle_failures": self.puzzle_failures.as_payload(),
        }

    def render(self) -> str:
        """Human-readable top-source table (the ``top`` view's detail)."""
        lines = [f"top sources by SYNs (/{self.prefix_bits}):"]
        for key, count, error in self.syns.top():
            line = f"    {format_ip(key):<15s} {count:>10,d}"
            if error:
                line += f" (±{error:,d})"
            lines.append(line)
        if len(lines) == 1:
            lines.append("    (no SYNs seen)")
        if len(self.drops):
            lines.append("top sources by drops:")
            for key, count, error in self.drops.top():
                lines.append(f"    {format_ip(key):<15s} {count:>10,d}")
        return "\n".join(lines)
