"""Micro-benchmark harness: deterministic hot-path yardsticks as manifests.

The ROADMAP's engine-speed era ("10× the event engine", ≥500k events/s)
needs per-hot-path yardsticks that are **versioned, diffable, and
CI-gated** — pytest-benchmark tables printed to a terminal are none of
those. This module is a registry of *deterministic, self-timing*
micro-benchmarks whose results land as ``BENCH_micro_<name>.json``
manifests in the exact shape :mod:`repro.obs.benchcmp` already gates:

* a ``perf`` block (``wall_seconds``, ``events_per_second``) compared
  direction-aware inside the perf tolerance band;
* a ``counters`` block proving the benchmark did exactly the same
  *work* as the baseline (schedule/cancel/fire counts, bytes encoded,
  cache evictions …) — compared exactly, so a micro-benchmark whose
  workload silently changed fails the gate even if it got faster;
* a per-operation wall-time histogram (``micro_op.<name>``) whose
  quantiles catch latency-shape regressions that survive a mean.

Each registered benchmark is a plain function ``fn(iterations) ->
Dict[str, int]``: it performs ``iterations`` units of deterministic work
(fixed seeds, fixed mixes — no wall-clock-dependent control flow) and
returns its work counters. The harness times the call, repeats it, and
keeps the **best** wall time (minimum — the standard micro-benchmark
noise filter), so ``events_per_second`` is the machine's demonstrated
capability, not its scheduling luck.

The built-in suite covers the hot paths the optimization PRs will touch:

* ``timer_churn`` — schedule/cancel/pop mixes against
  :class:`~repro.sim.engine.Engine` mimicking SYN-ACK RTO patterns
  (most handshake timers are cancelled, some fire) — the ROADMAP's
  ``BENCH_micro_timer_churn.json`` yardstick;
* ``engine_dispatch`` — pure callback-chain dispatch throughput;
* ``puzzle_codec`` — challenge/solution option-block encode/decode;
* ``syncache_churn`` — SYN cache insert/complete/expire under bucket
  pressure;
* ``packet_churn`` — handshake packet construction + size accounting;
* ``hist_record`` — histogram record + quantile read throughput.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ExperimentError
from repro.obs.hist import Histogram

#: Manifest-name prefix every harness manifest carries: the file for
#: benchmark ``timer_churn`` is ``BENCH_micro_timer_churn.json``.
MICRO_PREFIX = "micro_"

#: The histogram family micro manifests use for per-op wall time.
MICRO_HIST_FAMILY = "micro_op"

#: The counters scope micro manifests put their work proof under.
MICRO_SCOPE = "micro"


@dataclass(frozen=True)
class MicroBenchmark:
    """One registered micro-benchmark."""

    name: str
    description: str
    #: Iteration count at ``scale=1.0`` — sized so one repeat lands in
    #: the hundreds of milliseconds on the seed machine.
    default_iterations: int
    fn: Callable[[int], Dict[str, int]]


REGISTRY: Dict[str, MicroBenchmark] = {}


def register(name: str, description: str, default_iterations: int):
    """Decorator: add ``fn(iterations) -> counters`` to the registry."""
    def decorator(fn: Callable[[int], Dict[str, int]]):
        if name in REGISTRY:
            raise ExperimentError(f"micro-benchmark {name!r} registered "
                                  f"twice")
        REGISTRY[name] = MicroBenchmark(name=name, description=description,
                                        default_iterations=default_iterations,
                                        fn=fn)
        return fn
    return decorator


@dataclass
class MicroResult:
    """One benchmark's timed runs plus its deterministic work counters."""

    name: str
    description: str
    iterations: int
    repeats: int
    #: Wall seconds of every repeat, in run order.
    walls: List[float]
    #: Work counters from the final repeat (identical across repeats —
    #: the harness asserts it).
    counters: Dict[str, int]
    #: Per-operation wall time, one sample per repeat.
    hist: Histogram = field(default=None)  # type: ignore[assignment]

    @property
    def best_wall(self) -> float:
        return min(self.walls)

    @property
    def ops_per_second(self) -> float:
        best = self.best_wall
        return self.iterations / best if best > 0 else 0.0

    @property
    def per_op_seconds(self) -> float:
        return self.best_wall / self.iterations if self.iterations else 0.0

    def payload(self) -> Dict[str, object]:
        """Manifest body in the shape ``bench-compare`` gates.

        ``counters`` compare exactly (deterministic work), ``perf``
        direction-aware, and the ``micro_op.<name>`` histogram's
        quantiles catch per-op latency regressions.
        """
        return {
            "name": f"{MICRO_PREFIX}{self.name}",
            "micro": {
                "description": self.description,
                "iterations": self.iterations,
                "repeats": self.repeats,
                "wall_seconds_all": list(self.walls),
                "per_op_seconds": self.per_op_seconds,
            },
            "counters": {MICRO_SCOPE: dict(self.counters)},
            "perf": {
                "wall_seconds": self.best_wall,
                "events_per_second": self.ops_per_second,
            },
            "histograms": {self.hist.name: self.hist.as_payload()},
        }

    def render(self) -> str:
        per_op = self.per_op_seconds
        return (f"{self.name:>16s}  {self.iterations:>9d} ops  "
                f"{self.best_wall:8.4f}s best of {self.repeats}  "
                f"{self.ops_per_second:>12,.0f} ops/s  "
                f"{per_op * 1e6:9.3f} us/op")


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
def run_benchmark(name: str, repeats: int = 3,
                  scale: float = 1.0) -> MicroResult:
    """Run one registered benchmark; repeats must agree on counters."""
    bench = REGISTRY.get(name)
    if bench is None:
        raise ExperimentError(
            f"unknown micro-benchmark {name!r} "
            f"(registered: {', '.join(sorted(REGISTRY))})")
    if repeats < 1:
        raise ExperimentError(f"repeats must be >= 1, got {repeats}")
    if scale <= 0:
        raise ExperimentError(f"scale must be > 0, got {scale}")
    iterations = max(1, int(bench.default_iterations * scale))
    walls: List[float] = []
    counters: Optional[Dict[str, int]] = None
    hist = Histogram(f"{MICRO_HIST_FAMILY}.{name}")
    for _ in range(repeats):
        started = perf_counter()
        produced = bench.fn(iterations)
        wall = perf_counter() - started
        walls.append(wall)
        hist.record(wall / iterations)
        if counters is not None and produced != counters:
            raise ExperimentError(
                f"micro-benchmark {name!r} is not deterministic: "
                f"repeat counters {produced} != {counters}")
        counters = produced
    return MicroResult(name=name, description=bench.description,
                       iterations=iterations, repeats=repeats,
                       walls=walls, counters=dict(counters or {}),
                       hist=hist)


def run_micro(names: Optional[Sequence[str]] = None, repeats: int = 3,
              scale: float = 1.0) -> List[MicroResult]:
    """Run a subset (default: all) of the registry, name-sorted."""
    selected = sorted(REGISTRY) if names is None else list(names)
    return [run_benchmark(name, repeats=repeats, scale=scale)
            for name in selected]


def write_micro_manifests(results: Sequence[MicroResult],
                          directory) -> List:
    """Persist each result as ``<dir>/BENCH_micro_<name>.json``."""
    from repro.obs.manifest import write_manifest

    paths = []
    for result in results:
        payload = result.payload()
        paths.append(write_manifest(
            f"{directory}/BENCH_{payload['name']}.json", payload))
    return paths


def render_results(results: Sequence[MicroResult]) -> str:
    header = (f"{'benchmark':>16s}  {'iterations':>13s}  "
              f"{'wall':>18s}  {'throughput':>14s}  {'per-op':>12s}")
    return "\n".join([header] + [result.render() for result in results])


# ----------------------------------------------------------------------
# The built-in suite
# ----------------------------------------------------------------------
@register("timer_churn",
          "Engine schedule/cancel/pop mix mimicking SYN-ACK RTO churn "
          "(6 of 8 timers cancelled before firing)",
          default_iterations=200_000)
def _bench_timer_churn(iterations: int) -> Dict[str, int]:
    from repro.sim.engine import Engine

    engine = Engine()
    fired = [0]

    def on_rto() -> None:
        fired[0] += 1

    # Every iteration arms one retransmission timer ~an RTO out; every
    # 8 arrivals, 6 handshakes "complete" (their timers cancel) and the
    # engine advances so due timers pop — the cancel-heavy pattern that
    # makes lazy deletion + compaction (and later the timer wheel) matter.
    #
    # The loop is written as straight-line rounds rather than the
    # obvious deque-of-pending formulation so it times engine calls,
    # not container bookkeeping: once the first 8 arrivals trigger the
    # first completion burst, the window always carries exactly two
    # pending timers into the next 6-arrival round. The op sequence —
    # delay values, schedule order, cancel order, run windows — is
    # identical to the deque version, so every counter matches it.
    d = tuple(0.057 + (j & 7) * 1e-4 for j in range(8))
    schedule, run = engine.schedule, engine.run
    i = 0
    if iterations >= 8:
        e0 = schedule(d[0], on_rto)
        e1 = schedule(d[1], on_rto)
        e2 = schedule(d[2], on_rto)
        e3 = schedule(d[3], on_rto)
        e4 = schedule(d[4], on_rto)
        e5 = schedule(d[5], on_rto)
        a = schedule(d[6], on_rto)
        b = schedule(d[7], on_rto)
        e0.cancel(); e1.cancel(); e2.cancel()
        e3.cancel(); e4.cancel(); e5.cancel()
        run(until=engine.now + 2e-3)
        i = 8
        while i + 6 <= iterations:
            c0 = schedule(d[i & 7], on_rto)
            c1 = schedule(d[(i + 1) & 7], on_rto)
            c2 = schedule(d[(i + 2) & 7], on_rto)
            c3 = schedule(d[(i + 3) & 7], on_rto)
            c4 = schedule(d[(i + 4) & 7], on_rto)
            c5 = schedule(d[(i + 5) & 7], on_rto)
            a.cancel(); b.cancel()
            c0.cancel(); c1.cancel(); c2.cancel(); c3.cancel()
            run(until=engine.now + 2e-3)
            a, b = c4, c5
            i += 6
    # Tail arrivals that never fill a completion window just schedule.
    while i < iterations:
        schedule(d[i & 7], on_rto)
        i += 1
    engine.run()
    stats = engine.stats()
    return {
        "scheduled": int(stats["events_scheduled"]),
        "fired": fired[0],
        "cancelled": int(stats["events_cancelled"]),
        "processed": int(stats["events_processed"]),
        "compactions": int(stats["compactions"]),
        "heap_high_water": int(stats["heap_high_water"]),
    }


@register("engine_dispatch",
          "pure callback-chain dispatch throughput of the DES core",
          default_iterations=300_000)
def _bench_engine_dispatch(iterations: int) -> Dict[str, int]:
    from repro.sim.engine import Engine

    engine = Engine()
    schedule = engine.schedule

    def chain(remaining: int) -> None:
        if remaining:
            schedule(0.001, chain, remaining - 1)

    # Several shorter chains rather than one deep one: keeps a few
    # events resident so the heap is never trivially empty.
    chains = 4
    per_chain = iterations // chains
    for _ in range(chains):
        chain(per_chain)
    engine.run()
    return {
        "processed": engine.events_processed,
        "scheduled": int(engine.stats()["events_scheduled"]),
    }


@register("puzzle_codec",
          "challenge + solution option-block encode/decode roundtrip",
          default_iterations=60_000)
def _bench_puzzle_codec(iterations: int) -> Dict[str, int]:
    from repro.puzzles.codec import (decode_challenge, decode_solution,
                                     encode_challenge, encode_solution)
    from repro.puzzles.juels import (FlowBinding, JuelsBrainardScheme,
                                     ModeledSolver)
    from repro.puzzles.params import PuzzleParams

    binding = FlowBinding(src_ip=0x0A000002, dst_ip=0x0A000001,
                          src_port=43210, dst_port=80, isn=7)
    scheme = JuelsBrainardScheme(mode="modeled")
    params = PuzzleParams(k=2, m=17)
    challenge = scheme.make_challenge(params, binding, 1.0)
    solution = ModeledSolver().solve(challenge, random.Random(5))
    wire_bytes = 0
    for _ in range(iterations):
        blob = encode_challenge(challenge)
        decode_challenge(blob, binding)
        sblob = encode_solution(solution)
        decode_solution(sblob, params)
        wire_bytes += len(blob) + len(sblob)
    return {"roundtrips": iterations, "wire_bytes": wire_bytes}


@register("syncache_churn",
          "SYN cache insert/complete/expire under bucket pressure",
          default_iterations=120_000)
def _bench_syncache_churn(iterations: int) -> Dict[str, int]:
    from repro.tcp.syncache import CacheEntry, SynCache

    # Small table so the eviction path (the attack-relevant branch) is
    # actually exercised, not just the happy path.
    cache = SynCache(bucket_count=64, bucket_limit=8)
    completed = 0
    for i in range(iterations):
        flow = (0x0A000000 + (i % 4096), 1024 + (i % 60000), 80)
        cache.insert(CacheEntry(flow=flow, remote_isn=i, local_isn=i ^ 7,
                                mss=1460, wscale=7,
                                created_at=i * 1e-4))
        # Half the handshakes complete (ACK arrives) ...
        if i & 1:
            if cache.complete(flow) is not None:
                completed += 1
        # ... and the reaper sweeps periodically.
        if (i & 0x3FF) == 0x3FF:
            cache.expire_older_than((i - 2048) * 1e-4)
    # The O(1) occupancy counter must agree with a full bucket walk —
    # churn is exactly the workload that would expose drift.
    if len(cache) != cache.occupancy_recount():
        raise AssertionError(
            f"syncache occupancy drifted: len()={len(cache)} but "
            f"recount={cache.occupancy_recount()}")
    return {
        "insertions": cache.insertions,
        "completions": completed,
        "evictions": cache.evictions,
        "expired": cache.expired,
        "resident": len(cache),
    }


@register("packet_churn",
          "handshake packet construction + on-wire size accounting",
          default_iterations=80_000)
def _bench_packet_churn(iterations: int) -> Dict[str, int]:
    from repro.net.packet import Packet, TCPFlags, TCPOptions
    from repro.puzzles.juels import (FlowBinding, JuelsBrainardScheme,
                                     ModeledSolver)
    from repro.puzzles.params import PuzzleParams

    binding = FlowBinding(src_ip=0x0A000002, dst_ip=0x0A000001,
                          src_port=43210, dst_port=80, isn=7)
    scheme = JuelsBrainardScheme(mode="modeled")
    params = PuzzleParams(k=2, m=17)
    challenge = scheme.make_challenge(params, binding, 1.0)
    solution = ModeledSolver().solve(challenge, random.Random(5))
    total_bytes = 0
    for i in range(iterations):
        syn = Packet(src_ip=binding.src_ip, dst_ip=binding.dst_ip,
                     src_port=binding.src_port, dst_port=80, seq=i,
                     flags=TCPFlags.SYN,
                     options=TCPOptions(mss=1460, wscale=7))
        synack = Packet(src_ip=binding.dst_ip, dst_ip=binding.src_ip,
                        src_port=80, dst_port=binding.src_port,
                        seq=i ^ 5, ack=i + 1,
                        flags=TCPFlags.SYN | TCPFlags.ACK,
                        options=TCPOptions(challenge=challenge))
        ack = Packet(src_ip=binding.src_ip, dst_ip=binding.dst_ip,
                     src_port=binding.src_port, dst_port=80, seq=i + 1,
                     ack=(i ^ 5) + 1, flags=TCPFlags.ACK,
                     options=TCPOptions(solution=solution))
        total_bytes += syn.size_bytes + synack.size_bytes + ack.size_bytes
    return {"packets": 3 * iterations, "wire_bytes": total_bytes}


@register("hist_record",
          "histogram record + quantile read throughput",
          default_iterations=400_000)
def _bench_hist_record(iterations: int) -> Dict[str, int]:
    from repro.obs.hist import HistogramRegistry

    registry = HistogramRegistry()
    record = registry.record
    # A deterministic latency-ish sweep across several decades, so the
    # log-bucketing path sees realistic spread rather than one bucket.
    for i in range(iterations):
        record("handshake_latency.bench",
               1e-5 * (1.0 + (i % 997)) * (1 + (i % 7)))
        if (i & 0xFFF) == 0xFFF:
            registry.hist("handshake_latency.bench").quantile(0.95)
    hist = registry.hist("handshake_latency.bench")
    checksum = sum(index * count for index, count
                   in sorted(hist.counts.items()))
    return {
        "records": hist.count,
        "buckets_hit": len(hist.counts),
        "bucket_checksum": checksum,
        "p95_bucket": hist.bucket_index(hist.quantile(0.95)),
    }


@register("fabric_fold",
          "cached 3-link path fold (clean + lossy + droptail phases)",
          default_iterations=100_000)
def _bench_fabric_fold(iterations: int) -> Dict[str, int]:
    from repro.net.fabric import FabricPath
    from repro.net.link import Link

    # The fig7 flood topology in miniature: an access link that can
    # droptail, a fast clean backbone hop, and a slow egress. The lossy
    # variant adds the loss-draw branch (per-packet rng.random()) the
    # flood suites exercise under fault injection.
    clean = FabricPath([
        Link(rate_bps=100e6, delay=5e-4, buffer_bytes=64 * 1024),
        Link(rate_bps=1e9, delay=2e-4),
        Link(rate_bps=10e6, delay=1e-3, buffer_bytes=16 * 1024),
    ])
    lossy = FabricPath([
        Link(rate_bps=100e6, delay=5e-4, buffer_bytes=64 * 1024),
        Link(rate_bps=1e9, delay=2e-4, loss_rate=0.02,
             rng=random.Random(20260807)),
        Link(rate_bps=10e6, delay=1e-3, buffer_bytes=16 * 1024),
    ])
    sizes = random.Random(20260808)
    delivered = dropped = 0
    now = 0.0
    clean_fold = clean.fold
    lossy_fold = lossy.fold
    for _ in range(iterations):
        size = sizes.randint(60, 1514)
        for fold in (clean_fold, lossy_fold):
            arrival = fold(now, size)
            if arrival is None:
                dropped += 1
            else:
                delivered += 1
        # Offered load deliberately exceeds the egress drain rate part
        # of the time, so the droptail branch is a steady fraction of
        # folds rather than a cold path.
        now += 1.1e-3 if (delivered & 7) == 0 else 2.0e-4
    links = list(clean.links) + list(lossy.links)
    return {
        "folds": 2 * iterations,
        "delivered": delivered,
        "dropped": dropped,
        "lost": sum(lk.packets_lost for lk in links),
        "droptailed": sum(lk.packets_dropped for lk in links),
        "bytes_sent": sum(lk.bytes_sent for lk in links),
    }


def self_check(result: MicroResult) -> None:
    """Sanity bounds every freshly-run result must satisfy."""
    if result.best_wall <= 0.0 or not math.isfinite(result.best_wall):
        raise ExperimentError(
            f"micro-benchmark {result.name!r} produced a non-positive "
            f"wall time {result.best_wall!r}")
    if not result.counters:
        raise ExperimentError(
            f"micro-benchmark {result.name!r} returned no work counters")
