"""Run manifests: persist a run's counters + profile as ``BENCH_*.json``.

Every benchmark run should leave behind a machine-readable record of what
the stack actually did — counters, engine statistics, and (when profiling
was on) the per-callback wall-time table — so the perf trajectory across
PRs can be read straight from ``benchmarks/output/BENCH_*.json`` instead
of being reconstructed from printed tables.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
from typing import Dict, Optional

from repro.obs.counters import drop_attribution, established_total
from repro.obs.profile import EngineProfiler


def environment_info() -> Dict[str, str]:
    """Toolchain fingerprint stamped into every manifest."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
    }


def engine_payload(engine) -> Dict[str, object]:
    """``engine.stats()`` (already JSON-friendly)."""
    return dict(engine.stats())


def hub_payload(hub, engine=None,
                profiler: Optional[EngineProfiler] = None
                ) -> Dict[str, object]:
    """Counters (+ per-listener drop attribution), histograms, and
    optional engine stats / profile from one
    :class:`~repro.obs.Observability` hub."""
    payload: Dict[str, object] = {"counters": hub.counters.snapshot()}
    hists = getattr(hub, "hist", None)
    if hists is not None and len(hists):
        payload["histograms"] = hists.snapshot()
    attribution = {}
    for scope in hub.counters.scopes():
        drops = drop_attribution(scope)
        established = established_total(scope)
        if drops or established:
            attribution[scope.name] = {
                "established": established,
                "drops": drops,
                "drops_total": sum(drops.values()),
            }
    if attribution:
        payload["handshake_attribution"] = attribution
    if engine is not None:
        payload["engine"] = engine_payload(engine)
    if profiler is not None:
        payload["profile"] = profiler.snapshot()
        if profiler.hist.count:
            payload.setdefault("histograms", {})
            payload["histograms"][profiler.hist.name] = \
                profiler.hist.as_payload()
    return payload


def scenario_payload(result) -> Dict[str, object]:
    """Manifest body for a :class:`~repro.experiments.scenario.ScenarioResult`.

    Duck-typed on purpose (``.engine`` with an ``obs`` hub, plus the
    listener's stats) so this module never imports the experiments layer.
    Picklable :class:`~repro.experiments.summary.ScenarioSummary` objects
    (no live engine) are detected and routed to :func:`summary_payload`.
    """
    from repro.obs import hub_for

    if not hasattr(result, "engine"):
        return summary_payload(result)
    engine = result.engine
    hub = hub_for(engine)
    profiler = getattr(result, "profiler", None)
    payload = hub_payload(hub, engine=engine, profiler=profiler)
    sampler = getattr(result, "sampler", None)
    if sampler is not None and len(sampler.registry):
        payload["timeseries"] = sampler.snapshot()
    source = getattr(result, "attribution", None)
    if source is not None:
        payload["attribution"] = source.snapshot()
    stats = result.server_app.listener.stats
    payload["listener_stats"] = {
        field: getattr(stats, field)
        for field in sorted(vars(stats))
    }
    return payload


def summary_payload(summary) -> Dict[str, object]:
    """Manifest body for a scenario *summary* (a finished, distilled run).

    Duck-typed like :func:`scenario_payload`: anything carrying
    ``counters`` / ``engine_stats`` / ``listener_stats`` (and optionally
    ``profile``) mappings works — the engine statistics here include the
    wall-time fields, since manifests exist to track them.
    """
    payload: Dict[str, object] = {
        "counters": dict(summary.counters),
        "engine": dict(summary.engine_stats),
    }
    hists = getattr(summary, "histograms", None)
    if hists:
        payload["histograms"] = {name: hists[name].as_payload()
                                 for name in sorted(hists)}
    attribution = {}
    for name, counters in summary.counters.items():
        drops = drop_attribution(counters)
        established = established_total(counters)
        if drops or established:
            attribution[name] = {
                "established": established,
                "drops": drops,
                "drops_total": sum(drops.values()),
            }
    if attribution:
        payload["handshake_attribution"] = attribution
    profile = getattr(summary, "profile", None)
    if profile is not None:
        payload["profile"] = profile
    series = getattr(summary, "timeseries", None)
    if series:
        payload["timeseries"] = {name: series[name].as_payload()
                                 for name in sorted(series)}
    source = getattr(summary, "attribution", None)
    if source is not None:
        payload["attribution"] = source
    overload = getattr(summary, "overload", None)
    if overload is not None:
        payload["overload"] = overload
    stats = summary.listener_stats
    payload["listener_stats"] = {
        field: getattr(stats, field)
        for field in sorted(vars(stats))
    }
    return payload


def runner_payload(stats) -> Dict[str, object]:
    """Manifest block for a :class:`~repro.runner.RunnerStats` (or any
    object with an ``as_payload()``), under the key conventions the bench
    trajectory tooling reads."""
    payload = stats.as_payload() if hasattr(stats, "as_payload") \
        else dict(stats)
    return payload


def write_manifest(path, payload: Dict[str, object]) -> pathlib.Path:
    """Write *payload* (+ environment stamp) as pretty sorted JSON."""
    path = pathlib.Path(path)
    body = dict(payload)
    body.setdefault("environment", environment_info())
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(body, indent=2, sort_keys=True) + "\n")
    return path
