"""M/M/1 abstraction of the server (paper §4.1).

The model abstracts the server's request handling as an M/M/1 queue with
service rate ``µ``; the expected *system* delay under aggregate arrival rate
``x̄ < µ`` is ``S(x̄) = 1/(µ − x̄)``. The paper argues this abstraction
suffices because state-exhaustion attacks target the TCP stack independently
of the application — only the drain rate of the accept queue matters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GameError


def expected_service_time(total_rate: float, mu: float) -> float:
    """``S(x̄) = 1/(µ − x̄)`` for ``x̄ < µ``; raises when unstable."""
    if mu <= 0:
        raise GameError(f"service rate mu must be positive, got {mu!r}")
    if total_rate < 0:
        raise GameError(f"arrival rate must be >= 0, got {total_rate!r}")
    if total_rate >= mu:
        raise GameError(
            f"arrival rate {total_rate!r} >= service rate {mu!r}: "
            f"the M/M/1 queue is unstable")
    return 1.0 / (mu - total_rate)


@dataclass(frozen=True)
class MM1Queue:
    """Closed-form M/M/1 performance measures for a given ``µ``.

    These are textbook identities; they back both the utility model and the
    analytical cross-checks in the test suite (the simulated accept loop's
    delay should track ``S(x̄)`` under Poisson load).
    """

    mu: float

    def __post_init__(self) -> None:
        if self.mu <= 0:
            raise GameError(f"mu must be positive, got {self.mu!r}")

    def utilization(self, rate: float) -> float:
        """``ρ = x̄/µ``."""
        if rate < 0:
            raise GameError(f"rate must be >= 0, got {rate!r}")
        return rate / self.mu

    def is_stable(self, rate: float) -> bool:
        return 0 <= rate < self.mu

    def expected_system_time(self, rate: float) -> float:
        """``W = 1/(µ − x̄)`` — waiting plus service (the paper's S)."""
        return expected_service_time(rate, self.mu)

    def expected_queue_length(self, rate: float) -> float:
        """``L = ρ/(1 − ρ)`` — expected number in system (Little's law)."""
        rho = self.utilization(rate)
        if rho >= 1.0:
            raise GameError("unstable queue has unbounded length")
        return rho / (1.0 - rho)

    def expected_waiting_time(self, rate: float) -> float:
        """``Wq = W − 1/µ`` — time in queue excluding service."""
        return self.expected_system_time(rate) - 1.0 / self.mu
