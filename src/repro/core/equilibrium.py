"""Finite-N Nash equilibrium of the client game (Appendix A, Eq. 8–11).

For a fixed difficulty ``ℓ`` the clients' equilibrium satisfies the first
order condition of the potential ``H``::

    w_i/(1 + x_i) − ℓ − 1/(µ − x̄)² = 0            (Eq. 8)

With ``y_i = 1 + x_i``, ``ȳ = N + x̄`` and ``w̄ = Σ w_i`` this collapses to a
single scalar equation in ``ȳ``::

    L̃(ȳ) = w̄/ȳ − ℓ − 1/(µ + N − ȳ)² = 0          (Eq. 9)

on ``N ≤ ȳ < N + µ``. ``L̃`` is strictly decreasing, so a solution exists iff
``L̃(N) > 0``, i.e. iff the difficulty is below the feasibility bound::

    ℓ < r̂ = w̄/N − 1/µ²                            (Eq. 10)

Per-user rates follow from ``y_i = (w_i/w̄)·ȳ``. The interior solution has
all ``x_i > 0`` iff ``ȳ > w̄/w_i`` for every user (Eq. 11); when some users'
valuations are too low they drop out (``x_i = 0``) and the reduced game is
re-solved over the active set — the standard water-filling iteration,
exposed as :meth:`ClientGame.solve` with ``allow_dropout=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from scipy.optimize import brentq

from repro.core.mm1 import expected_service_time
from repro.core.utility import client_utility
from repro.errors import GameError


@dataclass(frozen=True)
class NashSolution:
    """Equilibrium of the client game at a fixed difficulty.

    ``feasible`` is False when the difficulty exceeded the bound of Eq. (10)
    for every subset of users — all rates are then zero (universal dropout).
    """

    difficulty: float
    rates: List[float]
    weights: List[float]
    mu: float
    feasible: bool

    @property
    def total_rate(self) -> float:
        """``x̄* = Σ x_i*``."""
        return sum(self.rates)

    @property
    def y_bar(self) -> float:
        """``ȳ = N + x̄`` in the appendix's change of variables."""
        return len(self.rates) + self.total_rate

    @property
    def active_users(self) -> int:
        """Users with strictly positive equilibrium rates."""
        return sum(1 for x in self.rates if x > 0)

    @property
    def service_time(self) -> float:
        """``S(x̄*)`` at equilibrium."""
        return expected_service_time(self.total_rate, self.mu)

    def utilities(self) -> List[float]:
        """Per-user equilibrium utilities ``u_i(x*, p)``."""
        total = self.total_rate
        return [
            client_utility(x, total - x, self.difficulty, w, self.mu)
            for x, w in zip(self.rates, self.weights)
        ]

    def first_order_residuals(self) -> List[float]:
        """``w_i/(1+x_i) − ℓ − 1/(µ−x̄)²`` for active users (≈0 at a true
        interior equilibrium; ≤0 for users pinned at zero)."""
        total = self.total_rate
        congestion = 1.0 / (self.mu - total) ** 2
        return [
            w / (1.0 + x) - self.difficulty - congestion
            for x, w in zip(self.rates, self.weights)
        ]


class ClientGame:
    """The followers' game: N selfish clients facing difficulty ``ℓ``.

    Parameters
    ----------
    weights:
        Per-user valuations ``w_i`` (expected hashes a user will pay per
        request). Must be positive.
    mu:
        The server's M/M/1 service rate.
    """

    def __init__(self, weights: Sequence[float], mu: float) -> None:
        if not weights:
            raise GameError("the game needs at least one client")
        if any(w <= 0 for w in weights):
            raise GameError("all valuations w_i must be positive")
        if mu <= 0:
            raise GameError(f"mu must be positive, got {mu!r}")
        self.weights = list(weights)
        self.mu = float(mu)

    @classmethod
    def homogeneous(cls, n_users: int, w: float, mu: float) -> "ClientGame":
        """N identical users with valuation ``w`` — the paper's main case."""
        if n_users < 1:
            raise GameError(f"n_users must be >= 1, got {n_users}")
        return cls([w] * n_users, mu)

    # ------------------------------------------------------------------
    # Structural quantities
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        return len(self.weights)

    @property
    def w_bar(self) -> float:
        """``w̄ = Σ w_i``."""
        return sum(self.weights)

    @property
    def w_av(self) -> float:
        """``w_av = w̄/N``."""
        return self.w_bar / self.n_users

    @property
    def alpha(self) -> float:
        """``α = µ/N`` — asymptotic per-user service capacity."""
        return self.mu / self.n_users

    @property
    def max_feasible_difficulty(self) -> float:
        """``r̂ = w̄/N − 1/µ²`` (Eq. 10): above this no equilibrium exists."""
        return self.w_av - 1.0 / self.mu ** 2

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _solve_y_bar(self, difficulty: float, weights: Sequence[float]
                     ) -> Optional[float]:
        """Root of Eq. (9) for the sub-game over *weights*, or None."""
        n = len(weights)
        w_bar = sum(weights)

        def l_tilde(y: float) -> float:
            return (w_bar / y - difficulty
                    - 1.0 / (self.mu + n - y) ** 2)

        if l_tilde(n) <= 0:
            return None  # infeasible: Eq. (10) violated for this subset
        # L̃ → −∞ as ȳ → N+µ; back off from the pole until the sign flips.
        hi = n + self.mu
        for shrink in range(1, 60):
            candidate = n + self.mu * (1.0 - 2.0 ** -shrink)
            if l_tilde(candidate) < 0:
                hi = candidate
                break
        else:  # pragma: no cover - numerically unreachable
            raise GameError("could not bracket the equilibrium root")
        return float(brentq(l_tilde, n, hi, xtol=1e-12, rtol=1e-14))

    def solve(self, difficulty: float,
              allow_dropout: bool = True) -> NashSolution:
        """Nash equilibrium rates at difficulty ``ℓ`` (expected hashes).

        With ``allow_dropout`` (default), users whose interior rate would be
        negative are pinned to zero and the reduced game is re-solved; the
        returned solution is the true equilibrium of the constrained game.
        Without it, a :class:`GameError` is raised when the interior
        solution violates the participation condition (Eq. 11).
        """
        if difficulty < 0:
            raise GameError(f"difficulty must be >= 0, got {difficulty!r}")

        active = list(range(self.n_users))
        while active:
            weights = [self.weights[i] for i in active]
            y_bar = self._solve_y_bar(difficulty, weights)
            if y_bar is None:
                active = []
                break
            w_bar = sum(weights)
            y_rates = [w * y_bar / w_bar for w in weights]
            dropouts = [i for i, y in zip(active, y_rates) if y <= 1.0]
            if not dropouts:
                rates = [0.0] * self.n_users
                for i, y in zip(active, y_rates):
                    rates[i] = y - 1.0
                return NashSolution(difficulty=difficulty, rates=rates,
                                    weights=list(self.weights), mu=self.mu,
                                    feasible=True)
            if not allow_dropout:
                raise GameError(
                    f"participation condition (Eq. 11) violated for "
                    f"{len(dropouts)} user(s) at difficulty {difficulty!r}")
            active = [i for i in active if i not in set(dropouts)]

        # Everyone dropped out (or the game was infeasible outright).
        if not allow_dropout:
            raise GameError(
                f"difficulty {difficulty!r} exceeds the feasibility bound "
                f"r̂ = {self.max_feasible_difficulty!r} (Eq. 10)")
        return NashSolution(difficulty=difficulty,
                            rates=[0.0] * self.n_users,
                            weights=list(self.weights), mu=self.mu,
                            feasible=False)

    def total_rate(self, difficulty: float) -> float:
        """``x̄*(ℓ)`` — shorthand used by the provider problem."""
        return self.solve(difficulty).total_rate
