"""Theorem 1 closed forms and the practical difficulty rule (§4.1–§4.4).

Asymptotically (``N → ∞`` with ``w̄/N → w_av`` and ``µ/N → α``), the
provider's optimal difficulty is::

    ℓ(p*) = k*·2^(m*−1) = w_av/(α + 1)             (Eq. 18)

with the second-order refinement::

    ℓ(p*) ~ w_av/(α+1) + (2α − 1)/(γ^(2/3)·N^(2/3))   (Eq. 17)

**Note on the paper's Theorem 1 statement.** Equation (6) in the body prints
``ℓ(p*) = w_av(α+1)``, but the appendix derivation (Eq. 18) and the §4.2
analysis ("a well-provisioned server … asks its clients to solve *less*
complex challenges"; "p* ≃ w_av" when α is small) both require the
**division** form, which is what we implement. The worked example of §4.4
(``w_av = 140630, α = 1.1 → (k*, m*) = (2, 17)``) is reproduced by this form
with the round-up rule ``m = ceil(log2(ℓ*/k)) + 1``:
``ℓ* = 140630/2.1 ≈ 66966``; with ``k = 2``, ``ceil(log2(33483)) + 1 = 17``.
"""

from __future__ import annotations

from repro.core.difficulty import params_for_difficulty
from repro.errors import GameError
from repro.puzzles.params import PuzzleParams


def equilibrium_difficulty(w_av: float, alpha: float) -> float:
    """``ℓ(p*) = w_av/(α+1)`` — the asymptotic Nash difficulty (Eq. 18).

    Parameters
    ----------
    w_av:
        Average client valuation, in expected hash operations per request
        (the hashes a typical client will spend for one connection).
    alpha:
        The server's asymptotic per-user service capacity ``µ/N``.
    """
    if w_av <= 0:
        raise GameError(f"w_av must be positive, got {w_av!r}")
    if alpha <= 0:
        raise GameError(f"alpha must be positive, got {alpha!r}")
    return w_av / (alpha + 1.0)


def second_order_difficulty(w_av: float, alpha: float, n_users: int,
                            gamma: float) -> float:
    """Eq. (17): the finite-N refinement of the asymptotic difficulty.

    ``γ = lim (α − x_av)³·N²`` is the convergence constant of Eq. (16);
    the correction vanishes as ``N^(−2/3)``.
    """
    if n_users < 1:
        raise GameError(f"n_users must be >= 1, got {n_users}")
    if gamma <= 0:
        raise GameError(f"gamma must be positive, got {gamma!r}")
    first_order = equilibrium_difficulty(w_av, alpha)
    correction = (2.0 * alpha - 1.0) / (gamma ** (2.0 / 3.0)
                                        * n_users ** (2.0 / 3.0))
    return first_order + correction


def max_feasible_difficulty(w_av: float, n_users: int, mu: float) -> float:
    """``r̂ = w̄/N − 1/µ²`` (Eq. 10) for homogeneous valuations.

    Above ``r̂`` the client game has no equilibrium with participation —
    the provider must never price above it. With infinite capacity
    (``µ → ∞``) this tends to ``w_av``: never charge more than the average
    valuation.
    """
    if n_users < 1:
        raise GameError(f"n_users must be >= 1, got {n_users}")
    if mu <= 0:
        raise GameError(f"mu must be positive, got {mu!r}")
    if w_av <= 0:
        raise GameError(f"w_av must be positive, got {w_av!r}")
    return w_av - 1.0 / mu ** 2


def nash_difficulty(w_av: float, alpha: float, k: int = 2,
                    rounding: str = "up",
                    length_bytes: int = 8) -> PuzzleParams:
    """The practical difficulty rule of §4.3–§4.4: integer ``(k, m)``.

    Computes ``ℓ* = w_av/(α+1)`` and rounds it to puzzle parameters with
    the requested number of sub-solutions ``k`` (default 2, the paper's
    recommended balance between an attacker's guessing probability —
    ``2^(−k·m)`` — and the server's verification cost ``1 + k/2``).

    >>> nash_difficulty(w_av=140630, alpha=1.1)
    PuzzleParams(k=2, m=17, length_bytes=8)
    """
    target = equilibrium_difficulty(w_av, alpha)
    return params_for_difficulty(target, k=k, rounding=rounding,
                                 length_bytes=length_bytes)
