"""The provider's (leader's) problem (Eq. 12–15).

The server maximises the clients' committed work net of its own generation
and verification work, evaluated at the followers' equilibrium::

    I(p)  = (ℓ(p) − g(p) − d(p)) · x̄*(ℓ(p))
          = (k·2^(m-1) − 2 − k/2) · x̄*(k, m)       (Eq. 12 / Eq. 5)

Lemma 1 shows the relaxation Ĩ(p) = ℓ(p)·x̄ is within a constant of I, and —
because x̄* depends on ``p`` only through ``ℓ(p)`` — the relaxed problem
reduces to a scalar optimisation over ``ȳ`` (Eq. 14) with first-order
condition::

    w̄N/ȳ² − (µ + ȳ − N)/(µ + N − ȳ)³ = 0          (Eq. 15)

:class:`StackelbergGame` solves both the continuous relaxation (exact root
of Eq. 15) and the exact integer problem (grid search over ``(k, m)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from scipy.optimize import brentq

from repro.core.equilibrium import ClientGame, NashSolution
from repro.errors import GameError
from repro.puzzles.estimator import provider_net_work
from repro.puzzles.params import PuzzleParams


@dataclass(frozen=True)
class ProviderSolution:
    """Solution of the leader's problem.

    ``difficulty`` is the continuous optimum ``ℓ*`` (expected hashes);
    ``params`` is its integer rounding when a grid search produced one.
    """

    difficulty: float
    y_bar: float
    total_rate: float
    objective: float
    params: Optional[PuzzleParams] = None


class StackelbergGame:
    """Leader-follower game: server picks ``p``, clients respond with x̄*(p)."""

    def __init__(self, clients: ClientGame) -> None:
        self.clients = clients

    # ------------------------------------------------------------------
    # Objectives
    # ------------------------------------------------------------------
    def objective(self, params: PuzzleParams) -> float:
        """Exact provider payoff I(p) of Eq. (12) at integer ``(k, m)``."""
        solution = self.clients.solve(params.expected_hashes)
        return provider_net_work(params) * solution.total_rate

    def relaxed_objective(self, difficulty: float) -> float:
        """Ĩ(ℓ) = ℓ · x̄*(ℓ) of Eq. (13)."""
        return difficulty * self.clients.total_rate(difficulty)

    # ------------------------------------------------------------------
    # Continuous relaxation (Eq. 14–15)
    # ------------------------------------------------------------------
    def _g_prime(self, y: float) -> float:
        n = self.clients.n_users
        w_bar = self.clients.w_bar
        mu = self.clients.mu
        return (w_bar * n / y ** 2
                - (mu + y - n) / (mu + n - y) ** 3)

    def solve_relaxed(self) -> ProviderSolution:
        """Exact maximiser of Ĩ via the first-order condition (Eq. 15).

        Returns the optimal ``ȳ*`` mapped back to a difficulty through
        Eq. (9): ``ℓ* = w̄/ȳ* − 1/(µ+N−ȳ*)²``.
        """
        n = self.clients.n_users
        mu = self.clients.mu
        w_bar = self.clients.w_bar
        if self.clients.max_feasible_difficulty <= 0:
            raise GameError(
                "provider problem degenerate: r̂ <= 0, no difficulty "
                "sustains any client participation")
        lo = n * (1.0 + 1e-12)
        # G' → −∞ at the pole; back off until the sign flips.
        hi = n + mu
        for shrink in range(1, 60):
            candidate = n + mu * (1.0 - 2.0 ** -shrink)
            if self._g_prime(candidate) < 0:
                hi = candidate
                break
        else:  # pragma: no cover - numerically unreachable
            raise GameError("could not bracket the provider optimum")
        y_star = float(brentq(self._g_prime, lo, hi, xtol=1e-12, rtol=1e-14))
        difficulty = w_bar / y_star - 1.0 / (mu + n - y_star) ** 2
        total_rate = y_star - n
        return ProviderSolution(difficulty=difficulty, y_bar=y_star,
                                total_rate=total_rate,
                                objective=difficulty * total_rate)

    # ------------------------------------------------------------------
    # Exact integer problem
    # ------------------------------------------------------------------
    def solve_integer(self, k_values: Iterable[int] = (1, 2, 3, 4),
                      m_values: Optional[Iterable[int]] = None,
                      length_bytes: int = 8) -> ProviderSolution:
        """Grid-search the exact objective I over integer ``(k, m)``.

        With no *m_values* given, sweeps every m for which the puzzle is
        both feasible (below r̂) and expressible on the wire.
        """
        k_values = list(k_values)
        best: Optional[Tuple[float, PuzzleParams, NashSolution]] = None
        for k in k_values:
            for m in self._m_candidates(k, m_values, length_bytes):
                params = PuzzleParams(k=k, m=m, length_bytes=length_bytes)
                solution = self.clients.solve(params.expected_hashes)
                if not solution.feasible:
                    continue
                value = provider_net_work(params) * solution.total_rate
                if best is None or value > best[0]:
                    best = (value, params, solution)
        if best is None:
            raise GameError(
                "no (k, m) grid point is feasible for this client game")
        value, params, solution = best
        return ProviderSolution(difficulty=params.expected_hashes,
                                y_bar=solution.y_bar,
                                total_rate=solution.total_rate,
                                objective=value, params=params)

    def _m_candidates(self, k: int, m_values: Optional[Iterable[int]],
                      length_bytes: int) -> List[int]:
        if m_values is not None:
            return list(m_values)
        r_hat = self.clients.max_feasible_difficulty
        out = []
        for m in range(0, 8 * length_bytes + 1):
            params = PuzzleParams(k=k, m=m, length_bytes=length_bytes)
            if params.expected_hashes >= r_hat:
                break
            out.append(m)
        return out

    def sweep(self, difficulties: Iterable[float]
              ) -> List[Tuple[float, float, float]]:
        """``(ℓ, x̄*(ℓ), Ĩ(ℓ))`` rows for plotting the provider's trade-off."""
        rows = []
        for difficulty in difficulties:
            rate = self.clients.total_rate(difficulty)
            rows.append((difficulty, rate, difficulty * rate))
        return rows
