"""Client utility and the strategically equivalent potential (Eq. 1/4/7).

User ``i``'s utility for request rate ``x_i`` when everyone else sends
``x_{-i}`` and the puzzle costs ``ℓ`` expected hashes::

    u_i = w_i · log(1 + x_i) − ℓ·x_i − S(x̄)        (Eq. 1, with Eq. 4's
                                                     S(x̄) = 1/(µ − x̄))

``w_i`` is the user's valuation — the work she is willing to pay per request.
Adding Σ_{j≠i}(w_j log(1+x_j) − ℓ x_j) to every utility yields the common
potential ``H`` (Eq. 7), whose unique maximiser on ``0 ≤ x̄ < µ`` is the Nash
equilibrium — the device the appendix proof uses, which we expose for tests.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.mm1 import expected_service_time
from repro.errors import GameError


def client_utility(x_i: float, x_others: float, difficulty: float,
                   w_i: float, mu: float) -> float:
    """``u_i(x_i, x_{-i}, p)`` per Eq. (4).

    *difficulty* is ``ℓ(p) = k·2^(m-1)`` in expected hash operations; the
    hash budget ``w_i`` shares the same unit.
    """
    if x_i < 0 or x_others < 0:
        raise GameError("request rates must be non-negative")
    if w_i < 0:
        raise GameError(f"valuation w_i must be >= 0, got {w_i!r}")
    total = x_i + x_others
    return (w_i * math.log1p(x_i)
            - difficulty * x_i
            - expected_service_time(total, mu))


def potential(rates: Sequence[float], difficulty: float,
              weights: Sequence[float], mu: float) -> float:
    """The potential ``H`` of Eq. (7): strictly concave on ``x̄ < µ``.

    Its unique maximiser is the Nash equilibrium of the client game, so
    property tests can verify the solver by hill-climbing H.
    """
    if len(rates) != len(weights):
        raise GameError("rates and weights must have equal length")
    total = 0.0
    benefit = 0.0
    for x, w in zip(rates, weights):
        if x < 0:
            raise GameError("request rates must be non-negative")
        benefit += w * math.log1p(x)
        total += x
    return (benefit
            - difficulty * total
            - expected_service_time(total, mu))
