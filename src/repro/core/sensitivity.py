"""Sensitivity of the Nash tuning to parameter misestimation.

§4.3's procedure estimates ``w_av`` (profiling a *sample* of clients) and
``α`` (a stress test). Real deployments estimate both with error; these
closed-form sweeps answer the operator's question: *how wrong can my
estimates be before the tuning hurts?*

The analysis instrument: the server tunes ``(k, m)`` for the *estimated*
population, the *true* population then plays its equilibrium against that
difficulty. Under-estimating ``w_av`` under-protects (attackers cheaper);
over-estimating drives real clients toward the feasibility cliff of
Eq. (10) — the asymmetry §4.2's analysis implies but never quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.equilibrium import ClientGame
from repro.core.theorem import nash_difficulty
from repro.errors import GameError
from repro.puzzles.params import PuzzleParams


@dataclass(frozen=True)
class MisestimationRow:
    """Outcome of tuning for an estimate while the truth differs."""

    estimate_factor: float      # est_w_av / true_w_av
    params: PuzzleParams        # what the server deploys
    feasible: bool              # does the true population still play?
    total_rate: float           # x̄* of the true population
    price_to_valuation: float   # ℓ(p)/true_w_av — the real burden
    attacker_solves_per_second: float  # per 350 kH/s bot


def w_av_misestimation_sweep(
        true_w_av: float = 140_630.0,
        alpha: float = 1.1,
        n_users: int = 1000,
        factors: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
        k: int = 2,
        bot_hash_rate: float = 351_575.0) -> List[MisestimationRow]:
    """Tune for ``factor × true_w_av``; evaluate on the true population.

    ``n_users`` controls how close the finite game sits to the asymptotic
    regime the tuning formula assumes.
    """
    if true_w_av <= 0:
        raise GameError("true_w_av must be positive")
    mu = alpha * n_users
    game = ClientGame.homogeneous(n_users, true_w_av, mu)
    rows = []
    for factor in factors:
        params = nash_difficulty(factor * true_w_av, alpha, k=k)
        solution = game.solve(params.expected_hashes)
        rows.append(MisestimationRow(
            estimate_factor=factor,
            params=params,
            feasible=solution.feasible,
            total_rate=solution.total_rate,
            price_to_valuation=params.expected_hashes / true_w_av,
            attacker_solves_per_second=bot_hash_rate
            / params.expected_hashes))
    return rows


@dataclass(frozen=True)
class AlphaMisestimationRow:
    estimate_factor: float
    params: PuzzleParams
    feasible: bool
    total_rate: float
    attacker_solves_per_second: float


def alpha_misestimation_sweep(
        w_av: float = 140_630.0,
        true_alpha: float = 1.1,
        n_users: int = 1000,
        factors: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
        k: int = 2,
        bot_hash_rate: float = 351_575.0) -> List[AlphaMisestimationRow]:
    """Tune for ``factor × true_alpha``; evaluate at the true capacity.

    α only enters the price as ``1/(α+1)``, so its misestimation is far
    more forgiving than ``w_av``'s — the quantified version of §4.2's
    "our model requires [only] an estimate of the server's capacity".
    """
    mu = true_alpha * n_users
    game = ClientGame.homogeneous(n_users, w_av, mu)
    rows = []
    for factor in factors:
        params = nash_difficulty(w_av, factor * true_alpha, k=k)
        solution = game.solve(params.expected_hashes)
        rows.append(AlphaMisestimationRow(
            estimate_factor=factor,
            params=params,
            feasible=solution.feasible,
            total_rate=solution.total_rate,
            attacker_solves_per_second=bot_hash_rate
            / params.expected_hashes))
    return rows


def safe_estimate_band(true_w_av: float = 140_630.0,
                       alpha: float = 1.1,
                       n_users: int = 1000,
                       k: int = 2,
                       resolution: int = 41) -> tuple:
    """The range of w_av over-estimation factors that keep the true
    population in the game (feasibility of Eq. 10 after round-up).

    Returns ``(low, high)`` factors; ``high`` is where over-pricing
    finally ejects everyone. Under-estimation never breaks feasibility —
    it only under-protects — so ``low`` is simply the smallest factor
    probed."""
    factors = [0.1 * (1.25 ** i) for i in range(resolution)]
    feasible = [row.estimate_factor
                for row in w_av_misestimation_sweep(
                    true_w_av, alpha, n_users, factors, k=k)
                if row.feasible]
    if not feasible:
        raise GameError("no probed estimate keeps the game feasible")
    return (min(feasible), max(feasible))
