"""Rounding a continuous difficulty ``ℓ*`` to integer puzzle parameters.

The theory produces a real-valued target ``ℓ* = k·2^(m−1)``; the wire
protocol needs integers. Two rules are provided:

* ``"up"`` — the paper's §4.4 behaviour: never under-protect. ``m`` is the
  smallest integer with ``k·2^(m−1) ≥ ℓ*``, i.e. ``m = ceil(log2(ℓ*/k))+1``.
  Reproduces the worked example ``(2, 17)`` for ``ℓ* ≈ 66966, k = 2``.
* ``"nearest"`` — minimise ``|k·2^(m−1) − ℓ*|``; better when the service
  degradation budget is hard.

§4.3 trade-off on ``k``: small ``k`` raises the attacker's chance of
guessing a solution outright (``2^(−k·m)``); large ``k`` raises the server's
expected verification work (``1 + k/2``). The paper recommends — and its
example uses — ``k = 2``.
"""

from __future__ import annotations

import math

from repro.errors import GameError
from repro.puzzles.params import PuzzleParams


def round_up(target: float, k: int) -> int:
    """Smallest ``m`` with ``k·2^(m−1) ≥ target`` (``m ≥ 0``)."""
    if target <= 0:
        raise GameError(f"target difficulty must be positive, got {target!r}")
    if k < 1:
        raise GameError(f"k must be >= 1, got {k}")
    per_solution = target / k
    if per_solution <= 1.0:
        return 0 if target <= k else 1
    return int(math.ceil(math.log2(per_solution))) + 1


def round_nearest(target: float, k: int) -> int:
    """``m`` minimising ``|k·2^(m−1) − target|`` (ties go down: usability)."""
    if target <= 0:
        raise GameError(f"target difficulty must be positive, got {target!r}")
    if k < 1:
        raise GameError(f"k must be >= 1, got {k}")
    up = round_up(target, k)
    if up == 0:
        return 0
    down = up - 1

    def cost(m: int) -> float:
        expected = float(k) if m == 0 else k * 2.0 ** (m - 1)
        return abs(expected - target)

    return down if cost(down) <= cost(up) else up


def guess_success_probability(params: PuzzleParams) -> float:
    """Probability an attacker passes verification with random strings.

    Each sub-solution survives with probability ``2^−m``; all ``k`` must.
    """
    return 2.0 ** (-params.k * params.m)


def params_for_difficulty(target: float, k: int = 2, rounding: str = "up",
                          length_bytes: int = 8) -> PuzzleParams:
    """Integer ``(k, m)`` realising the continuous target ``ℓ*``.

    Raises :class:`GameError` if the resulting solution block would not fit
    the 40-byte TCP option budget (choose a smaller ``k`` or ``l``).
    """
    if rounding == "up":
        m = round_up(target, k)
    elif rounding == "nearest":
        m = round_nearest(target, k)
    else:
        raise GameError(f"unknown rounding rule {rounding!r}")
    params = PuzzleParams(k=k, m=m, length_bytes=length_bytes)
    if not params.fits_in_options(embed_timestamp=True):
        raise GameError(
            f"params {params} need {params.solution_wire_bytes(True)} option "
            f"bytes > 40; reduce k or length_bytes")
    return params
