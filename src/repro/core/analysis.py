"""Attack-economics analysis: the paper's headline cost claims, derivable.

The abstract claims that with puzzles at the Nash difficulty "the size of a
botnet has to increase by a factor of 200, and IoT-based botnets become
unable to launch such attacks"; §6.4 adds "a botnet has to commit 500
machines to reach an effective attack rate of 5000 cps". These closed
forms reproduce those numbers from the difficulty and the hardware catalog.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import GameError
from repro.hosts.cpu import CPU_CATALOG, IOT_CATALOG, CPUProfile
from repro.puzzles.params import PuzzleParams


def solves_per_second(profile: CPUProfile, params: PuzzleParams) -> float:
    """A solving bot's ceiling: ``hash_rate / ℓ(p)`` connections/second.

    This is the rate limiter everything else follows from — verified
    against the simulator in
    ``tests/integration/test_theory_vs_simulation.py``.
    """
    return profile.hash_rate / params.expected_hashes


def required_botnet_size(target_cps: float, params: PuzzleParams,
                         profile: CPUProfile) -> int:
    """Machines needed to sustain *target_cps* established connections/s
    against a puzzle server at difficulty *params* (§6.4's 500-machine
    style calculation)."""
    if target_cps <= 0:
        raise GameError(f"target_cps must be positive, got {target_cps!r}")
    return math.ceil(target_cps / solves_per_second(profile, params))


def amplification_factor(params: PuzzleParams, profile: CPUProfile,
                         unprotected_rate_per_bot: float = 500.0) -> float:
    """How many times more machines an attack needs once puzzles are on.

    Against an unprotected server a bot's effective rate is whatever it
    can flood (§6's 500 attempts/s each land as completed handshakes);
    against the Nash puzzles it is the CPU solving ceiling. The ratio is
    the abstract's "factor of 200"."""
    if unprotected_rate_per_bot <= 0:
        raise GameError("unprotected_rate_per_bot must be positive")
    return unprotected_rate_per_bot / solves_per_second(profile, params)


@dataclass(frozen=True)
class BotnetCostRow:
    device: str
    solves_per_second: float
    bots_for_5000_cps: int
    amplification: float


def botnet_cost_table(params: Optional[PuzzleParams] = None,
                      unprotected_rate_per_bot: float = 500.0
                      ) -> Dict[str, BotnetCostRow]:
    """The §6.4/§6.6 economics over the full hardware catalog."""
    params = params if params is not None else PuzzleParams(k=2, m=17)
    rows: Dict[str, BotnetCostRow] = {}
    for name, profile in {**CPU_CATALOG, **IOT_CATALOG}.items():
        rate = solves_per_second(profile, params)
        rows[name] = BotnetCostRow(
            device=name,
            solves_per_second=rate,
            bots_for_5000_cps=required_botnet_size(5000.0, params,
                                                   profile),
            amplification=amplification_factor(
                params, profile, unprotected_rate_per_bot))
    return rows
