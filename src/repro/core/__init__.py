"""Game-theoretic core: Stackelberg difficulty selection (paper §3–§4).

The server (leader) selects the puzzle difficulty; ``N`` selfish clients
(followers) select request rates at Nash equilibrium. Modules:

* :mod:`repro.core.mm1` — the M/M/1 service-time abstraction ``S(x̄)``;
* :mod:`repro.core.utility` — client utility (Eq. 1/4) and the strategically
  equivalent potential ``H`` (Eq. 7);
* :mod:`repro.core.equilibrium` — finite-N Nash solver for the client game
  (Eq. 9), feasibility bound (Eq. 10), participation (Eq. 11), and the
  dropout-aware variant;
* :mod:`repro.core.stackelberg` — the provider problem (Eq. 12–15): exact
  finite-N optimum over integer ``(k, m)`` grids and the continuous
  relaxation;
* :mod:`repro.core.theorem` — Theorem 1 closed forms (Eq. 17/18) and the
  practical difficulty-selection rule that reproduces the paper's
  ``(k*, m*) = (2, 17)`` example;
* :mod:`repro.core.difficulty` — integer rounding rules for ``(k, m)``;
* :mod:`repro.core.profiling` — the §4.3 procedures for estimating ``w_av``
  (client hash budget) and ``α`` (server service parameter).
"""

from repro.core.mm1 import MM1Queue, expected_service_time
from repro.core.utility import client_utility, potential
from repro.core.equilibrium import ClientGame, NashSolution
from repro.core.stackelberg import StackelbergGame, ProviderSolution
from repro.core.theorem import (
    equilibrium_difficulty,
    max_feasible_difficulty,
    nash_difficulty,
)
from repro.core.difficulty import (
    params_for_difficulty,
    round_nearest,
    round_up,
)
from repro.core.profiling import (
    ClientProfile,
    ServerProfile,
    estimate_alpha,
    estimate_w_av,
)

__all__ = [
    "MM1Queue",
    "expected_service_time",
    "client_utility",
    "potential",
    "ClientGame",
    "NashSolution",
    "StackelbergGame",
    "ProviderSolution",
    "equilibrium_difficulty",
    "max_feasible_difficulty",
    "nash_difficulty",
    "params_for_difficulty",
    "round_nearest",
    "round_up",
    "ClientProfile",
    "ServerProfile",
    "estimate_alpha",
    "estimate_w_av",
]
