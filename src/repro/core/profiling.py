"""Model-parameter estimation procedures (paper §4.3, Figure 3, Table 1).

Two parameters drive the Nash difficulty:

* ``w_av`` — the hashes an average client is willing to spend per request,
  obtained by profiling client machines for the paper's 400 ms acceptable
  handshake-delay budget (Nielsen's usability threshold);
* ``α``   — the server's asymptotic per-user capacity, obtained by stress
  testing: sweep concurrent request load, record the service rate ``µ``,
  and take the converged ratio ``µ/concurrency``.

Profiles can be measured on the running machine (:func:`measure_hash_rate`)
or taken from the catalog in :mod:`repro.hosts.cpu`, which reproduces the
paper's cpu1–cpu3 and Raspberry Pi D1–D4 hardware.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.sha256 import sha256
from repro.errors import GameError

#: The paper's acceptable handshake-delay budget: 400 ms does not interrupt
#: a user's flow of thought (Nielsen 1993, via §4.3).
DEFAULT_DELAY_BUDGET_SECONDS = 0.4


@dataclass(frozen=True)
class ClientProfile:
    """A client machine's measured hashing capability."""

    name: str
    hash_rate: float  # SHA-256 operations per second

    def __post_init__(self) -> None:
        if self.hash_rate <= 0:
            raise GameError(
                f"hash_rate must be positive, got {self.hash_rate!r}")

    def hashes_in(self,
                  seconds: float = DEFAULT_DELAY_BUDGET_SECONDS) -> float:
        """Hash operations this machine completes in *seconds*."""
        if seconds < 0:
            raise GameError(f"seconds must be >= 0, got {seconds!r}")
        return self.hash_rate * seconds

    def solve_seconds(self, expected_hashes: float) -> float:
        """Expected wall time to perform *expected_hashes* operations."""
        return expected_hashes / self.hash_rate


def estimate_w_av(profiles: Sequence[ClientProfile],
                  delay_budget: float = DEFAULT_DELAY_BUDGET_SECONDS
                  ) -> float:
    """``w_av``: mean hashes-per-budget over the expected clientele.

    This is the Figure 3(a) procedure — profile representative CPUs, take
    the average number of hashes each completes within the delay budget.
    """
    if not profiles:
        raise GameError("need at least one client profile")
    return sum(p.hashes_in(delay_budget) for p in profiles) / len(profiles)


def measure_hash_rate(duration: float = 0.1, block: bytes = b"\x00" * 64
                      ) -> float:
    """Measure this machine's real SHA-256 rate (ops/second).

    Used by the live-profiling example; simulations use catalog rates so
    results do not depend on the host running the simulation.
    """
    if duration <= 0:
        raise GameError(f"duration must be positive, got {duration!r}")
    count = 0
    payload = block
    deadline = time.perf_counter() + duration
    while time.perf_counter() < deadline:
        for _ in range(256):
            payload = sha256(payload)
        count += 256
    return count / duration


@dataclass(frozen=True)
class ServerProfile:
    """A server stress-test result: load sweep → (µ, α) curves.

    ``concurrency[i]`` concurrent requests produced service rate
    ``service_rate[i]`` (requests/second) — the Figure 3(b) measurement.
    """

    concurrency: Tuple[int, ...]
    service_rate: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.concurrency) != len(self.service_rate):
            raise GameError("concurrency and service_rate lengths differ")
        if not self.concurrency:
            raise GameError("stress test must contain at least one point")
        if any(c <= 0 for c in self.concurrency):
            raise GameError("concurrency values must be positive")
        if any(r <= 0 for r in self.service_rate):
            raise GameError("service rates must be positive")
        if list(self.concurrency) != sorted(self.concurrency):
            raise GameError("concurrency sweep must be increasing")

    @classmethod
    def from_points(cls, points: Sequence[Tuple[int, float]]
                    ) -> "ServerProfile":
        points = sorted(points)
        return cls(tuple(c for c, _ in points), tuple(r for _, r in points))

    @property
    def mu(self) -> float:
        """The saturated service rate: the rate under the heaviest load."""
        return self.service_rate[-1]

    def alpha_curve(self) -> List[float]:
        """``µ(n)/n`` per sweep point — Figure 3(b)'s service parameter."""
        return [r / c for c, r in zip(self.concurrency, self.service_rate)]

    @property
    def alpha(self) -> float:
        """The converged service parameter (ratio at the heaviest load)."""
        return self.alpha_curve()[-1]


def estimate_alpha(concurrency: Sequence[int],
                   service_rate: Sequence[float]) -> float:
    """Convenience wrapper: ``ServerProfile(...).alpha``."""
    return ServerProfile(tuple(concurrency), tuple(service_rate)).alpha
