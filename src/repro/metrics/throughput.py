"""Per-host throughput from fabric captures (Figures 7, 8, 12).

Receive throughput counts bytes of packets *delivered to* the host;
transmit throughput counts bytes of packets *sent by* the host (whether or
not they survive the path — matching what tcpdump sees at the sender's
interface). Application *goodput* counts only data payload bytes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.metrics.series import BinnedSeries
from repro.net.pcap import CaptureRecord


class HostThroughput:
    """Subscribe to a :class:`~repro.net.pcap.PacketCapture` for one host."""

    def __init__(self, address: int, bin_width: float = 1.0) -> None:
        self.address = address
        self.rx = BinnedSeries(bin_width)
        self.tx = BinnedSeries(bin_width)
        self.rx_goodput = BinnedSeries(bin_width)
        self.tx_goodput = BinnedSeries(bin_width)

    def tap(self, time: float, packet, event: str) -> None:
        """Fast-path network tap (register via ``Network.add_tap``)."""
        if event == "deliver":
            if packet.dst_ip == self.address:
                self.on_rx(time, packet)
        elif event == "send" and packet.src_ip == self.address:
            self.on_tx(time, packet)

    def on_rx(self, time: float, packet) -> None:
        """A packet was delivered to this host (pre-matched on address —
        the ``Network.add_throughput_tap`` fast path)."""
        self.rx.add(time, packet.size_bytes)
        if packet.payload_bytes:
            self.rx_goodput.add(time, packet.payload_bytes)

    def on_tx(self, time: float, packet) -> None:
        """A packet left this host (pre-matched on address)."""
        self.tx.add(time, packet.size_bytes)
        if packet.payload_bytes:
            self.tx_goodput.add(time, packet.payload_bytes)

    def sink(self, record: CaptureRecord) -> None:
        """CaptureRecord-style entry point (PacketCapture subscription)."""
        self.tap(record.time, record.packet, record.event)

    @staticmethod
    def to_mbps(times: np.ndarray, byte_rate: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
        return times, byte_rate * 8.0 / 1e6

    def rx_mbps(self, until: float) -> Tuple[np.ndarray, np.ndarray]:
        return self.to_mbps(*self.rx.rate_series(until))

    def tx_mbps(self, until: float) -> Tuple[np.ndarray, np.ndarray]:
        return self.to_mbps(*self.tx.rate_series(until))

    def rx_goodput_mbps(self, until: float) -> Tuple[np.ndarray, np.ndarray]:
        return self.to_mbps(*self.rx_goodput.rate_series(until))

    def mean_rx_mbps(self, start: float, end: float) -> float:
        return self.rx.window_sum(start, end) * 8.0 / 1e6 / max(
            end - start, 1e-9)

    def mean_tx_mbps(self, start: float, end: float) -> float:
        return self.tx.window_sum(start, end) * 8.0 / 1e6 / max(
            end - start, 1e-9)
