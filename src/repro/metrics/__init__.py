"""Measurement layer: the simulated counterpart of the paper's tcpdump
post-processing (§6: "we deploy tcpdump on all of the machines and use the
captures to measure the throughput ..., the TCP connection time, and the
number of dropped TCP connections").
"""

from repro.metrics.series import BinnedSeries, GaugeSeries
from repro.metrics.throughput import HostThroughput
from repro.metrics.connections import ConnectionRecord, ConnectionTracker
from repro.metrics.cpuutil import CPUUtilizationSampler
from repro.metrics.queues import QueueSampler
from repro.metrics.summary import describe, Summary

__all__ = [
    "BinnedSeries",
    "GaugeSeries",
    "HostThroughput",
    "ConnectionRecord",
    "ConnectionTracker",
    "CPUUtilizationSampler",
    "QueueSampler",
    "describe",
    "Summary",
]
