"""Listen/accept queue occupancy sampling (Figure 10)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.metrics.series import GaugeSeries
from repro.sim.engine import Engine
from repro.sim.process import PeriodicProcess
from repro.tcp.listener import ListenSocket


class QueueSampler:
    """Samples the two queue depths of a listener every *interval*."""

    def __init__(self, engine: Engine, listener: ListenSocket,
                 interval: float = 0.5) -> None:
        self.engine = engine
        self.listener = listener
        self.listen_depth = GaugeSeries()
        self.accept_depth = GaugeSeries()
        self._process = PeriodicProcess(engine, self._sample,
                                        interval=interval)

    def start(self, delay: float = 0.0) -> None:
        self._process.start(delay)

    def stop(self) -> None:
        self._process.stop()

    def _sample(self) -> None:
        now = self.engine.now
        self.listen_depth.sample(now, len(self.listener.listen_queue))
        self.accept_depth.sample(now, len(self.listener.accept_queue))

    def listen_series(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.listen_depth.arrays()

    def accept_series(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.accept_depth.arrays()
