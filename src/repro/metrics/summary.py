"""Summary statistics: means, quantiles and boxplot descriptors.

Backs the Figure 12 boxplots and the EXPERIMENTS.md tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number summary plus mean/std — what a boxplot needs."""

    count: int
    mean: float
    std: float
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    def whiskers(self) -> tuple:
        """Tukey whiskers: the data range clipped to 1.5 IQR fences."""
        low = self.q1 - 1.5 * self.iqr
        high = self.q3 + 1.5 * self.iqr
        return (max(self.minimum, low), min(self.maximum, high))

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean:.4g} std={self.std:.4g} "
                f"min={self.minimum:.4g} q1={self.q1:.4g} "
                f"med={self.median:.4g} q3={self.q3:.4g} "
                f"max={self.maximum:.4g}")


def describe(values: Sequence[float]) -> Summary:
    """Summary of *values*; NaN-filled when empty."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan, nan, nan)
    return Summary(
        count=int(array.size),
        mean=float(np.mean(array)),
        std=float(np.std(array)),
        minimum=float(np.min(array)),
        q1=float(np.percentile(array, 25)),
        median=float(np.percentile(array, 50)),
        q3=float(np.percentile(array, 75)),
        maximum=float(np.max(array)),
    )


def quantile(values: Sequence[float], q: float) -> float:
    """Value at quantile *q* in [0, 1]; NaN when *values* is empty.

    The single quantile entry point for tables and reports (Figure 6's
    p95 column and friends) — callers should route through here instead
    of reaching for ``np.percentile`` inline.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return float("nan")
    return float(np.quantile(array, q))


def quantiles(values: Sequence[float],
              qs: Sequence[float] = (0.5, 0.95, 0.99, 0.999)) -> dict:
    """``{q: value}`` for each requested quantile (NaN-valued if empty)."""
    return {q: quantile(values, q) for q in qs}


def cdf(values: Sequence[float]) -> tuple:
    """Empirical CDF points ``(sorted values, cumulative probabilities)``."""
    array = np.sort(np.asarray(list(values), dtype=float))
    if array.size == 0:
        return array, array
    probs = np.arange(1, array.size + 1) / array.size
    return array, probs
