"""CSV export of measurement series and summaries.

The benchmarks print human tables; downstream users replotting figures
want machine-readable series. These helpers write standard CSV (no
dependency beyond the stdlib) from the metrics primitives.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Optional, Sequence, TextIO, Union

from repro.errors import SimulationError
from repro.metrics.connections import ConnectionTracker
from repro.metrics.series import BinnedSeries, GaugeSeries


def _writer(stream: TextIO) -> "csv.writer":
    return csv.writer(stream, lineterminator="\n")


def write_series_csv(stream: TextIO,
                     series: Dict[str, Union[BinnedSeries, GaugeSeries]],
                     until: Optional[float] = None,
                     time_header: str = "time_s") -> int:
    """Write one or more *aligned* series as CSV columns.

    ``BinnedSeries`` columns require *until* (they are materialised over
    ``[t0, until)``); all series must produce identical time axes.
    Returns the number of data rows written.
    """
    if not series:
        raise SimulationError("no series given")
    axes = {}
    for name, obj in series.items():
        if isinstance(obj, BinnedSeries):
            if until is None:
                raise SimulationError(
                    "until= is required to export BinnedSeries")
            times, values = obj.series(until)
        else:
            times, values = obj.arrays()
        axes[name] = (list(times), list(values))
    reference = None
    for name, (times, _) in axes.items():
        if reference is None:
            reference = times
        elif times != reference:
            raise SimulationError(
                f"series {name!r} has a different time axis; export it "
                f"separately")
    writer = _writer(stream)
    names = list(series)
    writer.writerow([time_header] + names)
    count = 0
    for i, t in enumerate(reference or []):
        writer.writerow([t] + [axes[name][1][i] for name in names])
        count += 1
    return count


def write_connections_csv(stream: TextIO,
                          tracker: ConnectionTracker,
                          labels: Optional[Sequence[str]] = None) -> int:
    """Dump per-connection lifecycle records (the tcpdump-post-processing
    equivalent): one row per tracked connection."""
    writer = _writer(stream)
    writer.writerow(["label", "t_open", "t_established", "t_completed",
                     "t_failed", "reason", "challenged", "outcome"])
    count = 0
    for record in tracker.records:
        if labels is not None and record.label not in labels:
            continue
        writer.writerow([
            record.label, record.t_open,
            "" if record.t_established is None else record.t_established,
            "" if record.t_completed is None else record.t_completed,
            "" if record.t_failed is None else record.t_failed,
            record.reason or "", int(record.challenged), record.outcome])
        count += 1
    return count


def series_to_csv_string(
        series: Dict[str, Union[BinnedSeries, GaugeSeries]],
        until: Optional[float] = None) -> str:
    """Convenience: the CSV as a string."""
    buffer = io.StringIO()
    write_series_csv(buffer, series, until=until)
    return buffer.getvalue()


def write_counters_csv(stream: TextIO, registry) -> int:
    """Dump a :class:`repro.obs.CounterRegistry` as long-form CSV.

    One ``host,counter,value`` row per touched counter, hosts and counters
    name-sorted — the join-friendly companion to the JSON-lines exporter.
    Returns the number of data rows written.
    """
    writer = _writer(stream)
    writer.writerow(["host", "counter", "value"])
    count = 0
    for scope in registry.scopes():
        for counter, value in scope.snapshot().items():
            writer.writerow([scope.name, counter, value])
            count += 1
    return count
