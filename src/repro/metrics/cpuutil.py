"""CPU-utilisation sampling (Figure 9).

Periodically reads each host CPU's exact cumulative busy time (see
:class:`repro.hosts.host.CPUResource`) and differentiates it into per-bin
utilisation percentages.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.metrics.series import GaugeSeries
from repro.sim.engine import Engine
from repro.sim.process import PeriodicProcess


class CPUUtilizationSampler:
    """Samples busy-fraction (%) of a set of hosts every *interval*."""

    def __init__(self, engine: Engine, hosts: Sequence,
                 interval: float = 1.0) -> None:
        self.engine = engine
        self.hosts = list(hosts)
        self.interval = interval
        self.series: Dict[str, GaugeSeries] = {
            host.name: GaugeSeries() for host in self.hosts
        }
        self._last_busy: Dict[str, float] = {
            host.name: 0.0 for host in self.hosts
        }
        self._process = PeriodicProcess(engine, self._sample,
                                        interval=interval)

    def start(self, delay: float = 0.0) -> None:
        self._process.start(delay if delay else self.interval)

    def stop(self) -> None:
        self._process.stop()

    def _sample(self) -> None:
        now = self.engine.now
        for host in self.hosts:
            busy = host.cpu.busy_seconds(now)
            delta = busy - self._last_busy[host.name]
            self._last_busy[host.name] = busy
            utilization = 100.0 * delta / self.interval
            self.series[host.name].sample(now, min(100.0, utilization))

    def utilization(self, name: str) -> Tuple[np.ndarray, np.ndarray]:
        return self.series[name].arrays()

    def mean_in(self, name: str, start: float, end: float) -> float:
        return self.series[name].mean_in(start, end)

    def max_in(self, name: str, start: float, end: float) -> float:
        return self.series[name].max_in(start, end)
