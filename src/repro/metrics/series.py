"""Time-series primitives: binned accumulators, gauges, bounded rings."""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import SimulationError


class BinnedSeries:
    """Accumulates events into fixed-width time bins.

    Used for throughput (bytes per bin) and rates (events per bin).
    """

    def __init__(self, bin_width: float, t0: float = 0.0) -> None:
        if bin_width <= 0:
            raise SimulationError(
                f"bin_width must be positive, got {bin_width!r}")
        self.bin_width = bin_width
        self.t0 = t0
        self._bins: Dict[int, float] = {}
        self.total = 0.0

    def add(self, t: float, value: float = 1.0) -> None:
        index = int((t - self.t0) // self.bin_width)
        self._bins[index] = self._bins.get(index, 0.0) + value
        self.total += value

    def series(self, until: float) -> Tuple[np.ndarray, np.ndarray]:
        """(bin start times, per-bin sums) covering ``[t0, until)``."""
        n_bins = max(1, int(np.ceil((until - self.t0) / self.bin_width)))
        times = self.t0 + np.arange(n_bins) * self.bin_width
        values = np.zeros(n_bins)
        if self._bins:
            # Vectorized fill: one fancy-indexed assignment instead of a
            # Python loop over every bin (sweep post-processing hot path).
            indices = np.fromiter(self._bins.keys(), dtype=np.int64,
                                  count=len(self._bins))
            sums = np.fromiter(self._bins.values(), dtype=np.float64,
                               count=len(self._bins))
            mask = (indices >= 0) & (indices < n_bins)
            values[indices[mask]] = sums[mask]
        return times, values

    def rate_series(self, until: float) -> Tuple[np.ndarray, np.ndarray]:
        """Per-bin sums divided by the bin width (events or bytes /second)."""
        times, values = self.series(until)
        return times, values / self.bin_width

    def window_sum(self, start: float, end: float) -> float:
        """Total accumulated in ``[start, end)`` (whole bins)."""
        lo = int((start - self.t0) // self.bin_width)
        hi = int(np.ceil((end - self.t0) / self.bin_width))
        return sum(v for i, v in self._bins.items() if lo <= i < hi)


class RingSeries:
    """A bounded ring of ``(time, value)`` samples.

    Appends past the capacity evict the oldest sample and bump
    ``dropped``, so memory stays fixed no matter how long the run is —
    the storage discipline behind the streaming telemetry series
    (:mod:`repro.obs.timeseries`). Plain data: picklable, no engine
    reference.
    """

    __slots__ = ("capacity", "dropped", "_times", "_values")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError(
                f"ring capacity must be >= 1, got {capacity!r}")
        self.capacity = int(capacity)
        self.dropped = 0
        self._times: deque = deque(maxlen=self.capacity)
        self._values: deque = deque(maxlen=self.capacity)

    def append(self, t: float, value: float) -> None:
        if len(self._times) == self.capacity:
            self.dropped += 1
        self._times.append(t)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    def samples(self) -> List[Tuple[float, float]]:
        """Oldest-to-newest list of retained ``(time, value)`` pairs."""
        return list(zip(self._times, self._values))

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self._times), np.asarray(self._values)

    def replace(self, samples) -> None:
        """Reload the ring from an iterable of ``(time, value)`` pairs
        (newest-past-capacity win, counting the overflow as dropped)."""
        self._times.clear()
        self._values.clear()
        for t, value in samples:
            self.append(t, value)

    # Pickle support for __slots__ (deques themselves pickle fine).
    def __getstate__(self):
        return (self.capacity, self.dropped, self._times, self._values)

    def __setstate__(self, state):
        self.capacity, self.dropped, self._times, self._values = state


class GaugeSeries:
    """Point-in-time samples of a value (queue depth, CPU utilisation)."""

    def __init__(self) -> None:
        self._times: List[float] = []
        self._values: List[float] = []

    def sample(self, t: float, value: float) -> None:
        self._times.append(t)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self._times), np.asarray(self._values)

    def window(self, start: float, end: float) -> np.ndarray:
        """Values sampled in ``[start, end)``."""
        times, values = self.arrays()
        if len(times) == 0:
            return values
        mask = (times >= start) & (times < end)
        return values[mask]

    def mean_in(self, start: float, end: float) -> float:
        values = self.window(start, end)
        return float(np.mean(values)) if len(values) else float("nan")

    def max_in(self, start: float, end: float) -> float:
        values = self.window(start, end)
        return float(np.max(values)) if len(values) else float("nan")
