"""Per-connection lifecycle tracking.

Backs the connection-time CDFs (Figure 6), established-connection rates
(Figures 11, 13, 14), and completion percentages (Figure 15).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.metrics.series import BinnedSeries
from repro.obs import hub_for
from repro.sim.engine import Engine


class ConnectionRecord:
    """One tracked connection attempt."""

    __slots__ = ("label", "t_open", "t_established", "t_completed",
                 "t_failed", "reason", "challenged")

    def __init__(self, label: str, t_open: float) -> None:
        self.label = label
        self.t_open = t_open
        self.t_established: Optional[float] = None
        self.t_completed: Optional[float] = None
        self.t_failed: Optional[float] = None
        self.reason: Optional[str] = None
        self.challenged = False

    @property
    def connect_time(self) -> Optional[float]:
        if self.t_established is None:
            return None
        return self.t_established - self.t_open

    @property
    def outcome(self) -> str:
        if self.t_completed is not None:
            return "completed"
        if self.t_failed is not None:
            return "failed"
        if self.t_established is not None:
            return "established"
        return "pending"


class ConnectionTracker:
    """Aggregates connection lifecycles per class label.

    Labels are free-form — the experiments use ``"client"`` and
    ``"attacker"`` so metrics can be split the way the paper splits them.
    """

    def __init__(self, engine: Engine, bin_width: float = 1.0) -> None:
        self.engine = engine
        self.bin_width = bin_width
        self._hist = hub_for(engine).hist
        self.records: List[ConnectionRecord] = []
        self._attempt_series: Dict[str, BinnedSeries] = {}
        self._established_series: Dict[str, BinnedSeries] = {}
        self._completed_series: Dict[str, BinnedSeries] = {}
        self._failed_series: Dict[str, BinnedSeries] = {}

    def _series(self, table: Dict[str, BinnedSeries],
                label: str) -> BinnedSeries:
        series = table.get(label)
        if series is None:
            series = BinnedSeries(self.bin_width)
            table[label] = series
        return series

    # ------------------------------------------------------------------
    # Lifecycle hooks (called by host models)
    # ------------------------------------------------------------------
    def open(self, label: str) -> ConnectionRecord:
        record = ConnectionRecord(label, self.engine.now)
        self.records.append(record)
        self._series(self._attempt_series, label).add(record.t_open)
        return record

    def established(self, record: ConnectionRecord,
                    challenged: bool = False) -> None:
        record.t_established = self.engine.now
        record.challenged = challenged
        self._series(self._established_series, record.label).add(
            record.t_established)
        self._hist.record(f"handshake_latency.{record.label}",
                          record.t_established - record.t_open)

    def completed(self, record: ConnectionRecord) -> None:
        record.t_completed = self.engine.now
        self._series(self._completed_series, record.label).add(
            record.t_completed)

    def failed(self, record: ConnectionRecord, reason: str) -> None:
        if record.t_failed is not None:
            return
        record.t_failed = self.engine.now
        record.reason = reason
        self._series(self._failed_series, record.label).add(record.t_failed)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def connect_times(self, label: str) -> np.ndarray:
        """Handshake latencies (seconds) for established connections."""
        return np.asarray([
            r.connect_time for r in self.records
            if r.label == label and r.connect_time is not None
        ])

    def established_rate(self, label: str,
                         until: float) -> Tuple[np.ndarray, np.ndarray]:
        """Connections/second entering ESTABLISHED, per bin (Figure 11)."""
        return self._series(self._established_series, label).rate_series(
            until)

    def attempt_rate(self, label: str,
                     until: float) -> Tuple[np.ndarray, np.ndarray]:
        return self._series(self._attempt_series, label).rate_series(until)

    def completion_percent_series(self, label: str, until: float
                                  ) -> Tuple[np.ndarray, np.ndarray]:
        """% of attempts per bin that eventually completed (Figure 15).

        A connection is attributed to the bin of its *attempt*.
        """
        n_bins = max(1, int(np.ceil(until / self.bin_width)))
        attempts = np.zeros(n_bins)
        completions = np.zeros(n_bins)
        for record in self.records:
            if record.label != label:
                continue
            index = int(record.t_open // self.bin_width)
            if not 0 <= index < n_bins:
                continue
            attempts[index] += 1
            if record.t_completed is not None:
                completions[index] += 1
        times = np.arange(n_bins) * self.bin_width
        with np.errstate(divide="ignore", invalid="ignore"):
            percent = np.where(attempts > 0,
                               100.0 * completions / attempts, np.nan)
        return times, percent

    def counts(self, label: str) -> Dict[str, int]:
        out = {"attempts": 0, "established": 0, "completed": 0, "failed": 0,
               "challenged": 0}
        for record in self.records:
            if record.label != label:
                continue
            out["attempts"] += 1
            if record.t_established is not None:
                out["established"] += 1
            if record.t_completed is not None:
                out["completed"] += 1
            if record.t_failed is not None:
                out["failed"] += 1
            if record.challenged:
                out["challenged"] += 1
        return out

    def established_in(self, label: str, start: float, end: float) -> int:
        return sum(
            1 for r in self.records
            if r.label == label and r.t_established is not None
            and start <= r.t_established < end)
