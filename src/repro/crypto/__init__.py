"""Cryptographic substrate: SHA-256 with hash-operation accounting, and a
generic m-bit partial-preimage ("hashcash") puzzle primitive.

The paper's kernel implementation uses the Linux crypto API's SHA-256; we use
:mod:`hashlib`'s. The :class:`HashCounter` mirrors the cost model of §4 —
every call is one "hash operation", the unit in which the puzzle difficulty
``ℓ(p) = k·2^(m-1)``, the generation cost ``g(p) = 1`` and the verification
cost ``d(p) = 1 + k/2`` are all expressed.
"""

from repro.crypto.sha256 import HashCounter, sha256, leading_bits_match
from repro.crypto.hashcash import (
    count_expected_attempts,
    find_partial_preimage,
    verify_partial_preimage,
)

__all__ = [
    "HashCounter",
    "sha256",
    "leading_bits_match",
    "count_expected_attempts",
    "find_partial_preimage",
    "verify_partial_preimage",
]
