"""SHA-256 helpers with hash-operation accounting.

All puzzle-related hashing in the package flows through :func:`sha256` so a
:class:`HashCounter` can attribute hash work to a host — this is how the
simulator reproduces the paper's Figure 9 CPU-utilisation measurements
without instrumenting real kernels.
"""

from __future__ import annotations

import hashlib
from typing import Optional


class HashCounter:
    """Counts hash operations charged to one principal (host, role, ...).

    The counter is deliberately dumb — just an integer with a label — so it
    can be shared between the real brute-force solver (which increments it
    per actual SHA-256 call) and the modelled solver (which adds the sampled
    attempt count in one go).
    """

    __slots__ = ("label", "count")

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.count = 0

    def add(self, n: int = 1) -> None:
        self.count += n

    def reset(self) -> int:
        """Zero the counter, returning the old value."""
        old = self.count
        self.count = 0
        return old

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HashCounter({self.label!r}, count={self.count})"


def sha256(data: bytes, counter: Optional[HashCounter] = None) -> bytes:
    """One SHA-256 hash operation; charges *counter* if given."""
    if counter is not None:
        counter.add(1)
    return hashlib.sha256(data).digest()


def leading_bits_match(a: bytes, b: bytes, nbits: int) -> bool:
    """True iff the first *nbits* bits of *a* and *b* agree.

    Both inputs must be long enough to contain ``nbits`` bits; this is the
    match test of the Juels–Brainard scheme (the first m bits of
    ``h(P || i || s_i)`` must equal the first m bits of ``P``).
    """
    if nbits < 0:
        raise ValueError(f"nbits must be non-negative, got {nbits}")
    if nbits == 0:
        return True
    nbytes, rem = divmod(nbits, 8)
    if len(a) < nbytes + (1 if rem else 0) or len(b) < nbytes + (1 if rem else 0):
        raise ValueError("inputs shorter than the requested bit prefix")
    if a[:nbytes] != b[:nbytes]:
        return False
    if rem == 0:
        return True
    mask = 0xFF << (8 - rem) & 0xFF
    return (a[nbytes] & mask) == (b[nbytes] & mask)
