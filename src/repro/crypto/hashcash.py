"""Generic m-bit partial-preimage search (the hashcash primitive).

The Juels–Brainard scheme (§4, Figure 2) challenges a client to find, for
each sub-puzzle index ``i``, a string ``s_i`` such that the first ``m`` bits
of ``h(P || i || s_i)`` match the first ``m`` bits of the puzzle ``P``.
This module implements that search and its verification for real, against
real SHA-256 — used directly by unit tests, benchmarks, and the simulator's
full-crypto mode; the modelled solver samples the same attempt distribution
without hashing (see :mod:`repro.puzzles.juels`).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.crypto.sha256 import HashCounter, leading_bits_match, sha256


def _candidate(counter_value: int, length_bytes: int) -> bytes:
    """Deterministic enumeration of candidate solution strings."""
    return counter_value.to_bytes(length_bytes, "big")


def find_partial_preimage(puzzle: bytes, index: int, m_bits: int,
                          length_bytes: int,
                          counter: Optional[HashCounter] = None,
                          start: int = 0) -> Tuple[bytes, int]:
    """Brute-force an ``s`` with ``h(P || index || s)[:m] == P[:m]``.

    Candidates are enumerated deterministically from *start*; returns
    ``(solution, attempts)``. Raises :class:`ValueError` when the candidate
    space (``2**(8*length_bytes)``) is exhausted, which for sensible
    parameters (``8*length_bytes >> m_bits``) cannot happen.
    """
    if m_bits < 0:
        raise ValueError(f"m_bits must be non-negative, got {m_bits}")
    if length_bytes <= 0:
        raise ValueError(f"length_bytes must be positive, got {length_bytes}")
    index_bytes = index.to_bytes(2, "big")
    space = 1 << (8 * length_bytes)
    attempts = 0
    value = start % space
    for _ in range(space):
        candidate = _candidate(value, length_bytes)
        attempts += 1
        digest = sha256(puzzle + index_bytes + candidate, counter)
        if leading_bits_match(digest, puzzle, m_bits):
            return candidate, attempts
        value = (value + 1) % space
    raise ValueError(
        f"exhausted {space} candidates without finding a {m_bits}-bit "
        f"partial preimage")


def verify_partial_preimage(puzzle: bytes, index: int, m_bits: int,
                            solution: bytes,
                            counter: Optional[HashCounter] = None) -> bool:
    """Check one sub-puzzle solution: one hash operation."""
    index_bytes = index.to_bytes(2, "big")
    digest = sha256(puzzle + index_bytes + solution, counter)
    return leading_bits_match(digest, puzzle, m_bits)


def count_expected_attempts(k: int, m_bits: int) -> float:
    """Expected hash operations to solve a (k, m) puzzle: ``k * 2^(m-1)``.

    This is the paper's ``ℓ(p)``. For ``m = 0`` every candidate succeeds on
    the first try, so the expectation is ``k``.
    """
    if k < 0 or m_bits < 0:
        raise ValueError("k and m_bits must be non-negative")
    if m_bits == 0:
        return float(k)
    return float(k) * float(2 ** (m_bits - 1))
