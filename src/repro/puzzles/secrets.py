"""Server secret-key management for puzzle generation.

The paper generates the secret "once at the start of a socket's lifetime"
(§5). We additionally support rotation, since a long-lived listener that
never rotates lets a patient attacker amortise precomputation; rotation
keeps the previous key valid for one grace window so in-flight challenges
still verify.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional


class SecretKey:
    """A (rotatable) server secret.

    Deterministic derivation from ``seed`` keeps simulations reproducible;
    pass ``seed=None`` for an OS-random key in interactive use.
    """

    KEY_BYTES = 32

    def __init__(self, seed: Optional[int] = 0) -> None:
        if seed is None:
            import os

            self._current = os.urandom(self.KEY_BYTES)
        else:
            self._current = hashlib.sha256(
                f"repro-secret/{seed}".encode("utf-8")).digest()
        self._previous: Optional[bytes] = None
        self._generation = 0
        self.last_rotated_at: Optional[float] = None

    @property
    def current(self) -> bytes:
        return self._current

    @property
    def generation(self) -> int:
        return self._generation

    def valid_keys(self) -> List[bytes]:
        """Keys acceptable for verification: current, then previous."""
        keys = [self._current]
        if self._previous is not None:
            keys.append(self._previous)
        return keys

    def rotate(self, now: Optional[float] = None) -> None:
        """Derive a fresh key; the old one stays valid for one grace window.

        *now* (simulation time) is recorded for diagnostics when given —
        the fault injector stamps mid-flight rotations with it.
        """
        self._previous = self._current
        self._generation += 1
        self._current = hashlib.sha256(
            self._current + b"/rotate").digest()
        self.last_rotated_at = now
