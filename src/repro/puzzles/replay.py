"""Timestamp-based challenge expiry — the paper's stateless replay defence.

The server embeds the generation timestamp in the challenge (via the TCP
timestamps option when negotiated, else inline in the option block). On
verification it checks the echoed timestamp against its clock; stale
solutions fail, so a captured (challenge, solution) pair is only replayable
within the window, and — because the pre-image binds the 4-tuple — only for
the original flow. The window is tunable, mirroring the kernel sysctl.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import PuzzleError

#: Default expiry window in seconds. The kernel patch exposes this as a
#: sysctl; the paper does not publish its default, so we pick a window a bit
#: larger than a worst-case solve-plus-RTT at the Nash difficulty.
DEFAULT_WINDOW_SECONDS = 8.0


class Freshness(Enum):
    """Why a timestamp passed or failed the replay check.

    Distinguishing FUTURE from EXPIRED matters for the observability
    counters: both are replay-window rejections (``ReplaysBlocked``), but
    a future-dated timestamp suggests forgery or clock trouble while an
    expired one is the ordinary replay/slow-solver case.
    """

    FRESH = "fresh"
    FUTURE = "future"
    EXPIRED = "expired"


@dataclass(frozen=True)
class ExpiryPolicy:
    """Freshness rule for challenge timestamps.

    ``window`` — how long after generation a solution is still accepted.
    ``skew`` — tolerated clock skew for timestamps that appear to be from
    the (near) future; meaningful when clients echo their own clocks.
    """

    window: float = DEFAULT_WINDOW_SECONDS
    skew: float = 0.5

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise PuzzleError(f"window must be positive, got {self.window!r}")
        if self.skew < 0:
            raise PuzzleError(f"skew must be >= 0, got {self.skew!r}")

    def classify(self, issued_at: float, now: float) -> Freshness:
        """Freshness verdict for a challenge issued at *issued_at*."""
        if issued_at > now + self.skew:
            return Freshness.FUTURE
        if (now - issued_at) > self.window:
            return Freshness.EXPIRED
        return Freshness.FRESH

    def is_fresh(self, issued_at: float, now: float) -> bool:
        """True iff a challenge issued at *issued_at* is valid at *now*."""
        return self.classify(issued_at, now) is Freshness.FRESH
