"""The Juels–Brainard puzzle scheme applied to TCP (paper §4, Figure 2).

Challenge construction
----------------------
The server computes ``y = h(secret, T, packet-level data)`` where the
packet-level data is the concatenation of the TCP initial sequence number
and the flow 4-tuple, and challenges the client with the first ``l`` bytes
of ``y``. The client brute-forces ``k`` strings ``s_i`` such that the first
``m`` bits of ``h(P || i || s_i)`` match the first ``m`` bits of ``P``.

Statelessness
-------------
The server keeps **no state** per challenge: on receiving a solution it
*recomputes* the pre-image from its secret, the echoed timestamp and the
packet's own header fields. A replayed or tampered solution therefore fails
because the recomputed pre-image no longer matches what the client solved.

Two solving modes
-----------------
* :class:`RealSolver` does the actual SHA-256 brute force — exact, used in
  unit tests, benchmarks, and small-``m`` simulations.
* :class:`ModeledSolver` samples the brute-force attempt count from the
  exact distribution (sum of ``k`` geometric(2^-m) variables) and emits
  deterministic placeholder solution strings derived from the pre-image.
  Placeholders preserve the binding property — verification recomputes the
  pre-image and the expected placeholders, so stale timestamps, wrong flows
  and fabricated solutions all still fail — while avoiding ``k·2^(m-1)``
  real hashes per simulated connection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence

import random
import struct

from hashlib import sha256 as _hashlib_sha256

from repro.crypto.hashcash import find_partial_preimage, verify_partial_preimage
from repro.crypto.sha256 import HashCounter, sha256
from repro.errors import PuzzleError
from repro.puzzles.params import PuzzleParams
from repro.puzzles.replay import ExpiryPolicy, Freshness
from repro.puzzles.secrets import SecretKey

# Prepacked big-endian encoders for the hot challenge path: one C call
# instead of five ``int.to_bytes`` plus concatenation. Byte layouts are
# identical to the spelled-out versions they replaced.
_pack_binding = struct.Struct(">IIIHH").pack
_pack_issued_ms = struct.Struct(">Q").pack
#: issue_preimage's fused layout: the ">Q" timestamp immediately followed
#: by the ">IIIHH" binding — byte-identical to the two packs concatenated.
_pack_issue = struct.Struct(">QIIIHH").pack


@dataclass(frozen=True)
class FlowBinding:
    """The packet-level data a challenge is bound to.

    All fields are plain integers so the binding is independent of the
    network layer's packet classes (the TCP stack constructs one from a
    received SYN/ACK packet).
    """

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    isn: int
    #: Memoised :meth:`pack` output. The same binding is packed at
    #: challenge issue and again (per candidate secret key) at
    #: verification; underscore-prefixed so fingerprints and exports skip
    #: it.
    _packed: Optional[bytes] = field(default=None, repr=False,
                                     compare=False)

    def pack(self) -> bytes:
        """Canonical byte encoding hashed into the pre-image (memoised)."""
        packed = self._packed
        if packed is None:
            # isn(4) | src_ip(4) | dst_ip(4) | src_port(2) | dst_port(2),
            # all big-endian — same layout as the per-field to_bytes chain.
            packed = _pack_binding(self.isn, self.src_ip, self.dst_ip,
                                   self.src_port, self.dst_port)
            object.__setattr__(self, "_packed", packed)
        return packed


@dataclass(frozen=True)
class Challenge:
    """A puzzle challenge as carried in a SYN-ACK option block."""

    params: PuzzleParams
    preimage: bytes
    issued_at_ms: int
    binding: FlowBinding

    @property
    def issued_at(self) -> float:
        """Issue time in seconds."""
        return self.issued_at_ms / 1000.0


@dataclass
class Solution:
    """A solved challenge as carried in an ACK option block.

    ``attempts`` records how many hash operations the solver spent — real
    SHA-256 calls for :class:`RealSolver`, a sampled count for
    :class:`ModeledSolver`. It is what the host models turn into CPU time.
    """

    params: PuzzleParams
    solutions: List[bytes]
    issued_at_ms: int
    attempts: int = 0
    mss: int = 1460
    wscale: int = 7

    def __post_init__(self) -> None:
        if len(self.solutions) != self.params.k:
            raise PuzzleError(
                f"expected {self.params.k} solution strings, "
                f"got {len(self.solutions)}")
        for s in self.solutions:
            if len(s) != self.params.length_bytes:
                raise PuzzleError(
                    f"solution string length {len(s)} != l="
                    f"{self.params.length_bytes}")


class VerifyStatus(Enum):
    """Outcome of stateless verification."""

    OK = "ok"
    EXPIRED = "expired"
    FUTURE_TIMESTAMP = "future-timestamp"
    PARAMS_MISMATCH = "params-mismatch"
    BAD_SOLUTION = "bad-solution"


@dataclass(frozen=True)
class VerifyResult:
    status: VerifyStatus
    hashes_spent: int = 0

    @property
    def ok(self) -> bool:
        return self.status is VerifyStatus.OK


def _modeled_placeholder(preimage: bytes, index: int, length: int) -> bytes:
    """Deterministic stand-in solution string for the modelled mode.

    Derived from the pre-image so that verification-side recomputation
    preserves the binding semantics of the real scheme (see module doc).
    """
    return sha256(preimage + index.to_bytes(2, "big") + b"/modeled")[:length]


class RealSolver:
    """Actual SHA-256 brute force. Exact but exponential in ``m``."""

    name = "real"

    def solve(self, challenge: Challenge, rng: random.Random,
              counter: Optional[HashCounter] = None) -> Solution:
        params = challenge.params
        solutions: List[bytes] = []
        total_attempts = 0
        for i in range(params.k):
            # Sequential scan from zero: the cheapest honest strategy. The
            # matching digest prefix is uniform, so the attempt count is
            # ~Uniform{1..2^m} with mean 2^(m-1) — exactly the paper's ℓ.
            solution, attempts = find_partial_preimage(
                challenge.preimage, i, params.m, params.length_bytes,
                counter=counter, start=0)
            solutions.append(solution)
            total_attempts += attempts
        return Solution(params=params, solutions=solutions,
                        issued_at_ms=challenge.issued_at_ms,
                        attempts=total_attempts)


class ModeledSolver:
    """Samples the brute-force attempt count instead of hashing.

    The number of candidates tried until an ``m``-bit match is geometric
    with success probability ``2^-m``; a ``(k, m)`` puzzle costs the sum of
    ``k`` such draws. Expectation ``k·2^(m-1)``... strictly ``k·2^m`` for a
    geometric starting at 1 — the paper uses the *average-case exhaustive
    scan* cost ``2^(m-1)`` per solution, so we sample uniformly over the
    scan order: attempts ~ Uniform{1..2^m}, mean ``(2^m+1)/2 ≈ 2^(m-1)``.
    """

    name = "modeled"

    def sample_attempts(self, params: PuzzleParams,
                        rng: random.Random) -> int:
        total = 0
        space = 1 << params.m
        for _ in range(params.k):
            total += rng.randint(1, space)
        return total

    def solve(self, challenge: Challenge, rng: random.Random,
              counter: Optional[HashCounter] = None) -> Solution:
        params = challenge.params
        attempts = self.sample_attempts(params, rng)
        if counter is not None:
            counter.add(attempts)
        solutions = [
            _modeled_placeholder(challenge.preimage, i, params.length_bytes)
            for i in range(params.k)
        ]
        return Solution(params=params, solutions=solutions,
                        issued_at_ms=challenge.issued_at_ms,
                        attempts=attempts)


class JuelsBrainardScheme:
    """Server-side challenge generation and stateless verification.

    Parameters
    ----------
    secret:
        The server's secret key (rotatable).
    expiry:
        Freshness policy for the embedded timestamp (replay defence).
    mode:
        ``"real"`` — solutions are genuine partial pre-images, verified by
        hashing; ``"modeled"`` — solutions are pre-image-derived
        placeholders, verified by recomputation (same binding semantics,
        constant cost). Both sides of a simulation must agree on the mode.
    """

    def __init__(self, secret: Optional[SecretKey] = None,
                 expiry: Optional[ExpiryPolicy] = None,
                 mode: str = "modeled") -> None:
        if mode not in ("real", "modeled"):
            raise PuzzleError(f"unknown scheme mode {mode!r}")
        self.secret = secret if secret is not None else SecretKey()
        self.expiry = expiry if expiry is not None else ExpiryPolicy()
        self.mode = mode

    def solver(self):
        """The solver matching this scheme's mode."""
        return RealSolver() if self.mode == "real" else ModeledSolver()

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def preimage(self, binding: FlowBinding, issued_at_ms: int,
                 length_bytes: int, key: Optional[bytes] = None,
                 counter: Optional[HashCounter] = None) -> bytes:
        """First ``l`` bytes of ``h(secret, T, packet-level data)``."""
        if key is None:
            key = self.secret.current
        material = key + _pack_issued_ms(issued_at_ms) + binding.pack()
        return sha256(material, counter)[:length_bytes]

    def make_challenge(self, params: PuzzleParams, binding: FlowBinding,
                       now: float,
                       counter: Optional[HashCounter] = None) -> Challenge:
        """Generate a challenge at time *now* (one hash operation)."""
        # Masked to 32 bits to match the 4-byte wire timestamp (Figure 4).
        issued_at_ms = int(round(now * 1000.0)) & 0xFFFFFFFF
        preimage = self.preimage(binding, issued_at_ms, params.length_bytes,
                                 counter=counter)
        return Challenge(params=params, preimage=preimage,
                         issued_at_ms=issued_at_ms, binding=binding)

    def issue_preimage(self, params: PuzzleParams, src_ip: int,
                       dst_ip: int, src_port: int, dst_port: int,
                       isn: int, now: float,
                       counter: Optional[HashCounter] = None) -> bytes:
        """The challenge-issue hash from struct-packed material, with no
        FlowBinding/Challenge allocation — the hot path for responses
        whose challenge block is never read (replies to spoofed floods
        that the fabric blackholes). Hash input, counter accounting and
        the returned pre-image are byte-identical to
        ``make_challenge(...).preimage``."""
        issued_at_ms = int(round(now * 1000.0)) & 0xFFFFFFFF
        # One fused pack (">Q" timestamp ‖ ">IIIHH" binding) and a direct
        # hashlib call: same material, same digest, same counter charge
        # as preimage()/sha256(), minus three frames per challenge.
        material = self.secret.current + _pack_issue(
            issued_at_ms, isn, src_ip, dst_ip, src_port, dst_port)
        if counter is not None:
            counter.count += 1
        return _hashlib_sha256(material).digest()[:params.length_bytes]

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify(self, solution: Solution, binding: FlowBinding, now: float,
               params: PuzzleParams, rng: Optional[random.Random] = None,
               counter: Optional[HashCounter] = None) -> VerifyResult:
        """Stateless verification of a solution option.

        Recomputes the pre-image from the packet's own fields and the echoed
        timestamp (one hash per candidate secret key), enforces the expiry
        window, then checks the ``k`` sub-puzzle solutions in random order
        with early exit on the first violation.
        """
        spent = HashCounter()
        result = self._verify_inner(solution, binding, now, params, rng,
                                    spent)
        if counter is not None:
            counter.add(spent.count)
        return VerifyResult(status=result, hashes_spent=spent.count)

    def _verify_inner(self, solution: Solution, binding: FlowBinding,
                      now: float, params: PuzzleParams,
                      rng: Optional[random.Random],
                      spent: HashCounter) -> VerifyStatus:
        if solution.params.k != params.k or solution.params.m != params.m \
                or solution.params.length_bytes != params.length_bytes:
            return VerifyStatus.PARAMS_MISMATCH

        issued_at = solution.issued_at_ms / 1000.0
        freshness = self.expiry.classify(issued_at, now)
        if freshness is Freshness.FUTURE:
            return VerifyStatus.FUTURE_TIMESTAMP
        if freshness is Freshness.EXPIRED:
            return VerifyStatus.EXPIRED

        order = list(range(params.k))
        if rng is not None:
            rng.shuffle(order)

        # Try current key first, then the rotation-grace key.
        for key in self.secret.valid_keys():
            preimage = self.preimage(binding, solution.issued_at_ms,
                                     params.length_bytes, key=key,
                                     counter=spent)
            if self._check_solutions(preimage, solution, params, order,
                                     spent):
                return VerifyStatus.OK
        return VerifyStatus.BAD_SOLUTION

    def _check_solutions(self, preimage: bytes, solution: Solution,
                         params: PuzzleParams, order: Sequence[int],
                         spent: HashCounter) -> bool:
        for i in order:
            s = solution.solutions[i]
            if self.mode == "real":
                if not verify_partial_preimage(preimage, i, params.m, s,
                                               counter=spent):
                    return False
            else:
                spent.add(1)  # recomputing the placeholder is one hash op
                if s != _modeled_placeholder(preimage, i,
                                             params.length_bytes):
                    return False
        return True
