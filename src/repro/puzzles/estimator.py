"""Expected hash-operation cost model (paper §4.1).

These closed forms are what the game-theoretic core optimises over:

* ``ℓ(p) = k · 2^(m-1)`` — expected client work to solve,
* ``g(p) = 1``            — server work to generate a challenge,
* ``d(p) = 1 + k/2``      — expected server work to verify a solution
  (one hash to regenerate the pre-image, plus k/2 expected sub-puzzle
  checks when spot-checking uniformly at random).

The provider's per-request net payoff is ``ℓ(p) − g(p) − d(p)``
(= the integrand of Equation (5)).
"""

from __future__ import annotations

from repro.puzzles.params import PuzzleParams


def expected_solution_hashes(params: PuzzleParams) -> float:
    """``ℓ(p)``: expected hashes a client spends solving."""
    return params.expected_hashes


def expected_generation_hashes(params: PuzzleParams) -> float:
    """``g(p)``: hashes the server spends generating a challenge (always 1)."""
    return 1.0


def expected_verification_hashes(params: PuzzleParams) -> float:
    """``d(p)``: expected hashes the server spends verifying a solution."""
    return 1.0 + params.k / 2.0


def provider_net_work(params: PuzzleParams) -> float:
    """``ℓ(p) − g(p) − d(p) = k·2^(m-1) − 2 − k/2`` (Equation (5) integrand)."""
    return (expected_solution_hashes(params)
            - expected_generation_hashes(params)
            - expected_verification_hashes(params))
