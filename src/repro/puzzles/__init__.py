"""The TCP client-puzzle protocol (paper §4–§5).

Implements the Juels–Brainard puzzle scheme applied to TCP:

* :mod:`repro.puzzles.params` — the ``(k, m)`` difficulty tuple and wire
  sizing;
* :mod:`repro.puzzles.juels` — challenge construction from
  ``h(secret, T, packet-level data)``, brute-force and modelled solving,
  stateless verification;
* :mod:`repro.puzzles.estimator` — the cost model ``ℓ(p) = k·2^(m-1)``,
  ``g(p) = 1``, ``d(p) = 1 + k/2`` used by the game-theoretic core;
* :mod:`repro.puzzles.secrets` — server secret-key management;
* :mod:`repro.puzzles.replay` — timestamp-based expiry (replay defence);
* :mod:`repro.puzzles.codec` — byte-exact encoding of the challenge
  (opcode 0xfc, Figure 4) and solution (opcode 0xfd, Figure 5) TCP options.
"""

from repro.puzzles.params import PuzzleParams
from repro.puzzles.juels import (
    Challenge,
    JuelsBrainardScheme,
    ModeledSolver,
    RealSolver,
    Solution,
)
from repro.puzzles.estimator import (
    expected_generation_hashes,
    expected_solution_hashes,
    expected_verification_hashes,
    provider_net_work,
)
from repro.puzzles.secrets import SecretKey
from repro.puzzles.replay import ExpiryPolicy

__all__ = [
    "PuzzleParams",
    "Challenge",
    "Solution",
    "JuelsBrainardScheme",
    "RealSolver",
    "ModeledSolver",
    "expected_generation_hashes",
    "expected_solution_hashes",
    "expected_verification_hashes",
    "provider_net_work",
    "SecretKey",
    "ExpiryPolicy",
]
