"""Byte-exact TCP option encoding for challenges and solutions.

Reproduces Figures 4 and 5 of the paper:

Challenge block (SYN-ACK, opcode ``0xfc``)::

    +--------+--------+--------+--------+
    |  0xfc  | Length |   k    |   m    |
    +--------+--------+--------+--------+
    |   l    |  [timestamp, 4 bytes]    |
    +--------+--------+--------+--------+
    |        pre-image (l bytes)  ...   |
    +-----------------------------------+
    |        NOP padding to 32 bits     |
    +-----------------------------------+

Solution block (ACK, opcode ``0xfd``)::

    +--------+--------+-----------------+
    |  0xfd  | Length |    MSS value    |
    +--------+--------+-----------------+
    | Wscale |  [timestamp, 4 bytes]    |
    +--------+--------+--------+--------+
    |     k solutions (k × l bytes) ... |
    +-----------------------------------+
    |        NOP padding to 32 bits     |
    +-----------------------------------+

The solution block re-sends MSS and window-scale because the stateless
server discarded the client's SYN options (§5). The 4-byte timestamp is
embedded when the TCP timestamps option is not in use (``embed_timestamp``);
with timestamps negotiated, the challenge timestamp rides in the standard
option instead and the blocks shrink by 4 bytes.

``Length`` counts the block including opcode and length bytes but excluding
NOP padding, per standard TCP option conventions.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

from repro.errors import CodecError
from repro.puzzles.juels import Challenge, FlowBinding, Solution
from repro.puzzles.params import MAX_TCP_OPTION_BYTES, PuzzleParams

#: Unused TCP option opcodes adopted by the paper.
CHALLENGE_OPCODE = 0xFC
SOLUTION_OPCODE = 0xFD
NOP_OPCODE = 0x01


def _pad32(block: bytes) -> bytes:
    """Append NOPs so the block length is a multiple of 4 (32-bit aligned)."""
    remainder = len(block) % 4
    if remainder:
        block += bytes([NOP_OPCODE]) * (4 - remainder)
    return block


def _strip_nops(data: bytes) -> bytes:
    """Drop leading NOPs (tolerate padding from a preceding option)."""
    i = 0
    while i < len(data) and data[i] == NOP_OPCODE:
        i += 1
    return data[i:]


def encode_challenge(challenge: Challenge,
                     embed_timestamp: bool = True) -> bytes:
    """Serialise a challenge into its option block (Figure 4)."""
    params = challenge.params
    preimage = challenge.preimage
    if len(preimage) != params.length_bytes:
        raise CodecError(
            f"pre-image length {len(preimage)} != l={params.length_bytes}")
    body = bytes([params.k, params.m, params.length_bytes])
    if embed_timestamp:
        body += (challenge.issued_at_ms & 0xFFFFFFFF).to_bytes(4, "big")
    body += preimage
    length = 2 + len(body)
    if length > MAX_TCP_OPTION_BYTES:
        raise CodecError(
            f"challenge block of {length} bytes exceeds the "
            f"{MAX_TCP_OPTION_BYTES}-byte TCP option budget")
    return _pad32(bytes([CHALLENGE_OPCODE, length]) + body)


def decode_challenge(data: bytes, binding: FlowBinding,
                     timestamp_ms: Optional[int] = None) -> Challenge:
    """Parse a challenge option block.

    *binding* comes from the enclosing packet's header fields; when the
    block has no embedded timestamp, the caller supplies the value carried
    by the TCP timestamps option as *timestamp_ms*.
    """
    data = _strip_nops(data)
    if len(data) < 5:
        raise CodecError("challenge block truncated")
    if data[0] != CHALLENGE_OPCODE:
        raise CodecError(
            f"expected opcode {CHALLENGE_OPCODE:#x}, got {data[0]:#x}")
    length = data[1]
    if length < 5 or length > len(data):
        raise CodecError(f"bad challenge block length {length}")
    k, m, l = data[2], data[3], data[4]
    offset = 5
    embedded = length == 2 + 3 + 4 + l
    if embedded:
        timestamp_ms = int.from_bytes(data[offset:offset + 4], "big")
        offset += 4
    elif length != 2 + 3 + l:
        raise CodecError(
            f"challenge length {length} inconsistent with l={l}")
    if timestamp_ms is None:
        raise CodecError(
            "no embedded timestamp and none supplied from the TS option")
    preimage = data[offset:offset + l]
    if len(preimage) != l:
        raise CodecError("challenge pre-image truncated")
    try:
        params = PuzzleParams(k=k, m=m, length_bytes=l)
    except Exception as exc:
        raise CodecError(f"invalid puzzle parameters on the wire: {exc}")
    return Challenge(params=params, preimage=preimage,
                     issued_at_ms=timestamp_ms, binding=binding)


def encode_solution(solution: Solution,
                    embed_timestamp: bool = True) -> bytes:
    """Serialise a solution into its option block (Figure 5)."""
    params = solution.params
    if not (0 <= solution.mss <= 0xFFFF):
        raise CodecError(f"MSS {solution.mss} out of range")
    if not (0 <= solution.wscale <= 14):
        raise CodecError(f"window scale {solution.wscale} out of range")
    body = solution.mss.to_bytes(2, "big") + bytes([solution.wscale])
    if embed_timestamp:
        body += (solution.issued_at_ms & 0xFFFFFFFF).to_bytes(4, "big")
    for s in solution.solutions:
        body += s
    length = 2 + len(body)
    if length > MAX_TCP_OPTION_BYTES:
        raise CodecError(
            f"solution block of {length} bytes (k={params.k}, "
            f"l={params.length_bytes}) exceeds the "
            f"{MAX_TCP_OPTION_BYTES}-byte TCP option budget")
    return _pad32(bytes([SOLUTION_OPCODE, length]) + body)


def decode_solution(data: bytes, params: PuzzleParams,
                    timestamp_ms: Optional[int] = None) -> Solution:
    """Parse a solution option block against the server's current params.

    The wire format does not carry ``k``/``m``/``l`` (the server is
    stateless and verifies with its current sysctl configuration), so the
    expected :class:`PuzzleParams` must be supplied.
    """
    data = _strip_nops(data)
    if len(data) < 5:
        raise CodecError("solution block truncated")
    if data[0] != SOLUTION_OPCODE:
        raise CodecError(
            f"expected opcode {SOLUTION_OPCODE:#x}, got {data[0]:#x}")
    length = data[1]
    k, l = params.k, params.length_bytes
    with_ts = 2 + 3 + 4 + k * l
    without_ts = 2 + 3 + k * l
    if length == with_ts:
        embedded = True
    elif length == without_ts:
        embedded = False
    else:
        raise CodecError(
            f"solution length {length} does not match k={k}, l={l} "
            f"(expected {without_ts} or {with_ts})")
    if length > len(data):
        raise CodecError("solution block truncated")
    mss = int.from_bytes(data[2:4], "big")
    wscale = data[4]
    offset = 5
    if embedded:
        timestamp_ms = int.from_bytes(data[offset:offset + 4], "big")
        offset += 4
    if timestamp_ms is None:
        raise CodecError(
            "no embedded timestamp and none supplied from the TS option")
    solutions = []
    for _ in range(k):
        solutions.append(data[offset:offset + l])
        offset += l
    return Solution(params=params, solutions=solutions,
                    issued_at_ms=timestamp_ms, mss=mss, wscale=wscale)


# Cached: PuzzleParams is frozen/hashable and every packet carrying an
# option block asks for these sizes; a sweep uses a handful of distinct
# (params, flag) pairs but millions of packets.
@lru_cache(maxsize=256)
def challenge_wire_size(params: PuzzleParams,
                        embed_timestamp: bool = True) -> Tuple[int, int]:
    """(unpadded, padded) byte size of a challenge block."""
    length = 2 + 3 + (4 if embed_timestamp else 0) + params.length_bytes
    padded = length + (-length) % 4
    return length, padded


@lru_cache(maxsize=256)
def solution_wire_size(params: PuzzleParams,
                       embed_timestamp: bool = True) -> Tuple[int, int]:
    """(unpadded, padded) byte size of a solution block."""
    length = params.solution_wire_bytes(embed_timestamp)
    padded = length + (-length) % 4
    return length, padded
