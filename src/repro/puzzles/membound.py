"""Memory-bound proof-of-work (§7, "Fairness and power considerations").

The paper's closing discussion notes that CPU puzzles penalise power-limited
benign devices (phones, IoT) far more than GPU/desktop users, and points at
memory-bound functions (Abadi et al. 2005) "that promise more uniform
solution requirements" as a future direction. This module implements that
direction so the ablations can quantify the fairness gain:

* a real, replayable memory-bound puzzle: a pseudo-random table ``T`` of
  ``2^table_bits`` words is derived from the challenge; a candidate ``s``
  is checked by walking ``T`` for ``walk_length`` dependent lookups and
  comparing the low ``m`` bits of the end state. Finding a solution takes
  ~``2^(m-1)`` walks, each dominated by random memory accesses;
* a modelled solver that samples the walk count and converts *accesses*
  to time via a per-device memory rate — the analogue of the hash-rate
  model, with the crucial property that memory rates vary ~2× across the
  device spectrum where SHA-256 rates vary ~5–7×.

Trade-off faithfully reproduced: verification costs a full walk
(``walk_length`` accesses) instead of hashcash's ~1 hash, so the provider's
net-work margin shrinks — the reason the paper treats this as future work
rather than the default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import random

from repro.crypto.sha256 import sha256
from repro.errors import PuzzleError


@dataclass(frozen=True)
class MemboundParams:
    """Difficulty of a memory-bound puzzle.

    ``table_bits`` — the table has ``2^table_bits`` words (sized to defeat
    caches in a real deployment; small in tests).
    ``walk_length`` — dependent lookups per candidate.
    ``m`` — difficulty bits: the walk's end state must match the target's
    low ``m`` bits.
    """

    table_bits: int = 16
    walk_length: int = 32
    m: int = 8

    def __post_init__(self) -> None:
        if not 4 <= self.table_bits <= 28:
            raise PuzzleError(
                f"table_bits must be in [4, 28], got {self.table_bits}")
        if self.walk_length < 1:
            raise PuzzleError("walk_length must be >= 1")
        if not 0 <= self.m <= 30:
            raise PuzzleError(f"m must be in [0, 30], got {self.m}")

    @property
    def table_size(self) -> int:
        return 1 << self.table_bits

    @property
    def expected_walks(self) -> float:
        """~``2^(m-1)`` candidate walks until a match (scan average)."""
        if self.m == 0:
            return 1.0
        return float(2 ** (self.m - 1))

    @property
    def expected_accesses(self) -> float:
        """Expected memory accesses to solve: the client's cost unit."""
        return self.expected_walks * self.walk_length

    @property
    def verification_accesses(self) -> int:
        """Accesses the server spends verifying: one full walk."""
        return self.walk_length


def build_table(seed: bytes, params: MemboundParams) -> List[int]:
    """Derive the public lookup table from *seed* (deterministic).

    Entries are pseudo-random indices into the table itself, chained from
    SHA-256 output blocks.
    """
    size = params.table_size
    mask = size - 1
    table: List[int] = []
    counter = 0
    material = b""
    while len(table) < size:
        material = sha256(seed + counter.to_bytes(4, "big"))
        counter += 1
        for offset in range(0, 32, 4):
            if len(table) >= size:
                break
            word = int.from_bytes(material[offset:offset + 4], "big")
            table.append(word & mask)
    return table


def _walk(table: List[int], params: MemboundParams, start: int) -> int:
    """The dependent-lookup walk; each step needs the previous result.

    The candidate is mixed into every lookup index: iterated lookups on a
    random table alone would merge trajectories permanently (random-map
    coalescence), shrinking the walk's image until some targets become
    unreachable. With the candidate folded in, merged states diverge again
    on the next step and the end states stay ~uniform.
    """
    mask = params.table_size - 1
    state = start & mask
    for step in range(params.walk_length):
        state = table[(state + start + step) & mask]
    return state


def solve(table: List[int], params: MemboundParams, target: int,
          start: int = 0) -> Tuple[int, int, int]:
    """Scan candidates from *start* until a walk ends matching *target*'s
    low ``m`` bits. Returns ``(solution, walks, accesses)``."""
    mask = (1 << params.m) - 1
    space = params.table_size
    walks = 0
    candidate = start % space
    for _ in range(space):
        walks += 1
        end = _walk(table, params, candidate)
        if (end & mask) == (target & mask):
            return candidate, walks, walks * params.walk_length
        candidate = (candidate + 1) % space
    raise PuzzleError(
        f"candidate space exhausted without an m={params.m} match "
        f"(table_bits={params.table_bits} too small for this m)")


def verify(table: List[int], params: MemboundParams, target: int,
           solution: int) -> bool:
    """Replay one walk: ``walk_length`` accesses."""
    mask = (1 << params.m) - 1
    return (_walk(table, params, solution) & mask) == (target & mask)


class ModeledMemboundSolver:
    """Sample the walk count instead of walking (simulation fast path)."""

    def sample_walks(self, params: MemboundParams,
                     rng: random.Random) -> int:
        return rng.randint(1, 2 ** params.m) if params.m else 1

    def sample_accesses(self, params: MemboundParams,
                        rng: random.Random) -> int:
        return self.sample_walks(params, rng) * params.walk_length


def solve_seconds(params: MemboundParams, memory_rate: float,
                  walks: Optional[float] = None) -> float:
    """Time to perform the solve's memory accesses at *memory_rate*
    (random accesses/second — the device property that is far more uniform
    across hardware than hash rate)."""
    if memory_rate <= 0:
        raise PuzzleError("memory_rate must be positive")
    if walks is None:
        walks = params.expected_walks
    return walks * params.walk_length / memory_rate


def fairness_ratio(rates: List[float]) -> float:
    """max/min solve-time ratio across a device population (lower=fairer).

    Because solve time is inversely proportional to the rate, this is just
    ``max(rate)/min(rate)`` — exposed for both hash and memory rates so the
    ablation can compare like for like.
    """
    if not rates or any(r <= 0 for r in rates):
        raise PuzzleError("rates must be positive and non-empty")
    return max(rates) / min(rates)
