"""Puzzle difficulty parameters.

A puzzle in the Juels–Brainard scheme is described by the tuple ``(k, m)``:
the client must produce ``k`` independent solutions, each matching the first
``m`` bits of the challenge. The third wire-level parameter is ``l``, the
byte length of the challenge pre-image and of each solution string
(the paper's ``l``-bit strings; we size in whole bytes for wire alignment).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PuzzleError

#: Default pre-image/solution length in bytes. Chosen so a k=4 solution
#: option (the largest the paper sweeps) still fits the 40-byte TCP option
#: budget: 3 header bytes + MSS(2) + wscale(1) + 4×8 solution bytes = 38.
DEFAULT_LENGTH_BYTES = 8

#: Maximum TCP option space (RFC 793: data offset is 4 bits of 32-bit words,
#: so header ≤ 60 bytes, options ≤ 40 bytes).
MAX_TCP_OPTION_BYTES = 40


@dataclass(frozen=True)
class PuzzleParams:
    """Immutable ``(k, m)`` difficulty with wire sizing.

    Attributes
    ----------
    k:
        Number of sub-puzzle solutions requested (paper sweeps 1–4).
    m:
        Difficulty bits per solution (paper sweeps 4–20; Nash example 17).
    length_bytes:
        Byte length ``l`` of the pre-image and of each solution string.
    """

    k: int
    m: int
    length_bytes: int = DEFAULT_LENGTH_BYTES

    def __post_init__(self) -> None:
        if self.k < 1:
            raise PuzzleError(f"k must be >= 1, got {self.k}")
        if self.m < 0:
            raise PuzzleError(f"m must be >= 0, got {self.m}")
        if self.length_bytes < 1 or self.length_bytes > 255:
            raise PuzzleError(
                f"length_bytes must be in [1, 255], got {self.length_bytes}")
        if self.m > 8 * self.length_bytes:
            raise PuzzleError(
                f"difficulty m={self.m} exceeds pre-image length "
                f"{8 * self.length_bytes} bits")

    @property
    def expected_hashes(self) -> float:
        """``ℓ(p) = k · 2^(m-1)`` — expected hash ops to solve (paper §4.1)."""
        if self.m == 0:
            return float(self.k)
        return float(self.k) * float(2 ** (self.m - 1))

    @property
    def worst_case_hashes(self) -> int:
        """``k · 2^m`` — maximum brute-force work."""
        return self.k * (2 ** self.m)

    def solution_wire_bytes(self, embed_timestamp: bool = False) -> int:
        """Bytes the solution option occupies before NOP padding."""
        base = 3 + 2 + 1 + self.k * self.length_bytes
        return base + (4 if embed_timestamp else 0)

    def fits_in_options(self, embed_timestamp: bool = False) -> bool:
        """Whether the solution block fits the 40-byte TCP option budget."""
        return self.solution_wire_bytes(embed_timestamp) <= MAX_TCP_OPTION_BYTES

    def __str__(self) -> str:
        return f"(k={self.k}, m={self.m})"
