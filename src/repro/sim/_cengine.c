/* Compiled core of the discrete-event engine.
 *
 * A faithful C translation of the timer-wheel Engine in
 * repro/sim/engine.py: same bucketed calendar queue (WHEEL_SLOTS ring of
 * per-tick buckets), same lazy-deletion overflow heap with compaction,
 * same batched dispatch, same (time, seq) total order, same stats keys.
 * The Python module differentially self-tests this class against the
 * pure-Python reference at import and only then adopts it, so any
 * semantic drift between the two implementations disqualifies this one
 * rather than corrupting runs.
 *
 * Invariants mirrored from the Python engine:
 *   - events fire in exact (time, seq) order; seq is the schedule counter;
 *   - wheel residents always satisfy tick in [cursor, cursor+WHEEL_SLOTS);
 *   - Event.cancel is O(1): swap-remove from the wheel bucket, flag-only
 *     in the active batch, lazy + compaction in the overflow heap;
 *   - with no profiler attached a run() makes exactly two perf_counter
 *     calls, and perf_counter is looked up on repro.sim.engine each run
 *     so test monkeypatching keeps working;
 *   - the clock is left at `until` when the queues drain early, and the
 *     cursor fast-forwards only when nothing is pending.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stddef.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define WHEEL_SLOTS 256
#define WHEEL_MASK 255
#define COMPACT_MIN_HEAP 64
#define MAX_TICK (1LL << 62)
/* Doubles at or above this cannot be cast to long long safely; they are
 * "far future" by definition and saturate to MAX_TICK. */
#define TICK_SATURATE 4.6e18

static PyObject *SimulationError;  /* borrowed from repro.errors, immortal */
static PyObject *empty_tuple;

enum { LOC_NONE = 0, LOC_WHEEL = 1, LOC_OVERFLOW = 2, LOC_BATCH = 3 };

typedef struct EngineObject EngineObject;

typedef struct {
    PyObject_HEAD
    double time;
    long long seq;
    PyObject *callback;
    PyObject *args;          /* argument tuple, owned */
    EngineObject *engine;    /* owner engine while queued, owned */
    Py_ssize_t pos;          /* index in wheel bucket while LOC_WHEEL */
    int slot;                /* wheel slot index while LOC_WHEEL */
    char cancelled;
    char loc;
} EventObject;

typedef struct {
    EventObject **items;     /* strong references */
    Py_ssize_t len;
    Py_ssize_t cap;
} EvVec;

struct EngineObject {
    PyObject_HEAD
    double now;
    double gran;
    double inv_gran;
    double wall_seconds;
    long long seq;
    long long cursor;        /* next tick to examine */
    long long active_tick;   /* tick of the current batch, -1 when none */
    long long events_processed;
    long long events_cancelled;
    long long compactions;
    long long pending;       /* raw entries incl. lazily-deleted overflow */
    long long live;          /* entries that will actually fire */
    long long high_water;
    long long overflow_dead;
    long long wheel_count;
    int running;
    int stopped;
    PyObject *profiler;      /* NULL or a profiler object */
    PyObject *clock_offsets; /* dict */
    EvVec wheel[WHEEL_SLOTS];
    EvVec overflow;          /* min-heap by (time, seq), lazy deletion */
    EvVec batch;             /* ascending (time, seq); batch_pos = next */
    Py_ssize_t batch_pos;
    PyObject *attr_dict;     /* instance __dict__: the observability hub
                              * attaches itself as `engine.obs` */
};

static PyTypeObject Event_Type;
static PyTypeObject Engine_Type;

/* Flood workloads allocate and retire millions of short-lived events;
 * a small freelist recycles their memory the way CPython's own float
 * and tuple freelists do. */
#define EVENT_FREELIST_MAX 512
static EventObject *event_freelist[EVENT_FREELIST_MAX];
static int event_freelist_len = 0;

/* ------------------------------------------------------------------ */
/* EvVec                                                              */
/* ------------------------------------------------------------------ */
static int
evvec_reserve(EvVec *v, Py_ssize_t need)
{
    if (need <= v->cap)
        return 0;
    Py_ssize_t cap = v->cap ? v->cap : 8;
    while (cap < need)
        cap += cap;
    EventObject **items = PyMem_Realloc(v->items, cap * sizeof(*items));
    if (!items) {
        PyErr_NoMemory();
        return -1;
    }
    v->items = items;
    v->cap = cap;
    return 0;
}

/* Append, taking over one strong reference. */
static int
evvec_push(EvVec *v, EventObject *ev)
{
    if (evvec_reserve(v, v->len + 1) < 0)
        return -1;
    v->items[v->len++] = ev;
    return 0;
}

/* ------------------------------------------------------------------ */
/* (time, seq) ordering                                               */
/* ------------------------------------------------------------------ */
static inline int
ev_lt(const EventObject *a, const EventObject *b)
{
    if (a->time < b->time)
        return 1;
    if (a->time > b->time)
        return 0;
    return a->seq < b->seq;
}

static int
cmp_ev_asc(const void *pa, const void *pb)
{
    const EventObject *a = *(EventObject *const *)pa;
    const EventObject *b = *(EventObject *const *)pb;
    if (a->time < b->time)
        return -1;
    if (a->time > b->time)
        return 1;
    return a->seq < b->seq ? -1 : 1;  /* seq unique: never equal */
}

/* ------------------------------------------------------------------ */
/* Overflow heap (min-heap, lazy deletion)                            */
/* ------------------------------------------------------------------ */
static int
heap_push(EvVec *h, EventObject *ev)
{
    if (evvec_push(h, ev) < 0)
        return -1;
    Py_ssize_t i = h->len - 1;
    EventObject **items = h->items;
    while (i > 0) {
        Py_ssize_t parent = (i - 1) >> 1;
        if (!ev_lt(items[i], items[parent]))
            break;
        EventObject *tmp = items[i];
        items[i] = items[parent];
        items[parent] = tmp;
        i = parent;
    }
    return 0;
}

/* Pop the minimum; returns an owned reference. Caller checks len > 0. */
static EventObject *
heap_pop(EvVec *h)
{
    EventObject **items = h->items;
    EventObject *top = items[0];
    Py_ssize_t len = --h->len;
    if (len == 0)
        return top;
    EventObject *last = items[len];
    Py_ssize_t i = 0;
    for (;;) {
        Py_ssize_t child = 2 * i + 1;
        if (child >= len)
            break;
        if (child + 1 < len && ev_lt(items[child + 1], items[child]))
            child += 1;
        if (!ev_lt(items[child], last))
            break;
        items[i] = items[child];
        i = child;
    }
    items[i] = last;
    return top;
}

static void
heap_build(EvVec *h)
{
    EventObject **items = h->items;
    Py_ssize_t len = h->len;
    for (Py_ssize_t start = (len - 2) >> 1; start >= 0; start--) {
        EventObject *moving = items[start];
        Py_ssize_t i = start;
        for (;;) {
            Py_ssize_t child = 2 * i + 1;
            if (child >= len)
                break;
            if (child + 1 < len && ev_lt(items[child + 1], items[child]))
                child += 1;
            if (!ev_lt(items[child], moving))
                break;
            items[i] = items[child];
            i = child;
        }
        items[i] = moving;
    }
}

/* ------------------------------------------------------------------ */
/* Tick computation (saturating; matches int(t * inv_gran) for every   */
/* reachable value, and clamps the unreachable far-future range)       */
/* ------------------------------------------------------------------ */
static inline long long
tick_of(double scaled)
{
    if (scaled >= TICK_SATURATE)
        return MAX_TICK;
    return (long long)scaled;
}

/* ------------------------------------------------------------------ */
/* Event type                                                         */
/* ------------------------------------------------------------------ */
static void
note_cancelled(EngineObject *self, EventObject *ev);

static PyObject *
Event_cancel(EventObject *ev, PyObject *Py_UNUSED(ignored))
{
    if (ev->cancelled)
        Py_RETURN_NONE;
    ev->cancelled = 1;
    if (ev->engine != NULL)
        note_cancelled(ev->engine, ev);
    Py_RETURN_NONE;
}

static PyObject *
Event_repr(EventObject *ev)
{
    char buf[64];
    PyOS_snprintf(buf, sizeof(buf), "%.6f", ev->time);
    return PyUnicode_FromFormat("<Event t=%s seq=%lld %s>", buf, ev->seq,
                                ev->cancelled ? "cancelled" : "pending");
}

static int
Event_traverse(EventObject *ev, visitproc visit, void *arg)
{
    Py_VISIT(ev->callback);
    Py_VISIT(ev->args);
    Py_VISIT(ev->engine);
    return 0;
}

static int
Event_clear_impl(EventObject *ev)
{
    Py_CLEAR(ev->callback);
    Py_CLEAR(ev->args);
    Py_CLEAR(ev->engine);
    return 0;
}

static void
Event_dealloc(EventObject *ev)
{
    PyObject_GC_UnTrack(ev);
    Event_clear_impl(ev);
    if (event_freelist_len < EVENT_FREELIST_MAX)
        event_freelist[event_freelist_len++] = ev;
    else
        Py_TYPE(ev)->tp_free((PyObject *)ev);
}

static PyObject *
Event_get_cancelled(EventObject *ev, void *Py_UNUSED(closure))
{
    return PyBool_FromLong(ev->cancelled);
}

static PyObject *
Event_get_time(EventObject *ev, void *Py_UNUSED(closure))
{
    return PyFloat_FromDouble(ev->time);
}

static PyObject *
Event_get_seq(EventObject *ev, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(ev->seq);
}

static PyObject *
Event_get_callback(EventObject *ev, void *Py_UNUSED(closure))
{
    PyObject *cb = ev->callback ? ev->callback : Py_None;
    Py_INCREF(cb);
    return cb;
}

static PyObject *
Event_get_args(EventObject *ev, void *Py_UNUSED(closure))
{
    PyObject *args = ev->args ? ev->args : Py_None;
    Py_INCREF(args);
    return args;
}

static PyMethodDef Event_methods[] = {
    {"cancel", (PyCFunction)Event_cancel, METH_NOARGS,
     "Prevent the callback from firing. Idempotent, O(1)."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef Event_getset[] = {
    {"cancelled", (getter)Event_get_cancelled, NULL, NULL, NULL},
    {"time", (getter)Event_get_time, NULL, NULL, NULL},
    {"seq", (getter)Event_get_seq, NULL, NULL, NULL},
    {"callback", (getter)Event_get_callback, NULL, NULL, NULL},
    {"args", (getter)Event_get_args, NULL, NULL, NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject Event_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._cengine.Event",
    .tp_basicsize = sizeof(EventObject),
    .tp_dealloc = (destructor)Event_dealloc,
    .tp_repr = (reprfunc)Event_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Handle for a scheduled callback (compiled core).",
    .tp_traverse = (traverseproc)Event_traverse,
    .tp_clear = (inquiry)Event_clear_impl,
    .tp_methods = Event_methods,
    .tp_getset = Event_getset,
};

/* ------------------------------------------------------------------ */
/* Cancellation bookkeeping                                           */
/* ------------------------------------------------------------------ */
static void
compact_overflow(EngineObject *self)
{
    EvVec *ovf = &self->overflow;
    Py_ssize_t out = 0;
    for (Py_ssize_t i = 0; i < ovf->len; i++) {
        EventObject *ev = ovf->items[i];
        if (ev->cancelled) {
            self->pending--;
            Py_DECREF(ev);
        }
        else {
            ovf->items[out++] = ev;
        }
    }
    ovf->len = out;
    heap_build(ovf);
    self->overflow_dead = 0;
    self->compactions++;
}

static void
note_cancelled(EngineObject *self, EventObject *ev)
{
    self->events_cancelled++;
    self->live--;
    switch (ev->loc) {
    case LOC_BATCH:
        /* The dispatch loop skips the flag; the entry stays counted in
         * raw pending until it is reached. */
        return;
    case LOC_WHEEL: {
        EvVec *bucket = &self->wheel[ev->slot];
        Py_ssize_t pos = ev->pos;
        EventObject *last = bucket->items[--bucket->len];
        if (last != ev) {
            bucket->items[pos] = last;
            last->pos = pos;
        }
        self->wheel_count--;
        self->pending--;
        ev->loc = LOC_NONE;
        Py_CLEAR(ev->engine);
        Py_DECREF(ev);  /* the bucket's reference */
        return;
    }
    case LOC_OVERFLOW:
        ev->loc = LOC_NONE;
        Py_CLEAR(ev->engine);
        self->overflow_dead++;
        if (self->overflow.len >= COMPACT_MIN_HEAP
                && self->overflow_dead * 2 > self->overflow.len)
            compact_overflow(self);
        return;
    default:
        return;
    }
}

/* ------------------------------------------------------------------ */
/* Engine                                                             */
/* ------------------------------------------------------------------ */
static void
engine_clear_events(EngineObject *self)
{
    for (int s = 0; s < WHEEL_SLOTS; s++) {
        EvVec *bucket = &self->wheel[s];
        for (Py_ssize_t i = 0; i < bucket->len; i++) {
            EventObject *ev = bucket->items[i];
            ev->loc = LOC_NONE;
            Py_CLEAR(ev->engine);
            Py_DECREF(ev);
        }
        bucket->len = 0;
    }
    EvVec *ovf = &self->overflow;
    for (Py_ssize_t i = 0; i < ovf->len; i++) {
        EventObject *ev = ovf->items[i];
        ev->loc = LOC_NONE;
        Py_CLEAR(ev->engine);
        Py_DECREF(ev);
    }
    ovf->len = 0;
    EvVec *batch = &self->batch;
    for (Py_ssize_t i = self->batch_pos; i < batch->len; i++) {
        EventObject *ev = batch->items[i];
        ev->loc = LOC_NONE;
        Py_CLEAR(ev->engine);
        Py_DECREF(ev);
    }
    batch->len = 0;
    self->batch_pos = 0;
    self->wheel_count = 0;
    self->overflow_dead = 0;
    self->pending = 0;
    self->live = 0;
}

static int
Engine_init(EngineObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"wheel_granularity", NULL};
    double gran = 1e-3;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|d", kwlist, &gran))
        return -1;
    if (gran <= 0.0) {
        PyErr_Format(SimulationError,
                     "wheel_granularity must be > 0, got %g", gran);
        return -1;
    }
    /* Re-init support: drop any queued events from a previous __init__. */
    engine_clear_events(self);
    self->gran = gran;
    self->inv_gran = 1.0 / gran;
    self->now = 0.0;
    self->wall_seconds = 0.0;
    self->seq = 0;
    self->cursor = 0;
    self->active_tick = -1;
    self->events_processed = 0;
    self->events_cancelled = 0;
    self->compactions = 0;
    self->high_water = 0;
    self->running = 0;
    self->stopped = 0;
    Py_CLEAR(self->profiler);
    PyObject *offsets = PyDict_New();
    if (!offsets)
        return -1;
    Py_XSETREF(self->clock_offsets, offsets);
    return 0;
}

static int
Engine_traverse(EngineObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->profiler);
    Py_VISIT(self->clock_offsets);
    Py_VISIT(self->attr_dict);
    for (int s = 0; s < WHEEL_SLOTS; s++) {
        EvVec *bucket = &self->wheel[s];
        for (Py_ssize_t i = 0; i < bucket->len; i++)
            Py_VISIT((PyObject *)bucket->items[i]);
    }
    for (Py_ssize_t i = 0; i < self->overflow.len; i++)
        Py_VISIT((PyObject *)self->overflow.items[i]);
    for (Py_ssize_t i = self->batch_pos; i < self->batch.len; i++)
        Py_VISIT((PyObject *)self->batch.items[i]);
    return 0;
}

static int
Engine_clear(EngineObject *self)
{
    engine_clear_events(self);
    Py_CLEAR(self->profiler);
    Py_CLEAR(self->clock_offsets);
    Py_CLEAR(self->attr_dict);
    return 0;
}

static void
Engine_dealloc(EngineObject *self)
{
    PyObject_GC_UnTrack(self);
    Engine_clear(self);
    for (int s = 0; s < WHEEL_SLOTS; s++)
        PyMem_Free(self->wheel[s].items);
    PyMem_Free(self->overflow.items);
    PyMem_Free(self->batch.items);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* The scheduling hot path shared by schedule() and schedule_at(). */
static PyObject *
insert_event(EngineObject *self, double time, PyObject *callback,
             PyObject *const *extra, Py_ssize_t nextra)
{
    PyObject *argtuple;
    if (nextra == 0) {
        argtuple = empty_tuple;
        Py_INCREF(argtuple);
    }
    else {
        argtuple = PyTuple_New(nextra);
        if (!argtuple)
            return NULL;
        for (Py_ssize_t i = 0; i < nextra; i++) {
            PyObject *item = extra[i];
            Py_INCREF(item);
            PyTuple_SET_ITEM(argtuple, i, item);
        }
    }
    EventObject *ev;
    if (event_freelist_len) {
        ev = event_freelist[--event_freelist_len];
        _Py_NewReference((PyObject *)ev);
    }
    else {
        ev = PyObject_GC_New(EventObject, &Event_Type);
        if (!ev) {
            Py_DECREF(argtuple);
            return NULL;
        }
    }
    long long seq = ++self->seq;
    ev->time = time;
    ev->seq = seq;
    ev->callback = callback;
    Py_INCREF(callback);
    ev->args = argtuple;
    ev->engine = self;
    Py_INCREF(self);
    ev->pos = 0;
    ev->slot = 0;
    ev->cancelled = 0;
    ev->loc = LOC_NONE;
    PyObject_GC_Track(ev);

    double scaled = time * self->inv_gran;
    if (scaled != scaled) {  /* NaN: match int(nan) in the Python engine */
        Py_DECREF(ev);
        PyErr_SetString(PyExc_ValueError,
                        "cannot convert float NaN to integer");
        return NULL;
    }
    long long tick = tick_of(scaled);
    if (tick <= self->active_tick) {
        /* Due in the tick currently being dispatched: insort into the
         * live batch (ascending; seq is larger than every resident, so
         * equal times land after them and fire later — the heap
         * engine's tie-break). */
        EvVec *batch = &self->batch;
        if (evvec_reserve(batch, batch->len + 1) < 0) {
            Py_DECREF(ev);
            return NULL;
        }
        Py_ssize_t lo = self->batch_pos, hi = batch->len;
        while (lo < hi) {
            Py_ssize_t mid = (lo + hi) >> 1;
            if (batch->items[mid]->time > time)
                hi = mid;
            else
                lo = mid + 1;
        }
        memmove(&batch->items[lo + 1], &batch->items[lo],
                (batch->len - lo) * sizeof(EventObject *));
        batch->items[lo] = ev;
        batch->len++;
        ev->loc = LOC_BATCH;
        Py_INCREF(ev);  /* the batch's reference */
    }
    else {
        long long cursor = self->cursor;
        if (tick < cursor)
            tick = cursor;
        if (tick - cursor < WHEEL_SLOTS) {
            EvVec *bucket = &self->wheel[tick & WHEEL_MASK];
            if (evvec_push(bucket, ev) < 0) {
                Py_DECREF(ev);
                return NULL;
            }
            ev->loc = LOC_WHEEL;
            ev->slot = (int)(tick & WHEEL_MASK);
            ev->pos = bucket->len - 1;
            self->wheel_count++;
            Py_INCREF(ev);  /* the bucket's reference */
        }
        else {
            if (heap_push(&self->overflow, ev) < 0) {
                Py_DECREF(ev);
                return NULL;
            }
            ev->loc = LOC_OVERFLOW;
            Py_INCREF(ev);  /* the heap's reference */
        }
    }
    self->pending++;
    if (self->pending > self->high_water)
        self->high_water = self->pending;
    self->live++;
    return (PyObject *)ev;
}

static PyObject *
Engine_schedule(EngineObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule(delay, callback, *args) takes at least "
                        "two arguments");
        return NULL;
    }
    PyObject *delay_obj = args[0];
    double delay = PyFloat_CheckExact(delay_obj)
        ? PyFloat_AS_DOUBLE(delay_obj)
        : PyFloat_AsDouble(delay_obj);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    if (delay < 0.0) {
        PyErr_Format(SimulationError,
                     "cannot schedule an event %Rs in the past", args[0]);
        return NULL;
    }
    return insert_event(self, self->now + delay, args[1],
                        args + 2, nargs - 2);
}

static PyObject *
Engine_schedule_at(EngineObject *self, PyObject *const *args,
                   Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_at(time, callback, *args) takes at "
                        "least two arguments");
        return NULL;
    }
    double time = PyFloat_AsDouble(args[0]);
    if (time == -1.0 && PyErr_Occurred())
        return NULL;
    if (time < self->now) {
        PyObject *now_obj = PyFloat_FromDouble(self->now);
        if (!now_obj)
            return NULL;
        PyErr_Format(SimulationError,
                     "cannot schedule at t=%R before now=%R",
                     args[0], now_obj);
        Py_DECREF(now_obj);
        return NULL;
    }
    return insert_event(self, time, args[1], args + 2, nargs - 2);
}

/* ------------------------------------------------------------------ */
/* Dispatch                                                           */
/* ------------------------------------------------------------------ */

/* Advance to the next non-empty tick and load it as the batch.
 * Returns 1 when a batch is ready, 0 when nothing is due at
 * tick <= until_tick, -1 on allocation failure. */
static int
refill(EngineObject *self, long long until_tick)
{
    EvVec *ovf = &self->overflow;
    double inv_gran = self->inv_gran;
    for (;;) {
        /* First live overflow entry, purging dead heads. */
        long long htick = 0;
        int have_h = 0;
        while (ovf->len) {
            EventObject *head = ovf->items[0];
            if (head->cancelled) {
                EventObject *dead = heap_pop(ovf);
                self->overflow_dead--;
                self->pending--;
                Py_DECREF(dead);
                continue;
            }
            htick = tick_of(head->time * inv_gran);
            have_h = 1;
            break;
        }
        long long cursor = self->cursor;
        long long horizon = cursor + WHEEL_SLOTS;
        /* Migrate overflow entries that now fit the wheel window. */
        while (have_h && htick < horizon) {
            EventObject *head = heap_pop(ovf);
            long long tick = htick < cursor ? cursor : htick;
            EvVec *bucket = &self->wheel[tick & WHEEL_MASK];
            if (evvec_push(bucket, head) < 0) {
                /* Best effort: put it back so no event is lost. */
                if (heap_push(ovf, head) < 0)
                    Py_DECREF(head);
                return -1;
            }
            head->loc = LOC_WHEEL;
            head->slot = (int)(tick & WHEEL_MASK);
            head->pos = bucket->len - 1;
            self->wheel_count++;
            have_h = 0;
            while (ovf->len) {
                EventObject *next = ovf->items[0];
                if (next->cancelled) {
                    EventObject *dead = heap_pop(ovf);
                    self->overflow_dead--;
                    self->pending--;
                    Py_DECREF(dead);
                    continue;
                }
                htick = tick_of(next->time * inv_gran);
                have_h = 1;
                break;
            }
        }
        if (self->wheel_count) {
            /* Scan for the next non-empty bucket, stopping at the until
             * bound or at the overflow head's tick (which must migrate
             * before the cursor may pass it). */
            long long limit = until_tick;
            if (have_h && htick < limit)
                limit = htick;
            EvVec *bucket = &self->wheel[cursor & WHEEL_MASK];
            while (!bucket->len && cursor < limit) {
                cursor++;
                bucket = &self->wheel[cursor & WHEEL_MASK];
            }
            self->cursor = cursor;
            if (bucket->len) {
                EvVec *batch = &self->batch;
                if (evvec_reserve(batch, bucket->len) < 0)
                    return -1;
                memcpy(batch->items, bucket->items,
                       bucket->len * sizeof(EventObject *));
                batch->len = bucket->len;
                self->batch_pos = 0;
                self->wheel_count -= bucket->len;
                bucket->len = 0;
                if (batch->len > 1)
                    qsort(batch->items, batch->len,
                          sizeof(EventObject *), cmp_ev_asc);
                for (Py_ssize_t i = 0; i < batch->len; i++)
                    batch->items[i]->loc = LOC_BATCH;
                return 1;
            }
            if (cursor >= until_tick)
                return 0;
            /* The scan hit the overflow head's tick: migrate it at the
             * advanced horizon. */
            continue;
        }
        if (!have_h || htick > until_tick)
            return 0;
        self->cursor = htick;
        /* Loop: migrate at the new horizon. */
    }
}

/* perf_counter is resolved on repro.sim.engine each run so that test
 * monkeypatching (the zero-overhead regression gate) sees every call. */
static PyObject *
get_perf_counter(void)
{
    /* The module object is cached (it cannot be replaced without also
     * replacing this extension), but the attribute lookup stays per
     * run so monkeypatched perf_counter is honoured. */
    static PyObject *engine_mod = NULL;
    if (!engine_mod) {
        engine_mod = PyImport_ImportModule("repro.sim.engine");
        if (!engine_mod)
            return NULL;
    }
    return PyObject_GetAttrString(engine_mod, "perf_counter");
}

static int
call_pc(PyObject *pc, double *out)
{
    PyObject *res = PyObject_CallNoArgs(pc);
    if (!res)
        return -1;
    double val = PyFloat_AsDouble(res);
    Py_DECREF(res);
    if (val == -1.0 && PyErr_Occurred())
        return -1;
    *out = val;
    return 0;
}

static PyObject *
Engine_run(EngineObject *self, PyObject *const *args, Py_ssize_t nargs,
           PyObject *kwnames)
{
    /* Hand-parsed FASTCALL signature run(until=None, max_events=None):
     * flood workloads call run() in tight windows, and the generic
     * keyword parser is a measurable fraction of such a call. */
    PyObject *until_obj = Py_None, *max_obj = Py_None;
    if (nargs > 2) {
        PyErr_SetString(PyExc_TypeError,
                        "run() takes at most two arguments");
        return NULL;
    }
    if (nargs >= 1)
        until_obj = args[0];
    if (nargs >= 2)
        max_obj = args[1];
    if (kwnames) {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        for (Py_ssize_t i = 0; i < nkw; i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            PyObject *value = args[nargs + i];
            if (PyUnicode_CompareWithASCIIString(name, "until") == 0) {
                if (nargs >= 1) {
                    PyErr_SetString(PyExc_TypeError,
                                    "run() got multiple values for "
                                    "argument 'until'");
                    return NULL;
                }
                until_obj = value;
            }
            else if (PyUnicode_CompareWithASCIIString(
                         name, "max_events") == 0) {
                if (nargs >= 2) {
                    PyErr_SetString(PyExc_TypeError,
                                    "run() got multiple values for "
                                    "argument 'max_events'");
                    return NULL;
                }
                max_obj = value;
            }
            else {
                PyErr_Format(PyExc_TypeError,
                             "run() got an unexpected keyword argument "
                             "%R", name);
                return NULL;
            }
        }
    }
    if (self->running) {
        PyErr_SetString(SimulationError,
                        "engine is already running (reentrant run)");
        return NULL;
    }
    int has_until = until_obj != Py_None;
    double until = 0.0;
    if (has_until) {
        until = PyFloat_AsDouble(until_obj);
        if (until == -1.0 && PyErr_Occurred())
            return NULL;
    }
    long long event_limit = LLONG_MAX;
    if (max_obj != Py_None) {
        event_limit = PyLong_AsLongLong(max_obj);
        if (event_limit == -1 && PyErr_Occurred()) {
            PyErr_Clear();
            double lim = PyFloat_AsDouble(max_obj);
            if (lim == -1.0 && PyErr_Occurred())
                return NULL;
            event_limit = (long long)lim;
        }
    }
    long long until_tick = MAX_TICK;
    if (has_until) {
        double scaled = until * self->inv_gran;
        if (scaled < TICK_SATURATE)
            until_tick = tick_of(scaled);
    }

    PyObject *pc = get_perf_counter();
    if (!pc)
        return NULL;
    PyObject *profiler = self->profiler;
    if (profiler == Py_None)
        profiler = NULL;
    PyObject *record = NULL;
    if (profiler) {
        record = PyObject_GetAttrString(profiler, "record");
        if (!record) {
            Py_DECREF(pc);
            return NULL;
        }
    }

    self->running = 1;
    self->stopped = 0;
    /* Hold the cyclic GC for the duration of the dispatch loop: event
     * and packet churn is refcount-managed (no cycles), so generational
     * scans are pure overhead at flood rates (~20% of wall). Restored
     * on every exit path; left alone if the caller already disabled it. */
    int gc_was_enabled = PyGC_IsEnabled();
    if (gc_was_enabled)
        PyGC_Disable();
    long long processed_this_run = 0;
    double run_started = 0.0;
    int failed = call_pc(pc, &run_started) < 0;

    EvVec *batch = &self->batch;
    while (!failed && !self->stopped) {
        if (self->batch_pos >= batch->len) {
            int r = refill(self, until_tick);
            if (r < 0) {
                failed = 1;
                break;
            }
            if (r == 0)
                break;
            self->active_tick = self->cursor;
        }
        int boundary = self->cursor >= until_tick;
        int halt = 0;
        while (self->batch_pos < batch->len) {
            EventObject *ev = batch->items[self->batch_pos];
            if (boundary && ev->time > until) {
                halt = 1;
                break;
            }
            batch->items[self->batch_pos++] = NULL;
            self->pending--;
            if (ev->cancelled) {
                Py_DECREF(ev);
                continue;
            }
            ev->loc = LOC_NONE;
            Py_CLEAR(ev->engine);
            self->now = ev->time;
            if (!profiler) {
                PyObject *res = PyObject_Call(ev->callback, ev->args, NULL);
                if (!res) {
                    Py_DECREF(ev);
                    failed = 1;
                    break;
                }
                Py_DECREF(res);
            }
            else {
                double started = 0.0, finished = 0.0;
                if (call_pc(pc, &started) < 0) {
                    Py_DECREF(ev);
                    failed = 1;
                    break;
                }
                PyObject *res = PyObject_Call(ev->callback, ev->args, NULL);
                if (!res) {
                    Py_DECREF(ev);
                    failed = 1;
                    break;
                }
                Py_DECREF(res);
                if (call_pc(pc, &finished) < 0) {
                    Py_DECREF(ev);
                    failed = 1;
                    break;
                }
                PyObject *wall = PyFloat_FromDouble(finished - started);
                if (!wall) {
                    Py_DECREF(ev);
                    failed = 1;
                    break;
                }
                PyObject *rres = PyObject_CallFunctionObjArgs(
                    record, ev->callback, wall, NULL);
                Py_DECREF(wall);
                if (!rres) {
                    Py_DECREF(ev);
                    failed = 1;
                    break;
                }
                Py_DECREF(rres);
            }
            self->events_processed++;
            self->live--;
            processed_this_run++;
            Py_DECREF(ev);
            if (processed_this_run >= event_limit || self->stopped) {
                halt = 1;
                break;
            }
        }
        if (failed || halt)
            break;
        /* Tick fully dispatched: advance past it. */
        batch->len = 0;
        self->batch_pos = 0;
        self->active_tick = -1;
        self->cursor++;
    }

    self->running = 0;
    if (gc_was_enabled)
        PyGC_Enable();
    {
        /* The wall-clock accounting runs even on failure (the Python
         * engine's `finally`), preserving any in-flight exception. */
        PyObject *ptype, *pvalue, *ptraceback;
        PyErr_Fetch(&ptype, &pvalue, &ptraceback);
        double run_ended = 0.0;
        if (call_pc(pc, &run_ended) == 0)
            self->wall_seconds += run_ended - run_started;
        else
            PyErr_Clear();
        PyErr_Restore(ptype, pvalue, ptraceback);
    }
    Py_DECREF(pc);
    Py_XDECREF(record);
    if (failed)
        return NULL;

    if (has_until && !self->stopped && self->now < until)
        self->now = until;
    if (!self->pending) {
        /* Idle fast-forward: with nothing queued, snap the cursor to
         * the clock so the next schedule lands the wheel window on the
         * present instead of overflowing from a stale origin. */
        double scaled = self->now * self->inv_gran;
        long long tick = scaled < TICK_SATURATE ? tick_of(scaled) : MAX_TICK;
        if (tick > self->cursor) {
            self->cursor = tick;
            self->active_tick = -1;
        }
    }
    Py_RETURN_NONE;
}

static PyObject *
Engine_stop(EngineObject *self, PyObject *Py_UNUSED(ignored))
{
    self->stopped = 1;
    Py_RETURN_NONE;
}

static PyObject *
Engine_drain(EngineObject *self, PyObject *Py_UNUSED(ignored))
{
    long long count = 0;
    for (int s = 0; s < WHEEL_SLOTS; s++)
        count += self->wheel[s].len;  /* wheel residents are always live */
    for (Py_ssize_t i = 0; i < self->overflow.len; i++)
        count += !self->overflow.items[i]->cancelled;
    for (Py_ssize_t i = self->batch_pos; i < self->batch.len; i++)
        count += !self->batch.items[i]->cancelled;
    engine_clear_events(self);
    return PyLong_FromLongLong(count);
}

static PyObject *
Engine_attach_profiler(EngineObject *self, PyObject *profiler)
{
    if (profiler == Py_None) {
        Py_CLEAR(self->profiler);
    }
    else {
        Py_INCREF(profiler);
        Py_XSETREF(self->profiler, profiler);
    }
    Py_RETURN_NONE;
}

static PyObject *
Engine_stats(EngineObject *self, PyObject *Py_UNUSED(ignored))
{
    double wall = self->wall_seconds;
    PyObject *stats = Py_BuildValue(
        "{s:L, s:L, s:L, s:L, s:L, s:L, s:L, s:L, s:n, s:d, s:d, s:d}",
        "events_scheduled", self->seq,
        "events_processed", self->events_processed,
        "events_cancelled", self->events_cancelled,
        "cancelled_pending", self->pending - self->live,
        "compactions", self->compactions,
        "heap_high_water", self->high_water,
        "pending", self->pending,
        "pending_live", self->live,
        "overflow_pending", self->overflow.len,
        "sim_seconds", self->now,
        "wall_seconds", wall,
        "sim_wall_ratio", wall > 0.0 ? self->now / wall : 0.0);
    return stats;
}

/* ------------------------------------------------------------------ */
/* Clock offsets (fault injection: clock skew)                        */
/* ------------------------------------------------------------------ */
static PyObject *
Engine_set_clock_offset(EngineObject *self, PyObject *const *args,
                        Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "set_clock_offset(key, offset) takes two arguments");
        return NULL;
    }
    int truthy = PyObject_IsTrue(args[1]);
    if (truthy < 0)
        return NULL;
    if (truthy) {
        if (PyDict_SetItem(self->clock_offsets, args[0], args[1]) < 0)
            return NULL;
    }
    else {
        if (PyDict_DelItem(self->clock_offsets, args[0]) < 0) {
            if (!PyErr_ExceptionMatches(PyExc_KeyError))
                return NULL;
            PyErr_Clear();
        }
    }
    Py_RETURN_NONE;
}

static PyObject *
Engine_clock_offset(EngineObject *self, PyObject *key)
{
    PyObject *val = PyDict_GetItemWithError(self->clock_offsets, key);
    if (val) {
        Py_INCREF(val);
        return val;
    }
    if (PyErr_Occurred())
        return NULL;
    return PyFloat_FromDouble(0.0);
}

static PyObject *
Engine_now_for(EngineObject *self, PyObject *key)
{
    if (PyDict_GET_SIZE(self->clock_offsets) == 0)
        return PyFloat_FromDouble(self->now);
    PyObject *val = PyDict_GetItemWithError(self->clock_offsets, key);
    if (!val) {
        if (PyErr_Occurred())
            return NULL;
        return PyFloat_FromDouble(self->now);
    }
    double off = PyFloat_AsDouble(val);
    if (off == -1.0 && PyErr_Occurred())
        return NULL;
    return PyFloat_FromDouble(self->now + off);
}

/* ------------------------------------------------------------------ */
/* Getsets                                                            */
/* ------------------------------------------------------------------ */
static PyObject *
Engine_get_now(EngineObject *self, void *Py_UNUSED(closure))
{
    return PyFloat_FromDouble(self->now);
}

static PyObject *
Engine_get_events_scheduled(EngineObject *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(self->seq);
}

static PyObject *
Engine_get_events_processed(EngineObject *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(self->events_processed);
}

static PyObject *
Engine_get_events_cancelled(EngineObject *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(self->events_cancelled);
}

static PyObject *
Engine_get_compactions(EngineObject *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(self->compactions);
}

static PyObject *
Engine_get_pending(EngineObject *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(self->pending);
}

static PyObject *
Engine_get_pending_live(EngineObject *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(self->live);
}

static PyObject *
Engine_get_profiler(EngineObject *self, void *Py_UNUSED(closure))
{
    PyObject *profiler = self->profiler ? self->profiler : Py_None;
    Py_INCREF(profiler);
    return profiler;
}

static PyMethodDef Engine_methods[] = {
    {"schedule", (PyCFunction)(void (*)(void))Engine_schedule,
     METH_FASTCALL,
     "schedule(delay, callback, *args) -> Event\n"
     "Schedule callback(*args) to run `delay` seconds from now."},
    {"schedule_at", (PyCFunction)(void (*)(void))Engine_schedule_at,
     METH_FASTCALL,
     "schedule_at(time, callback, *args) -> Event\n"
     "Schedule callback(*args) at absolute simulation time `time`."},
    {"run", (PyCFunction)(void (*)(void))Engine_run,
     METH_FASTCALL | METH_KEYWORDS,
     "run(until=None, max_events=None)\nRun events in time order."},
    {"stop", (PyCFunction)Engine_stop, METH_NOARGS,
     "Stop the current run after the in-flight callback."},
    {"drain", (PyCFunction)Engine_drain, METH_NOARGS,
     "Discard all pending events; returns how many were discarded."},
    {"attach_profiler", (PyCFunction)Engine_attach_profiler, METH_O,
     "Attach (or with None detach) a per-callback profiler."},
    {"stats", (PyCFunction)Engine_stats, METH_NOARGS,
     "Engine-level observability snapshot (all JSON-friendly)."},
    {"set_clock_offset",
     (PyCFunction)(void (*)(void))Engine_set_clock_offset, METH_FASTCALL,
     "Skew the clock view of `key` by `offset` seconds."},
    {"clock_offset", (PyCFunction)Engine_clock_offset, METH_O,
     "The current clock offset for `key` (0.0 when unskewed)."},
    {"now_for", (PyCFunction)Engine_now_for, METH_O,
     "`key`'s view of the current time: now plus any skew."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef Engine_getset[] = {
    {"now", (getter)Engine_get_now, NULL,
     "Current simulation time in seconds.", NULL},
    {"events_scheduled", (getter)Engine_get_events_scheduled, NULL,
     NULL, NULL},
    {"events_processed", (getter)Engine_get_events_processed, NULL,
     NULL, NULL},
    {"events_cancelled", (getter)Engine_get_events_cancelled, NULL,
     NULL, NULL},
    {"compactions", (getter)Engine_get_compactions, NULL, NULL, NULL},
    {"pending", (getter)Engine_get_pending, NULL,
     "Raw scheduled entries, including lazily-deleted overflow ones.",
     NULL},
    {"pending_live", (getter)Engine_get_pending_live, NULL,
     "Pending entries that will actually fire.", NULL},
    {"profiler", (getter)Engine_get_profiler, NULL,
     "The attached EngineProfiler, or None.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject Engine_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._cengine.Engine",
    .tp_basicsize = sizeof(EngineObject),
    .tp_dealloc = (destructor)Engine_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Timer-wheel discrete-event engine (compiled core).",
    .tp_traverse = (traverseproc)Engine_traverse,
    .tp_clear = (inquiry)Engine_clear,
    .tp_methods = Engine_methods,
    .tp_getset = Engine_getset,
    .tp_dictoffset = offsetof(EngineObject, attr_dict),
    .tp_init = (initproc)Engine_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* FabricPath                                                         */
/* ------------------------------------------------------------------ */
/* A cached network path: the per-link Link.offer arithmetic (droptail
 * check, serialization update, optional loss draw, propagation) folded
 * across the whole link sequence in one call. All mutable link state is
 * read from and written back to each Link's instance __dict__ per fold,
 * so the Python objects stay the single source of truth: fault
 * injectors, reset_counters() and direct offer() calls interleave
 * freely with folded traffic. Loss draws call the link's own
 * rng.random(), consuming the Mersenne stream CPython-exactly, and the
 * double arithmetic mirrors Link.offer's evaluation order so drop
 * decisions and arrival times are bit-identical to the Python fold.
 *
 * fold() returns NotImplemented — before touching any state — whenever
 * it cannot reproduce Python semantics exactly (a link-level fault hook
 * is installed, or the offered size would make Python raise); callers
 * then re-fold through the per-link reference loop. */

static PyObject *s_next_free, *s_rate_bps, *s_delay, *s_buffer_bytes,
    *s_loss_rate, *s_rng, *s_fault, *s_packets_sent, *s_packets_dropped,
    *s_packets_lost, *s_bytes_sent, *s_random, *s_offer;

typedef struct {
    PyObject *link;          /* strong */
    PyObject *dict;          /* strong; the link's instance __dict__ */
} FabricSlot;

typedef struct {
    PyObject_HEAD
    FabricSlot *slots;
    Py_ssize_t n;
    PyObject *links;         /* tuple of links, exposed as .links */
} FabricPathObject;

static int
fabric_dict_double(PyObject *dict, PyObject *key, double *out)
{
    PyObject *value = PyDict_GetItemWithError(dict, key);
    if (!value) {
        if (!PyErr_Occurred())
            PyErr_Format(PyExc_AttributeError,
                         "link object missing attribute %U", key);
        return -1;
    }
    *out = PyFloat_AsDouble(value);
    if (*out == -1.0 && PyErr_Occurred())
        return -1;
    return 0;
}

static int
fabric_dict_set_double(PyObject *dict, PyObject *key, double value)
{
    PyObject *obj = PyFloat_FromDouble(value);
    if (!obj)
        return -1;
    int rc = PyDict_SetItem(dict, key, obj);
    Py_DECREF(obj);
    return rc;
}

static int
fabric_dict_incr(PyObject *dict, PyObject *key, long long delta)
{
    PyObject *cur = PyDict_GetItemWithError(dict, key);
    if (!cur) {
        if (!PyErr_Occurred())
            PyErr_Format(PyExc_AttributeError,
                         "link object missing attribute %U", key);
        return -1;
    }
    long long value = PyLong_AsLongLong(cur);
    if (value == -1 && PyErr_Occurred())
        return -1;
    PyObject *next = PyLong_FromLongLong(value + delta);
    if (!next)
        return -1;
    int rc = PyDict_SetItem(dict, key, next);
    Py_DECREF(next);
    return rc;
}

static int
FabricPath_init(FabricPathObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"links", NULL};
    PyObject *arg;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O", kwlist, &arg))
        return -1;
    PyObject *links = PySequence_Tuple(arg);
    if (!links)
        return -1;
    Py_ssize_t n = PyTuple_GET_SIZE(links);
    FabricSlot *slots = PyMem_Calloc(n ? (size_t)n : 1,
                                     sizeof(FabricSlot));
    if (!slots) {
        Py_DECREF(links);
        PyErr_NoMemory();
        return -1;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *link = PyTuple_GET_ITEM(links, i);
        PyObject *dict = PyObject_GetAttrString(link, "__dict__");
        if (dict && !PyDict_Check(dict)) {
            Py_DECREF(dict);
            dict = NULL;
            PyErr_SetString(PyExc_TypeError,
                            "link __dict__ is not a dict");
        }
        if (!dict) {
            for (Py_ssize_t j = 0; j < i; j++) {
                Py_CLEAR(slots[j].link);
                Py_CLEAR(slots[j].dict);
            }
            PyMem_Free(slots);
            Py_DECREF(links);
            return -1;
        }
        Py_INCREF(link);
        slots[i].link = link;
        slots[i].dict = dict;
    }
    FabricSlot *old_slots = self->slots;
    Py_ssize_t old_n = self->n;
    PyObject *old_links = self->links;
    self->slots = slots;
    self->n = n;
    self->links = links;
    if (old_slots) {
        for (Py_ssize_t j = 0; j < old_n; j++) {
            Py_CLEAR(old_slots[j].link);
            Py_CLEAR(old_slots[j].dict);
        }
        PyMem_Free(old_slots);
    }
    Py_XDECREF(old_links);
    return 0;
}

static int
FabricPath_traverse(FabricPathObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->links);
    for (Py_ssize_t i = 0; i < self->n; i++) {
        Py_VISIT(self->slots[i].link);
        Py_VISIT(self->slots[i].dict);
    }
    return 0;
}

static int
FabricPath_clear(FabricPathObject *self)
{
    Py_CLEAR(self->links);
    if (self->slots) {
        for (Py_ssize_t i = 0; i < self->n; i++) {
            Py_CLEAR(self->slots[i].link);
            Py_CLEAR(self->slots[i].dict);
        }
        PyMem_Free(self->slots);
        self->slots = NULL;
    }
    self->n = 0;
    return 0;
}

static void
FabricPath_dealloc(FabricPathObject *self)
{
    PyObject_GC_UnTrack(self);
    FabricPath_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
FabricPath_fold(FabricPathObject *self, PyObject *const *args,
                Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "fold(now, size_bytes) takes exactly 2 arguments");
        return NULL;
    }
    double now = PyFloat_AsDouble(args[0]);
    if (now == -1.0 && PyErr_Occurred())
        return NULL;
    if (!PyLong_Check(args[1]))
        Py_RETURN_NOTIMPLEMENTED;
    long long size = PyLong_AsLongLong(args[1]);
    if (size == -1 && PyErr_Occurred())
        return NULL;
    if (size <= 0)
        Py_RETURN_NOTIMPLEMENTED;  /* the Python path raises NetworkError */
    Py_ssize_t n = self->n;
    /* Pre-scan: bail before touching any state, so the caller's
     * per-link re-fold sees the links exactly as Python would have.
     * Two escape hatches back to the interpreted path: an installed
     * fault hook, and an instance-level ``offer`` override (tests
     * monkeypatch individual links) — both live in the same dict. */
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *fault = PyDict_GetItemWithError(self->slots[i].dict,
                                                  s_fault);
        if (!fault) {
            if (PyErr_Occurred())
                return NULL;
            Py_RETURN_NOTIMPLEMENTED;
        }
        if (fault != Py_None)
            Py_RETURN_NOTIMPLEMENTED;
        PyObject *override = PyDict_GetItemWithError(self->slots[i].dict,
                                                     s_offer);
        if (override)
            Py_RETURN_NOTIMPLEMENTED;
        if (PyErr_Occurred())
            return NULL;
    }
    double arrival = now;
    double dsize = (double)size;
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *dict = self->slots[i].dict;
        double next_free, rate, buffer, loss;
        if (fabric_dict_double(dict, s_next_free, &next_free) < 0
            || fabric_dict_double(dict, s_rate_bps, &rate) < 0
            || fabric_dict_double(dict, s_buffer_bytes, &buffer) < 0
            || fabric_dict_double(dict, s_loss_rate, &loss) < 0)
            return NULL;
        double waiting = next_free - arrival;
        if (waiting < 0.0)
            waiting = 0.0;
        if (waiting * rate / 8.0 + dsize > buffer) {
            if (fabric_dict_incr(dict, s_packets_dropped, 1) < 0)
                return NULL;
            Py_RETURN_NONE;
        }
        double start = arrival > next_free ? arrival : next_free;
        if (loss > 0.0) {
            PyObject *rng = PyDict_GetItemWithError(dict, s_rng);
            if (!rng) {
                if (!PyErr_Occurred())
                    PyErr_SetString(PyExc_AttributeError,
                                    "link object missing attribute rng");
                return NULL;
            }
            PyObject *draw_obj = PyObject_CallMethodNoArgs(rng, s_random);
            if (!draw_obj)
                return NULL;
            double draw = PyFloat_AsDouble(draw_obj);
            Py_DECREF(draw_obj);
            if (draw == -1.0 && PyErr_Occurred())
                return NULL;
            if (draw < loss) {
                /* The frame still occupies air time before being lost. */
                if (fabric_dict_incr(dict, s_packets_lost, 1) < 0
                    || fabric_dict_set_double(dict, s_next_free,
                                              start + dsize * 8.0
                                              / rate) < 0)
                    return NULL;
                Py_RETURN_NONE;
            }
        }
        next_free = start + dsize * 8.0 / rate;
        if (fabric_dict_set_double(dict, s_next_free, next_free) < 0
            || fabric_dict_incr(dict, s_packets_sent, 1) < 0
            || fabric_dict_incr(dict, s_bytes_sent, size) < 0)
            return NULL;
        double delay;
        if (fabric_dict_double(dict, s_delay, &delay) < 0)
            return NULL;
        arrival = next_free + delay;
    }
    return PyFloat_FromDouble(arrival);
}

static PyObject *
FabricPath_get_links(FabricPathObject *self, void *Py_UNUSED(closure))
{
    PyObject *links = self->links ? self->links : empty_tuple;
    Py_INCREF(links);
    return links;
}

static PyMethodDef FabricPath_methods[] = {
    {"fold", (PyCFunction)(void (*)(void))FabricPath_fold, METH_FASTCALL,
     "fold(now, size_bytes) -> float | None | NotImplemented\n"
     "Offer a packet to every link on the path in order. Returns the\n"
     "far-end arrival time, None once any link drops it, or\n"
     "NotImplemented (before mutating anything) when only the per-link\n"
     "Python fold can reproduce the exact semantics."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef FabricPath_getset[] = {
    {"links", (getter)FabricPath_get_links, NULL,
     "The cached link tuple this path folds across.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject FabricPath_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._cengine.FabricPath",
    .tp_basicsize = sizeof(FabricPathObject),
    .tp_dealloc = (destructor)FabricPath_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Cached-path Link.offer fold (compiled core).",
    .tp_traverse = (traverseproc)FabricPath_traverse,
    .tp_clear = (inquiry)FabricPath_clear,
    .tp_methods = FabricPath_methods,
    .tp_getset = FabricPath_getset,
    .tp_init = (initproc)FabricPath_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* Module                                                             */
/* ------------------------------------------------------------------ */
static struct PyModuleDef cengine_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "_cengine",
    .m_doc = "Compiled timer-wheel core for repro.sim.engine.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__cengine(void)
{
    PyObject *errors = PyImport_ImportModule("repro.errors");
    if (!errors)
        return NULL;
    SimulationError = PyObject_GetAttrString(errors, "SimulationError");
    Py_DECREF(errors);
    if (!SimulationError)
        return NULL;
    empty_tuple = PyTuple_New(0);
    if (!empty_tuple)
        return NULL;
    struct { PyObject **slot; const char *name; } interned[] = {
        {&s_next_free, "_next_free"}, {&s_rate_bps, "rate_bps"},
        {&s_delay, "delay"}, {&s_buffer_bytes, "buffer_bytes"},
        {&s_loss_rate, "loss_rate"}, {&s_rng, "rng"},
        {&s_fault, "fault"}, {&s_packets_sent, "packets_sent"},
        {&s_packets_dropped, "packets_dropped"},
        {&s_packets_lost, "packets_lost"},
        {&s_bytes_sent, "bytes_sent"}, {&s_random, "random"},
        {&s_offer, "offer"},
    };
    for (size_t i = 0; i < sizeof(interned) / sizeof(interned[0]); i++) {
        *interned[i].slot = PyUnicode_InternFromString(interned[i].name);
        if (!*interned[i].slot)
            return NULL;
    }
    if (PyType_Ready(&Event_Type) < 0 || PyType_Ready(&Engine_Type) < 0
        || PyType_Ready(&FabricPath_Type) < 0)
        return NULL;
    PyObject *mod = PyModule_Create(&cengine_module);
    if (!mod)
        return NULL;
    if (PyModule_AddObjectRef(mod, "Engine", (PyObject *)&Engine_Type) < 0
        || PyModule_AddObjectRef(mod, "Event", (PyObject *)&Event_Type) < 0
        || PyModule_AddObjectRef(mod, "FabricPath",
                                 (PyObject *)&FabricPath_Type) < 0
        || PyModule_AddIntConstant(mod, "WHEEL_SLOTS", WHEEL_SLOTS) < 0
        || PyModule_AddIntConstant(mod, "COMPACT_MIN_HEAP",
                                   COMPACT_MIN_HEAP) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
