"""Build and load the compiled engine core on demand.

The simulator ships a C implementation of the timer-wheel engine
(``_cengine.c``) next to this module. There is deliberately no build
step in packaging: the first import compiles it with the host C
compiler into ``_build/`` (cached by source hash, so edits rebuild and
stale artifacts are ignored) and loads it as an extension module. When
no compiler is available, the build fails, or the differential
self-test in :mod:`repro.sim.engine` rejects the result, the simulator
transparently falls back to the pure-Python engine — the compiled core
is an accelerator, never a dependency.

Set ``REPRO_ENGINE=py`` to skip the build entirely, ``REPRO_ENGINE=c``
to make a build/gate failure fatal, and ``REPRO_ENGINE_DEBUG=1`` to see
why a fallback happened.
"""

from __future__ import annotations

import hashlib
import importlib.machinery
import importlib.util
import os
import shlex
import subprocess
import sys
import sysconfig
import tempfile
from types import ModuleType
from typing import List, Optional

_HERE = os.path.dirname(os.path.abspath(__file__))
_SOURCE = os.path.join(_HERE, "_cengine.c")
_MODULE_NAME = "repro.sim._cengine"


def _cache_tag(source: bytes) -> str:
    """Key the built artifact by source + interpreter ABI."""
    h = hashlib.sha256()
    h.update(source)
    h.update(sys.version.encode())
    h.update((sysconfig.get_config_var("SOABI") or "").encode())
    return h.hexdigest()[:16]


def _compiler_argv() -> List[str]:
    cc = sysconfig.get_config_var("CC") or os.environ.get("CC") or "cc"
    # CC can be multi-word ("gcc -pthread"); keep the flags.
    return shlex.split(cc)


def _build_dirs() -> List[str]:
    """Candidate cache directories, most preferred first."""
    dirs = [os.path.join(_HERE, "_build")]
    # The package directory may be read-only (system install); fall back
    # to a per-user temp cache keyed by uid to avoid collisions.
    uid = getattr(os, "getuid", lambda: 0)()
    dirs.append(os.path.join(tempfile.gettempdir(),
                             f"repro-cengine-{uid}"))
    return dirs


def _compile(build_dir: str, tag: str) -> str:
    """Compile the extension into *build_dir*; returns the .so path.

    Concurrent builders (parallel pytest, the sweep runner's process
    pool) race benignly: each compiles to a private temp file and
    ``os.replace`` makes the final rename atomic.
    """
    os.makedirs(build_dir, exist_ok=True)
    so_path = os.path.join(build_dir, f"_cengine-{tag}.so")
    if os.path.exists(so_path):
        return so_path
    include = sysconfig.get_paths()["include"]
    fd, tmp_path = tempfile.mkstemp(suffix=".so", dir=build_dir)
    os.close(fd)
    argv = _compiler_argv() + [
        "-O2", "-fPIC", "-shared", "-fno-strict-aliasing",
        f"-I{include}", _SOURCE, "-o", tmp_path,
    ]
    try:
        proc = subprocess.run(argv, capture_output=True, text=True)
        if proc.returncode != 0:
            tail = (proc.stderr or proc.stdout or "").strip()[-2000:]
            raise RuntimeError(
                f"cengine build failed ({' '.join(argv[:1])} exited "
                f"{proc.returncode}):\n{tail}")
        os.replace(tmp_path, so_path)
    finally:
        if os.path.exists(tmp_path):
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
    return so_path


def load_cengine() -> Optional[ModuleType]:
    """Compile (if needed) and import the C engine core.

    Returns the extension module, or raises on any failure — the caller
    (:mod:`repro.sim.engine`) decides whether a failure is fatal based
    on ``REPRO_ENGINE``.
    """
    if not os.path.exists(_SOURCE):
        raise FileNotFoundError(_SOURCE)
    with open(_SOURCE, "rb") as fh:
        source = fh.read()
    tag = _cache_tag(source)
    last_err: Optional[BaseException] = None
    so_path = None
    for build_dir in _build_dirs():
        try:
            so_path = _compile(build_dir, tag)
            break
        except (OSError, RuntimeError) as exc:
            last_err = exc
    if so_path is None:
        assert last_err is not None
        raise last_err
    loader = importlib.machinery.ExtensionFileLoader(_MODULE_NAME, so_path)
    spec = importlib.util.spec_from_file_location(
        _MODULE_NAME, so_path, loader=loader)
    assert spec is not None
    module = importlib.util.module_from_spec(spec)
    loader.exec_module(module)
    sys.modules[_MODULE_NAME] = module
    return module
