"""Reference binary-heap scheduler, kept for differential testing.

This module preserves the original heap-for-everything `Engine` (lazy
deletion + periodic compaction) that shipped before the timer-wheel
rewrite in :mod:`repro.sim.engine`. It is **not** used by the simulator;
the property/differential suite in ``tests/sim/`` runs randomized
schedule/cancel/run workloads through both implementations and asserts
identical event order, so any behavioural drift in the wheel shows up as
a diff against this one.

The implementation is intentionally a verbatim copy of the pre-wheel
engine (same tie-breaking, same clock-jump semantics, same stop/drain
behaviour) rather than a simplified model: the differential tests are
only as strong as the fidelity of the oracle.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

from repro.errors import SimulationError

#: Never compact a heap smaller than this (mirrors the engine's overflow
#: tier constant).
COMPACT_MIN_HEAP = 64


class ReferenceEvent:
    """Handle for a scheduled callback (lazy-deletion flavour)."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "engine")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.engine: Optional["ReferenceHeapEngine"] = None

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        engine = self.engine
        if engine is not None:
            engine._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ReferenceEvent t={self.time:.6f} seq={self.seq} {state}>"


class ReferenceHeapEngine:
    """The pre-wheel discrete-event engine: one binary heap for everything.

    Events are ``(time, seq, event)`` tuples on a heap; cancellation is a
    flag (lazy deletion) and the heap is compacted — rebuilt without dead
    entries — whenever cancelled entries exceed half of it.
    """

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_processed = 0
        self._events_cancelled = 0
        self._cancelled_pending = 0
        self._compactions = 0
        self._heap_high_water = 0
        self._wall_seconds = 0.0
        self._profiler = None
        self._clock_offsets: Dict[str, float] = {}

    @property
    def now(self) -> float:
        return self._now

    def set_clock_offset(self, key: str, offset: float) -> None:
        if offset:
            self._clock_offsets[key] = offset
        else:
            self._clock_offsets.pop(key, None)

    def clock_offset(self, key: str) -> float:
        return self._clock_offsets.get(key, 0.0)

    def now_for(self, key: str) -> float:
        offsets = self._clock_offsets
        if not offsets:
            return self._now
        return self._now + offsets.get(key, 0.0)

    @property
    def events_scheduled(self) -> int:
        return self._seq

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def events_cancelled(self) -> int:
        return self._events_cancelled

    @property
    def compactions(self) -> int:
        return self._compactions

    @property
    def pending(self) -> int:
        """Number of heap entries, including lazily-deleted ones."""
        return len(self._heap)

    @property
    def pending_live(self) -> int:
        """Heap entries that will actually fire."""
        return len(self._heap) - self._cancelled_pending

    @property
    def profiler(self):
        return self._profiler

    def attach_profiler(self, profiler) -> None:
        self._profiler = profiler

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> ReferenceEvent:
        if delay < 0:
            raise SimulationError(
                f"cannot schedule an event {delay!r}s in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> ReferenceEvent:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r} before now={self._now!r}")
        self._seq += 1
        event = ReferenceEvent(time, self._seq, callback, args)
        event.engine = self
        heapq.heappush(self._heap, (time, self._seq, event))
        if len(self._heap) > self._heap_high_water:
            self._heap_high_water = len(self._heap)
        return event

    def _note_cancelled(self) -> None:
        self._events_cancelled += 1
        self._cancelled_pending += 1
        heap = self._heap
        if (len(heap) >= COMPACT_MIN_HEAP
                and self._cancelled_pending * 2 > len(heap)):
            self._compact()

    def _compact(self) -> None:
        live = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(live)
        self._heap[:] = live
        self._cancelled_pending = 0
        self._compactions += 1

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        if self._running:
            raise SimulationError("engine is already running (reentrant run)")
        self._running = True
        self._stopped = False
        processed_this_run = 0
        profiler = self._profiler
        run_started = perf_counter()
        heap = self._heap
        heappop, heappush = heapq.heappop, heapq.heappush
        try:
            while heap:
                if self._stopped:
                    break
                entry = heappop(heap)
                if until is not None and entry[0] > until:
                    heappush(heap, entry)
                    break
                event = entry[2]
                event.engine = None
                if event.cancelled:
                    self._cancelled_pending -= 1
                    continue
                self._now = event.time
                if profiler is None:
                    event.callback(*event.args)
                else:
                    started = perf_counter()
                    event.callback(*event.args)
                    profiler.record(event.callback,
                                    perf_counter() - started)
                self._events_processed += 1
                processed_this_run += 1
                if max_events is not None and processed_this_run >= max_events:
                    break
        finally:
            self._running = False
            self._wall_seconds += perf_counter() - run_started
        if until is not None and not self._stopped and self._now < until:
            self._now = until

    def stop(self) -> None:
        self._stopped = True

    def drain(self) -> int:
        count = 0
        for entry in self._heap:
            event = entry[2]
            event.engine = None
            if not event.cancelled:
                count += 1
        self._heap.clear()
        self._cancelled_pending = 0
        return count

    def stats(self) -> Dict[str, float]:
        wall = self._wall_seconds
        return {
            "events_scheduled": self._seq,
            "events_processed": self._events_processed,
            "events_cancelled": self._events_cancelled,
            "cancelled_pending": self._cancelled_pending,
            "compactions": self._compactions,
            "heap_high_water": self._heap_high_water,
            "pending": len(self._heap),
            "pending_live": len(self._heap) - self._cancelled_pending,
            "sim_seconds": self._now,
            "wall_seconds": wall,
            "sim_wall_ratio": (self._now / wall) if wall > 0 else 0.0,
        }
