"""Discrete-event simulation engine.

A deliberately small, fast core: a binary-heap event queue keyed on
``(time, sequence)``, a simulation clock, seeded per-stream random number
generators, and a handful of process helpers (periodic and Poisson arrival
processes) that the host models build on.

The engine substitutes for the paper's DETER testbed: experiments that ran
for 600 wall-clock seconds on physical machines run here as simulated
seconds (see ``DESIGN.md``, *Scale-down convention*).
"""

from repro.sim.engine import Engine, Event
from repro.sim.rng import RngStreams
from repro.sim.process import PeriodicProcess, PoissonProcess

__all__ = [
    "Engine",
    "Event",
    "RngStreams",
    "PeriodicProcess",
    "PoissonProcess",
]
