"""Seeded random-number streams.

Every stochastic component of the simulation (client arrivals, attacker
jitter, puzzle solve-attempt counts, service times, ...) draws from its own
named stream so that adding a component never perturbs the draws of another
— the standard variance-reduction discipline for simulation experiments.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngStreams:
    """A factory of named, independently-seeded ``random.Random`` streams.

    The per-stream seed is derived from the root seed and the stream name via
    SHA-256, so streams are stable across runs and uncorrelated with each
    other for any practical purpose.

    >>> streams = RngStreams(seed=7)
    >>> a = streams.get("client-0")
    >>> b = streams.get("client-1")
    >>> a is streams.get("client-0")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return (creating if needed) the stream called *name*."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(
                f"{self.seed}/{name}".encode("utf-8")).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child factory whose streams are disjoint from ours."""
        digest = hashlib.sha256(
            f"{self.seed}/spawn/{name}".encode("utf-8")).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStreams(seed={self.seed}, streams={len(self._streams)})"
