"""Recurring-event process helpers built on the engine.

Two arrival disciplines cover everything in the paper's evaluation:

* :class:`PeriodicProcess` — fixed-interval firing; used by the attackers
  (hping3/nping flood at a constant rate) and by metric samplers.
* :class:`PoissonProcess` — exponentially distributed inter-arrival times;
  used by the benign clients ("requesting ... at exponentially distributed
  time intervals", §6).
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim.engine import Engine, Event


class _BaseProcess:
    """Shared start/stop machinery for recurring processes."""

    def __init__(self, engine: Engine, action: Callable[[], None]) -> None:
        self.engine = engine
        self.action = action
        self._event: Optional[Event] = None
        self._running = False
        self.fire_count = 0

    @property
    def running(self) -> bool:
        return self._running

    def start(self, delay: float = 0.0) -> None:
        """Begin firing; first action runs after *delay* seconds."""
        if self._running:
            raise SimulationError("process already started")
        self._running = True
        self._event = self.engine.schedule(delay, self._fire)

    def stop(self) -> None:
        """Stop firing. Safe to call from inside the action."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _next_interval(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def _fire(self) -> None:
        if not self._running:
            return
        self.fire_count += 1
        self.action()
        if self._running:
            self._event = self.engine.schedule(
                self._next_interval(), self._fire)


class PeriodicProcess(_BaseProcess):
    """Fire ``action`` every ``interval`` seconds.

    ``rate`` is accepted as a convenience alternative (``interval = 1/rate``).
    """

    def __init__(self, engine: Engine, action: Callable[[], None],
                 interval: Optional[float] = None,
                 rate: Optional[float] = None) -> None:
        super().__init__(engine, action)
        if (interval is None) == (rate is None):
            raise SimulationError("give exactly one of interval= or rate=")
        if interval is None:
            if rate <= 0:
                raise SimulationError(f"rate must be positive, got {rate!r}")
            interval = 1.0 / rate
        if interval <= 0:
            raise SimulationError(
                f"interval must be positive, got {interval!r}")
        self.interval = interval

    def _next_interval(self) -> float:
        return self.interval

    def _fire(self) -> None:
        # Overrides the base to skip the _next_interval frame: at flood
        # rates this fires hundreds of thousands of times per run.
        if not self._running:
            return
        self.fire_count += 1
        self.action()
        if self._running:
            self._event = self.engine.schedule(self.interval, self._fire)


class AlignedPeriodicProcess(_BaseProcess):
    """Fire ``action`` at the absolute sim times ``k * interval``.

    Unlike :class:`PeriodicProcess`, every firing is scheduled at an
    *absolute* multiple of the interval (one multiplication per tick),
    never by accumulating floating-point deltas — so two processes with
    the same interval fire at bit-identical timestamps no matter when
    they started or how many ticks they have taken. The streaming
    telemetry sampler depends on this: per-cell time series sampled on
    the same cadence carry identical time columns, which is what lets a
    sweep merge them sample-for-sample and keep parallel output
    byte-identical to serial.
    """

    def __init__(self, engine: Engine, action: Callable[[], None],
                 interval: float) -> None:
        super().__init__(engine, action)
        if interval <= 0:
            raise SimulationError(
                f"interval must be positive, got {interval!r}")
        self.interval = interval
        self._tick = 0

    def start(self, delay: float = 0.0) -> None:
        """Begin firing at the first multiple of the interval after
        ``now + delay`` (strictly after — a start exactly on a multiple
        fires at the next one)."""
        if self._running:
            raise SimulationError("process already started")
        self._running = True
        self._tick = int((self.engine.now + delay) / self.interval) + 1
        self._event = self.engine.schedule_at(
            self._tick * self.interval, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        self.fire_count += 1
        self.action()
        if self._running:
            self._tick += 1
            self._event = self.engine.schedule_at(
                self._tick * self.interval, self._fire)


class PoissonProcess(_BaseProcess):
    """Fire ``action`` with i.i.d. exponential(*rate*) inter-arrival times."""

    def __init__(self, engine: Engine, action: Callable[[], None],
                 rate: float, rng: random.Random) -> None:
        super().__init__(engine, action)
        if rate <= 0:
            raise SimulationError(f"rate must be positive, got {rate!r}")
        self.rate = rate
        self.rng = rng

    def _next_interval(self) -> float:
        return self.rng.expovariate(self.rate)

    def start(self, delay: Optional[float] = None) -> None:
        """Begin firing; the first arrival is itself exponential unless an
        explicit *delay* is given."""
        if delay is None:
            delay = self.rng.expovariate(self.rate)
        super().start(delay)
