"""The discrete-event engine.

Design notes
------------
* Events are ``(time, seq, callback, args)`` tuples on a binary heap. The
  monotonically increasing ``seq`` breaks ties deterministically, which makes
  whole-simulation runs reproducible given fixed RNG seeds.
* Events can be cancelled in O(1) by flagging the handle; cancelled entries
  are skipped when popped (lazy deletion), which is much cheaper than heap
  surgery for the timer-heavy TCP workload (every half-open connection owns
  a retransmission timer that is usually cancelled). To stop cancelled
  entries from dominating the heap (a long run cancels far more timers than
  it fires), the engine counts pending cancellations and **compacts** the
  heap — rebuilds it without the dead entries — whenever they exceed half
  of it. Compactions are reported via :meth:`Engine.stats`.
* Observability: :meth:`Engine.stats` exposes processed/cancelled event
  counts, compactions, the heap high-water mark, and the wall time spent
  inside :meth:`run` (hence the sim-time/wall-time ratio). Attaching an
  :class:`~repro.obs.profile.EngineProfiler` via :meth:`attach_profiler`
  additionally times every dispatched callback; with no profiler attached
  the dispatch loop takes a branch with no timing calls at all.
* The engine knows nothing about networks or hosts; higher layers schedule
  plain callbacks.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

from repro.errors import SimulationError

#: Never compact a heap smaller than this — rebuilding a few dozen entries
#: costs more bookkeeping than the dead entries do.
COMPACT_MIN_HEAP = 64


class Event:
    """Handle for a scheduled callback.

    Returned by :meth:`Engine.schedule`; the only public operation is
    :meth:`cancel`. Instances are single-use.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "engine")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.engine: Optional["Engine"] = None

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        engine = self.engine
        if engine is not None:
            engine._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


class Engine:
    """A discrete-event simulation engine.

    Typical use::

        engine = Engine()
        engine.schedule(1.0, lambda: print("one second in"))
        engine.run(until=10.0)

    The clock starts at ``0.0`` and only advances when events fire; *until*
    is inclusive (an event at exactly ``until`` still runs).
    """

    def __init__(self) -> None:
        # Heap entries are (time, seq, event) tuples so ordering is pure C
        # tuple comparison — `seq` is unique, so the Event never compares.
        self._heap: List[tuple] = []
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_processed = 0
        self._events_cancelled = 0
        self._cancelled_pending = 0
        self._compactions = 0
        self._heap_high_water = 0
        self._wall_seconds = 0.0
        self._profiler = None
        # Per-key clock offsets for fault injection (empty in normal runs;
        # the read path special-cases the empty dict so un-faulted
        # simulations never pay for the lookup).
        self._clock_offsets: Dict[str, float] = {}

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Per-key clock views (fault injection: clock skew)
    # ------------------------------------------------------------------
    def set_clock_offset(self, key: str, offset: float) -> None:
        """Skew the clock view of *key* (a host name) by *offset* seconds.

        Engine scheduling is unaffected — offsets only change what
        :meth:`now_for` reports, modelling a host whose wall clock reads
        (puzzle timestamps, cookie timestamps) have drifted while its
        monotonic timers keep firing on schedule. ``offset=0`` removes
        the entry.
        """
        if offset:
            self._clock_offsets[key] = offset
        else:
            self._clock_offsets.pop(key, None)

    def clock_offset(self, key: str) -> float:
        """The current clock offset for *key* (0.0 when unskewed)."""
        return self._clock_offsets.get(key, 0.0)

    def now_for(self, key: str) -> float:
        """*key*'s view of the current time: ``now`` plus any skew."""
        offsets = self._clock_offsets
        if not offsets:
            return self._now
        return self._now + offsets.get(key, 0.0)

    @property
    def events_scheduled(self) -> int:
        """Number of events ever pushed onto the heap (= heap pushes)."""
        return self._seq

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def events_cancelled(self) -> int:
        """Number of events cancelled before they could fire."""
        return self._events_cancelled

    @property
    def compactions(self) -> int:
        """Heap rebuilds that purged lazily-deleted entries."""
        return self._compactions

    @property
    def pending(self) -> int:
        """Number of heap entries, including lazily-deleted ones."""
        return len(self._heap)

    @property
    def profiler(self):
        """The attached :class:`EngineProfiler`, or None."""
        return self._profiler

    def attach_profiler(self, profiler) -> None:
        """Attach (or with ``None`` detach) a per-callback profiler.

        Takes effect at the next :meth:`run` call; anything with a
        ``record(callback, wall_seconds)`` method works.
        """
        self._profiler = profiler

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> Event:
        """Schedule *callback(*args)* to run ``delay`` seconds from now.

        Raises :class:`SimulationError` for negative delays; a zero delay is
        allowed and runs after all events already scheduled for this instant.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule an event {delay!r}s in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule *callback(*args)* at absolute simulation time *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r} before now={self._now!r}")
        self._seq += 1
        event = Event(time, self._seq, callback, args)
        event.engine = self
        heapq.heappush(self._heap, (time, self._seq, event))
        if len(self._heap) > self._heap_high_water:
            self._heap_high_water = len(self._heap)
        return event

    # ------------------------------------------------------------------
    # Lazy-deletion bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` while the entry is still heaped."""
        self._events_cancelled += 1
        self._cancelled_pending += 1
        heap = self._heap
        if (len(heap) >= COMPACT_MIN_HEAP
                and self._cancelled_pending * 2 > len(heap)):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        In place (slice assignment) so that :meth:`run`'s local alias of
        the heap list stays valid when a callback triggers a compaction
        mid-run.
        """
        live = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(live)
        self._heap[:] = live
        self._cancelled_pending = 0
        self._compactions += 1

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events in time order.

        Stops when the heap drains, when the next event is later than
        *until*, when *max_events* callbacks have run, or when
        :meth:`stop` is called from inside a callback. The clock is left at
        *until* (if given) even when the heap drains early, so that
        measurements covering the whole window see a consistent end time.
        """
        if self._running:
            raise SimulationError("engine is already running (reentrant run)")
        self._running = True
        self._stopped = False
        processed_this_run = 0
        profiler = self._profiler
        run_started = perf_counter()
        # Local aliases: the loop body is the hottest code in the package.
        # `_compact` rebuilds `self._heap` in place, so `heap` stays valid.
        heap = self._heap
        heappop, heappush = heapq.heappop, heapq.heappush
        try:
            while heap:
                if self._stopped:
                    break
                # Single heappop instead of peek-then-pop; an event past
                # `until` is pushed back (once per run, not per event).
                entry = heappop(heap)
                if until is not None and entry[0] > until:
                    heappush(heap, entry)
                    break
                event = entry[2]
                event.engine = None
                if event.cancelled:
                    self._cancelled_pending -= 1
                    continue
                self._now = event.time
                if profiler is None:
                    event.callback(*event.args)
                else:
                    started = perf_counter()
                    event.callback(*event.args)
                    profiler.record(event.callback,
                                    perf_counter() - started)
                self._events_processed += 1
                processed_this_run += 1
                if max_events is not None and processed_this_run >= max_events:
                    break
        finally:
            self._running = False
            self._wall_seconds += perf_counter() - run_started
        if until is not None and not self._stopped and self._now < until:
            self._now = until

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight callback."""
        self._stopped = True

    def drain(self) -> int:
        """Discard all pending events; returns how many were discarded.

        Useful at the end of an experiment to release timer references.
        """
        count = 0
        for entry in self._heap:
            event = entry[2]
            event.engine = None
            if not event.cancelled:
                count += 1
        self._heap.clear()
        self._cancelled_pending = 0
        return count

    def stats(self) -> Dict[str, float]:
        """Engine-level observability snapshot (all JSON-friendly).

        ``sim_wall_ratio`` is simulated seconds per wall second spent in
        :meth:`run` — the "how much faster than real time" figure.
        """
        wall = self._wall_seconds
        return {
            "events_scheduled": self._seq,
            "events_processed": self._events_processed,
            "events_cancelled": self._events_cancelled,
            "cancelled_pending": self._cancelled_pending,
            "compactions": self._compactions,
            "heap_high_water": self._heap_high_water,
            "pending": len(self._heap),
            "sim_seconds": self._now,
            "wall_seconds": wall,
            "sim_wall_ratio": (self._now / wall) if wall > 0 else 0.0,
        }
