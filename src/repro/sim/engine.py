"""The discrete-event engine.

Design notes
------------
* Events are ``(time, seq, callback, args)`` tuples on a binary heap. The
  monotonically increasing ``seq`` breaks ties deterministically, which makes
  whole-simulation runs reproducible given fixed RNG seeds.
* Events can be cancelled in O(1) by flagging the handle; cancelled entries
  are skipped when popped (lazy deletion), which is much cheaper than heap
  surgery for the timer-heavy TCP workload (every half-open connection owns
  a retransmission timer that is usually cancelled).
* The engine knows nothing about networks or hosts; higher layers schedule
  plain callbacks.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError


class Event:
    """Handle for a scheduled callback.

    Returned by :meth:`Engine.schedule`; the only public operation is
    :meth:`cancel`. Instances are single-use.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


class Engine:
    """A discrete-event simulation engine.

    Typical use::

        engine = Engine()
        engine.schedule(1.0, lambda: print("one second in"))
        engine.run(until=10.0)

    The clock starts at ``0.0`` and only advances when events fire; *until*
    is inclusive (an event at exactly ``until`` still runs).
    """

    def __init__(self) -> None:
        # Heap entries are (time, seq, event) tuples so ordering is pure C
        # tuple comparison — `seq` is unique, so the Event never compares.
        self._heap: List[tuple] = []
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of heap entries, including lazily-deleted ones."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> Event:
        """Schedule *callback(*args)* to run ``delay`` seconds from now.

        Raises :class:`SimulationError` for negative delays; a zero delay is
        allowed and runs after all events already scheduled for this instant.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule an event {delay!r}s in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule *callback(*args)* at absolute simulation time *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r} before now={self._now!r}")
        self._seq += 1
        event = Event(time, self._seq, callback, args)
        heapq.heappush(self._heap, (time, self._seq, event))
        return event

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events in time order.

        Stops when the heap drains, when the next event is later than
        *until*, when *max_events* callbacks have run, or when
        :meth:`stop` is called from inside a callback. The clock is left at
        *until* (if given) even when the heap drains early, so that
        measurements covering the whole window see a consistent end time.
        """
        if self._running:
            raise SimulationError("engine is already running (reentrant run)")
        self._running = True
        self._stopped = False
        processed_this_run = 0
        try:
            while self._heap:
                if self._stopped:
                    break
                entry = self._heap[0]
                if until is not None and entry[0] > until:
                    break
                heapq.heappop(self._heap)
                event = entry[2]
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback(*event.args)
                self._events_processed += 1
                processed_this_run += 1
                if max_events is not None and processed_this_run >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            self._now = until

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight callback."""
        self._stopped = True

    def drain(self) -> int:
        """Discard all pending events; returns how many were discarded.

        Useful at the end of an experiment to release timer references.
        """
        count = sum(1 for entry in self._heap if not entry[2].cancelled)
        self._heap.clear()
        return count
