"""The discrete-event engine: a hierarchical timer wheel with batched dispatch.

Design notes
------------
* The scheduler is a **bucketed calendar queue** (timer wheel): a ring of
  ``WHEEL_SLOTS`` buckets, each one wheel *tick* (``wheel_granularity``
  seconds) wide, holding every event due in that tick. The TCP workload is
  dominated by near-future timers — SYN-ACK retransmission timeouts and
  syncache expiries a few (scaled) RTOs out — which land in the wheel for
  O(1) insert and true O(1) cancel (a dict ``del``, no heap surgery, no
  lazy deletion). Events beyond the wheel horizon (``WHEEL_SLOTS`` ticks)
  go to an **overflow tier**: a binary heap with the old lazy-deletion +
  compaction scheme, migrated into the wheel as the cursor approaches.
* **Determinism / total order.** Events fire in exact ``(time, seq)``
  order — `seq` is the monotonically increasing schedule counter — so
  runs are byte-identical to the original heap engine. The argument:
  ``tick(t) = int(t * inv_granularity)`` is monotone in ``t``, buckets
  are dispatched in tick order, and each bucket is sorted by
  ``(time, seq)`` before dispatch. Tick width therefore affects only
  *performance*, never event order. The overflow tier only holds events
  at least a full wheel span ahead of the cursor, so migration always
  happens before the cursor could reach them.
* **Batched dispatch.** :meth:`Engine.run` drains a whole tick's bucket
  per refill: the bucket is sorted once (C-speed list sort, descending,
  popped from the end) and per-event work is a list pop plus the
  callback. The profiler branch is hoisted out of the loop — with no
  profiler attached a run makes exactly two ``perf_counter`` calls
  (start/stop), never per event; this is pinned by a regression test.
* A compiled C core (:mod:`repro.sim.accel`, built on demand with the
  system compiler) implements the same algorithm behind the same API and
  replaces ``Engine`` when available; ``REPRO_ENGINE=py|c|auto`` selects.
  The Python classes below remain the reference semantics, and a
  differential self-test gates adoption of the compiled core at import.
* Observability: :meth:`Engine.stats` exposes processed/cancelled event
  counts, overflow compactions, the pending high-water mark, live vs raw
  pending (the overflow tier still holds lazily-deleted entries), and
  the wall time spent inside :meth:`run`. Attaching an
  :class:`~repro.obs.profile.EngineProfiler` via :meth:`attach_profiler`
  additionally times every dispatched callback.
* The engine knows nothing about networks or hosts; higher layers schedule
  plain callbacks.
"""

from __future__ import annotations

import gc
import os
from heapq import heapify, heappop, heappush
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

from repro.errors import SimulationError

#: Never compact an overflow heap smaller than this — rebuilding a few
#: dozen entries costs more bookkeeping than the dead entries do.
COMPACT_MIN_HEAP = 64

#: Wheel size: one full rotation covers WHEEL_SLOTS * granularity seconds
#: of simulated time. Power of two so the slot index is a mask, not a mod.
WHEEL_SLOTS = 256
_WHEEL_MASK = WHEEL_SLOTS - 1

#: Default tick width. At the default 1 ms the wheel spans 256 ms — wider
#: than every scaled RTO/expiry the fig workloads arm, so the overflow
#: tier only sees coarse experiment-level timers.
DEFAULT_GRANULARITY = 1e-3

#: Sentinel marking an event as living in the overflow heap (its `slot`
#: attribute); wheel residents point `slot` at their bucket dict instead.
_OVERFLOW = object()

#: Tick bound standing in for "no limit" (run without `until`).
_MAX_TICK = 1 << 62


class Event:
    """Handle for a scheduled callback.

    Returned by :meth:`Engine.schedule`; the only public operation is
    :meth:`cancel`. Instances are single-use.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "slot",
                 "engine")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.slot = None
        self.engine: Optional["Engine"] = None

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent, O(1)."""
        if self.cancelled:
            return
        self.cancelled = True
        engine = self.engine
        if engine is not None:
            engine._note_cancelled(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


class Engine:
    """A discrete-event simulation engine.

    Typical use::

        engine = Engine()
        engine.schedule(1.0, lambda: print("one second in"))
        engine.run(until=10.0)

    The clock starts at ``0.0`` and only advances when events fire; *until*
    is inclusive (an event at exactly ``until`` still runs).
    """

    def __init__(self, wheel_granularity: float = DEFAULT_GRANULARITY) -> None:
        if wheel_granularity <= 0:
            raise SimulationError(
                f"wheel_granularity must be > 0, got {wheel_granularity!r}")
        self._gran = wheel_granularity
        self._inv_gran = 1.0 / wheel_granularity
        # The wheel: bucket dicts keyed by event seq (unique), valued by
        # (time, seq, event) tuples so the batch sort is pure C tuple
        # comparison. `_cursor` is the next tick to examine; every wheel
        # resident's tick is in [cursor, cursor + WHEEL_SLOTS).
        self._wheel: List[dict] = [{} for _ in range(WHEEL_SLOTS)]
        self._wheel_count = 0
        self._cursor = 0
        # Events >= a full wheel span ahead: lazy-deletion heap, migrated
        # into the wheel as the cursor approaches.
        self._overflow: List[tuple] = []
        self._overflow_dead = 0
        # The tick currently being dispatched: its entries, sorted
        # descending by (time, seq) and popped from the end. Mutated only
        # in place so mid-run aliases (and `drain`) stay valid.
        self._batch: List[tuple] = []
        self._active_tick = -1
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_processed = 0
        self._events_cancelled = 0
        self._compactions = 0
        self._pending = 0        # raw entries incl. lazily-deleted overflow
        self._live = 0           # entries that will actually fire
        self._high_water = 0
        self._wall_seconds = 0.0
        self._profiler = None
        # Per-key clock offsets for fault injection (empty in normal runs;
        # the read path special-cases the empty dict so un-faulted
        # simulations never pay for the lookup).
        self._clock_offsets: Dict[str, float] = {}

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Per-key clock views (fault injection: clock skew)
    # ------------------------------------------------------------------
    def set_clock_offset(self, key: str, offset: float) -> None:
        """Skew the clock view of *key* (a host name) by *offset* seconds.

        Engine scheduling is unaffected — offsets only change what
        :meth:`now_for` reports, modelling a host whose wall clock reads
        (puzzle timestamps, cookie timestamps) have drifted while its
        monotonic timers keep firing on schedule. ``offset=0`` removes
        the entry.
        """
        if offset:
            self._clock_offsets[key] = offset
        else:
            self._clock_offsets.pop(key, None)

    def clock_offset(self, key: str) -> float:
        """The current clock offset for *key* (0.0 when unskewed)."""
        return self._clock_offsets.get(key, 0.0)

    def now_for(self, key: str) -> float:
        """*key*'s view of the current time: ``now`` plus any skew."""
        offsets = self._clock_offsets
        if not offsets:
            return self._now
        return self._now + offsets.get(key, 0.0)

    @property
    def events_scheduled(self) -> int:
        """Number of events ever scheduled."""
        return self._seq

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def events_cancelled(self) -> int:
        """Number of events cancelled before they could fire."""
        return self._events_cancelled

    @property
    def compactions(self) -> int:
        """Overflow-heap rebuilds that purged lazily-deleted entries."""
        return self._compactions

    @property
    def pending(self) -> int:
        """Raw scheduled entries, including lazily-deleted overflow ones."""
        return self._pending

    @property
    def pending_live(self) -> int:
        """Pending entries that will actually fire (cancellations excluded).

        Wheel cancellations are removed eagerly, so the raw and live
        counts only diverge by dead entries awaiting overflow compaction
        or sitting cancelled in the active batch.
        """
        return self._live

    @property
    def profiler(self):
        """The attached :class:`EngineProfiler`, or None."""
        return self._profiler

    def attach_profiler(self, profiler) -> None:
        """Attach (or with ``None`` detach) a per-callback profiler.

        Takes effect at the next :meth:`run` call; anything with a
        ``record(callback, wall_seconds)`` method works.
        """
        self._profiler = profiler

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> Event:
        """Schedule *callback(*args)* to run ``delay`` seconds from now.

        Raises :class:`SimulationError` for negative delays; a zero delay is
        allowed and runs after all events already scheduled for this instant.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule an event {delay!r}s in the past")
        # The body of `_insert`, inlined: this is the single hottest
        # function in the package and the call frame is measurable.
        time = self._now + delay
        seq = self._seq + 1
        self._seq = seq
        event = Event.__new__(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.engine = self
        tick = int(time * self._inv_gran)
        if tick <= self._active_tick:
            event.slot = None
            batch = self._batch
            lo, hi = 0, len(batch)
            while lo < hi:
                mid = (lo + hi) >> 1
                if batch[mid][0] > time:
                    lo = mid + 1
                else:
                    hi = mid
            batch.insert(lo, (time, seq, event))
        else:
            cursor = self._cursor
            if tick < cursor:
                tick = cursor
            if tick - cursor < WHEEL_SLOTS:
                bucket = self._wheel[tick & _WHEEL_MASK]
                bucket[seq] = (time, seq, event)
                event.slot = bucket
                self._wheel_count += 1
            else:
                event.slot = _OVERFLOW
                heappush(self._overflow, (time, seq, event))
        pending = self._pending + 1
        self._pending = pending
        if pending > self._high_water:
            self._high_water = pending
        self._live += 1
        return event

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule *callback(*args)* at absolute simulation time *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r} before now={self._now!r}")
        return self._insert(time, callback, args)

    def _insert(self, time: float, callback: Callable[..., None],
                args: tuple) -> Event:
        """Shared scheduling hot path: place one event in the right tier."""
        seq = self._seq + 1
        self._seq = seq
        event = Event.__new__(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.engine = self
        tick = int(time * self._inv_gran)
        if tick <= self._active_tick:
            # Due in the tick currently being dispatched: insert into the
            # live batch (descending by (time, seq); `seq` is larger than
            # every resident, so equal times land before them and pop
            # later — exactly the heap engine's tie-break).
            event.slot = None
            batch = self._batch
            lo, hi = 0, len(batch)
            while lo < hi:
                mid = (lo + hi) >> 1
                if batch[mid][0] > time:
                    lo = mid + 1
                else:
                    hi = mid
            batch.insert(lo, (time, seq, event))
        else:
            cursor = self._cursor
            if tick < cursor:
                # A not-yet-rescanned tick (the clock sits mid-tick after
                # a dispatch): merge into the next examined bucket — the
                # per-bucket sort still fires it first.
                tick = cursor
            if tick - cursor < WHEEL_SLOTS:
                bucket = self._wheel[tick & _WHEEL_MASK]
                bucket[seq] = (time, seq, event)
                event.slot = bucket
                self._wheel_count += 1
            else:
                event.slot = _OVERFLOW
                heappush(self._overflow, (time, seq, event))
        pending = self._pending + 1
        self._pending = pending
        if pending > self._high_water:
            self._high_water = pending
        self._live += 1
        return event

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def _note_cancelled(self, event: Event) -> None:
        """Called by :meth:`Event.cancel` while the entry is still queued."""
        self._events_cancelled += 1
        self._live -= 1
        slot = event.slot
        if slot is None:
            # In the active batch: the dispatch loop skips the flag.
            return
        event.slot = None
        event.engine = None
        if slot is _OVERFLOW:
            self._overflow_dead += 1
            overflow = self._overflow
            if (len(overflow) >= COMPACT_MIN_HEAP
                    and self._overflow_dead * 2 > len(overflow)):
                self._compact()
        else:
            # True O(1) removal from the wheel bucket.
            del slot[event.seq]
            self._wheel_count -= 1
            self._pending -= 1

    def _compact(self) -> None:
        """Rebuild the overflow heap without cancelled entries."""
        overflow = self._overflow
        live = [entry for entry in overflow if not entry[2].cancelled]
        heapify(live)
        self._pending -= len(overflow) - len(live)
        overflow[:] = live
        self._overflow_dead = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _refill(self, until_tick: int) -> bool:
        """Advance to the next non-empty tick and load it as the batch.

        Returns False when no event at tick <= *until_tick* exists. The
        cursor advance persists across calls, so repeated short `run`
        windows never rescan the same empty buckets.
        """
        wheel = self._wheel
        overflow = self._overflow
        inv_gran = self._inv_gran
        while True:
            # First live overflow entry (purging dead heads as we go).
            htick = None
            while overflow:
                head = overflow[0]
                if head[2].cancelled:
                    heappop(overflow)
                    self._overflow_dead -= 1
                    self._pending -= 1
                    continue
                htick = int(head[0] * inv_gran)
                break
            cursor = self._cursor
            horizon = cursor + WHEEL_SLOTS
            # Migrate overflow entries that now fit the wheel window.
            while htick is not None and htick < horizon:
                head = heappop(overflow)
                if htick < cursor:
                    htick = cursor
                bucket = wheel[htick & _WHEEL_MASK]
                bucket[head[1]] = head
                head[2].slot = bucket
                self._wheel_count += 1
                htick = None
                while overflow:
                    head = overflow[0]
                    if head[2].cancelled:
                        heappop(overflow)
                        self._overflow_dead -= 1
                        self._pending -= 1
                        continue
                    htick = int(head[0] * inv_gran)
                    break
            if self._wheel_count:
                # Scan for the next non-empty bucket. Stop at the until
                # bound (nothing due) or at the overflow head's tick
                # (must migrate before stepping past it).
                limit = until_tick
                if htick is not None and htick < limit:
                    limit = htick
                bucket = wheel[cursor & _WHEEL_MASK]
                while not bucket and cursor < limit:
                    cursor += 1
                    bucket = wheel[cursor & _WHEEL_MASK]
                self._cursor = cursor
                if bucket:
                    # Found the due tick: sort once, dispatch from the end.
                    batch = self._batch
                    batch[:] = bucket.values()
                    batch.sort(reverse=True)
                    bucket.clear()
                    self._wheel_count -= len(batch)
                    for entry in batch:
                        entry[2].slot = None
                    return True
                if cursor >= until_tick:
                    return False
                # The scan hit the overflow head's tick: fall through and
                # migrate it at the advanced horizon.
                continue
            if htick is None or htick > until_tick:
                return False
            self._cursor = htick
            # Loop: migrate at the new horizon.

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events in time order.

        Stops when the queues drain, when the next event is later than
        *until*, when *max_events* callbacks have run, or when
        :meth:`stop` is called from inside a callback. The clock is left at
        *until* (if given) even when the queues drain early, so that
        measurements covering the whole window see a consistent end time.
        """
        if self._running:
            raise SimulationError("engine is already running (reentrant run)")
        self._running = True
        self._stopped = False
        processed_this_run = 0
        event_limit = _MAX_TICK if max_events is None else max_events
        profiler = self._profiler
        run_started = perf_counter()
        if until is None:
            until_tick = _MAX_TICK
        else:
            scaled = until * self._inv_gran
            until_tick = int(scaled) if scaled < _MAX_TICK else _MAX_TICK
        # Local aliases: the loop body is the hottest code in the package.
        # The batch list is only ever mutated in place, so `batch` stays
        # valid across refills, drains, and re-entrant scheduling.
        batch = self._batch
        # Hold the cyclic GC for the dispatch loop: event/packet churn is
        # refcount-managed (no cycles), so generational scans are pure
        # overhead at flood rates. Restored in the `finally`; left alone
        # if the caller already disabled it.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while not self._stopped:
                if not batch:
                    if not self._refill(until_tick):
                        break
                    self._active_tick = self._cursor
                # Entries at the until tick itself may still be past the
                # (inclusive) bound; earlier ticks never are.
                boundary = self._cursor >= until_tick
                halt = False
                if profiler is None:
                    while batch:
                        entry = batch[-1]
                        if boundary and entry[0] > until:
                            halt = True
                            break
                        del batch[-1]
                        self._pending -= 1
                        event = entry[2]
                        if event.cancelled:
                            continue
                        event.engine = None
                        self._now = entry[0]
                        event.callback(*event.args)
                        self._events_processed += 1
                        self._live -= 1
                        processed_this_run += 1
                        if processed_this_run >= event_limit or self._stopped:
                            halt = True
                            break
                else:
                    while batch:
                        entry = batch[-1]
                        if boundary and entry[0] > until:
                            halt = True
                            break
                        del batch[-1]
                        self._pending -= 1
                        event = entry[2]
                        if event.cancelled:
                            continue
                        event.engine = None
                        self._now = entry[0]
                        started = perf_counter()
                        event.callback(*event.args)
                        profiler.record(event.callback,
                                        perf_counter() - started)
                        self._events_processed += 1
                        self._live -= 1
                        processed_this_run += 1
                        if processed_this_run >= event_limit or self._stopped:
                            halt = True
                            break
                if halt:
                    break
                # Tick fully dispatched: advance past it.
                self._active_tick = -1
                self._cursor += 1
        finally:
            self._running = False
            if gc_was_enabled:
                gc.enable()
            self._wall_seconds += perf_counter() - run_started
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        if not self._pending:
            # Idle fast-forward: with nothing queued, snap the cursor to
            # the clock so the next schedule lands the wheel window on
            # the present instead of overflowing from a stale origin.
            scaled = self._now * self._inv_gran
            tick = int(scaled) if scaled < _MAX_TICK else _MAX_TICK
            if tick > self._cursor:
                self._cursor = tick
                self._active_tick = -1

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight callback."""
        self._stopped = True

    def drain(self) -> int:
        """Discard all pending events; returns how many were discarded.

        Useful at the end of an experiment to release timer references.
        """
        count = 0
        for bucket in self._wheel:
            if bucket:
                for entry in bucket.values():
                    event = entry[2]
                    event.engine = None
                    event.slot = None
                count += len(bucket)  # wheel residents are always live
                bucket.clear()
        for entry in self._overflow:
            event = entry[2]
            event.engine = None
            event.slot = None
            if not event.cancelled:
                count += 1
        del self._overflow[:]
        batch = self._batch
        for entry in batch:
            event = entry[2]
            event.engine = None
            if not event.cancelled:
                count += 1
        del batch[:]
        self._wheel_count = 0
        self._overflow_dead = 0
        self._pending = 0
        self._live = 0
        return count

    def stats(self) -> Dict[str, float]:
        """Engine-level observability snapshot (all JSON-friendly).

        ``sim_wall_ratio`` is simulated seconds per wall second spent in
        :meth:`run` — the "how much faster than real time" figure.
        ``pending`` counts raw entries (the overflow tier and active
        batch keep lazily-deleted ones until touched); ``pending_live``
        counts the events that will actually fire.
        """
        wall = self._wall_seconds
        return {
            "events_scheduled": self._seq,
            "events_processed": self._events_processed,
            "events_cancelled": self._events_cancelled,
            "cancelled_pending": self._pending - self._live,
            "compactions": self._compactions,
            "heap_high_water": self._high_water,
            "pending": self._pending,
            "pending_live": self._live,
            "overflow_pending": len(self._overflow),
            "sim_seconds": self._now,
            "wall_seconds": wall,
            "sim_wall_ratio": (self._now / wall) if wall > 0 else 0.0,
        }


#: The pure-Python reference implementations, always importable under
#: these names regardless of which core `Engine` resolves to.
PyEngine = Engine
PyEvent = Event


def _differential_gate(cengine_cls) -> bool:
    """Adoption gate for a compiled core: a deterministic mixed workload
    (schedule / cancel / windowed runs / overflow-depth timers) must
    produce the identical fire order and bookkeeping as the Python
    reference before the compiled class is allowed to replace it."""
    import random as _random

    def drive(engine_cls):
        rng = _random.Random(20260808)
        engine = engine_cls()
        order: List[tuple] = []
        handles: List = []
        for step in range(120):
            for _ in range(8):
                delay = rng.choice((0.0, 1e-4, 3e-3, 0.05, 0.3, 7.0))
                handles.append(engine.schedule(
                    delay, lambda s=step: order.append(("f", s, engine.now))))
            rng.shuffle(handles)
            while len(handles) > 20:
                handles.pop().cancel()
            engine.run(until=engine.now + rng.choice((1e-3, 0.02, 0.5)),
                       max_events=rng.randint(1, 50))
        engine.run()
        stats = engine.stats()
        keys = ("events_scheduled", "events_processed", "events_cancelled",
                "pending_live", "sim_seconds")
        return order, [stats[k] for k in keys]

    try:
        return drive(cengine_cls) == drive(PyEngine)
    except Exception:
        return False


CEngine = None
_ENGINE_MODE = os.environ.get("REPRO_ENGINE", "auto").strip().lower()
if _ENGINE_MODE not in ("py", "python"):
    try:
        from repro.sim.accel import load_cengine as _load_cengine

        _cmod = _load_cengine()
    except Exception:
        if _ENGINE_MODE == "c":
            raise
        _cmod = None
    if _cmod is not None:
        if _differential_gate(_cmod.Engine):
            CEngine = _cmod.Engine
            Engine = _cmod.Engine  # type: ignore[misc]
        elif _ENGINE_MODE == "c":
            raise SimulationError(
                "REPRO_ENGINE=c but the compiled engine failed the "
                "differential self-test against the Python reference")
