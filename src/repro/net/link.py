"""Point-to-point link with serialization, propagation and bounded queueing.

A link is modelled analytically rather than with per-hop events: it keeps
the absolute time its transmitter becomes free (``_next_free``) and, when a
packet is offered at time ``t``, computes

* queueing delay  — ``max(0, _next_free − t)``,
* serialization   — ``bytes × 8 / rate``,
* propagation     — fixed ``delay``,

updating ``_next_free`` as a side effect. Because the engine processes sends
in global time order, per-link arrival order is monotone and this analytic
fold is exactly equivalent to simulating the FIFO hop by hop — at one event
per packet per *path* instead of per *link*.

The queue is byte-bounded (droptail): a packet that would have to wait for
more than ``buffer_bytes`` worth of backlog is dropped.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import NetworkError


@dataclass
class Link:
    """One direction of a network link.

    Parameters
    ----------
    rate_bps:
        Transmission rate, bits/second (e.g. ``100e6`` for the testbed's
        host links, ``1e9`` for the server and backbone links).
    delay:
        One-way propagation delay in seconds.
    buffer_bytes:
        Droptail queue capacity in bytes.
    loss_rate:
        Independent per-packet corruption/loss probability (0 disables —
        the testbed's links are clean; failure-injection tests raise it).
    rng:
        RNG for loss draws; required when ``loss_rate > 0``.
    name:
        For diagnostics and drop accounting.
    """

    rate_bps: float
    delay: float = 0.0005
    buffer_bytes: int = 256 * 1024
    loss_rate: float = 0.0
    rng: Optional[random.Random] = field(default=None, repr=False)
    name: str = ""

    _next_free: float = field(default=0.0, repr=False)
    packets_sent: int = field(default=0, repr=False)
    packets_dropped: int = field(default=0, repr=False)
    packets_lost: int = field(default=0, repr=False)
    bytes_sent: int = field(default=0, repr=False)
    #: Optional fault-injection hook (duck-typed; see
    #: ``repro.faults.injectors``). When set, ``classify(now)`` is asked
    #: for a verdict per offered packet: ``None`` passes the packet
    #: through, ``"down"`` drops it outright (link flap — the frame never
    #: transmits), ``"loss"`` burns airtime then loses the frame
    #: (Gilbert–Elliott burst corruption).
    fault: Optional[object] = field(default=None, repr=False)
    packets_faulted: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise NetworkError(f"rate_bps must be positive, got "
                               f"{self.rate_bps!r}")
        if self.delay < 0:
            raise NetworkError(f"delay must be >= 0, got {self.delay!r}")
        if self.buffer_bytes <= 0:
            raise NetworkError(f"buffer_bytes must be positive, got "
                               f"{self.buffer_bytes!r}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise NetworkError(f"loss_rate must be in [0, 1), got "
                               f"{self.loss_rate!r}")
        if self.loss_rate > 0 and self.rng is None:
            raise NetworkError("loss_rate > 0 requires an rng")

    def serialization_delay(self, size_bytes: int) -> float:
        return size_bytes * 8.0 / self.rate_bps

    def backlog_bytes(self, now: float) -> float:
        """Bytes currently queued ahead of a new arrival at *now*."""
        waiting = max(0.0, self._next_free - now)
        return waiting * self.rate_bps / 8.0

    def offer(self, now: float, size_bytes: int) -> Optional[float]:
        """Offer a packet; returns its arrival time at the far end, or
        ``None`` if the droptail queue rejects it.

        This is the fabric's innermost loop (one call per packet per path
        link), so the backlog/serialization helpers are inlined — with the
        exact same arithmetic, so drop decisions and arrival times are
        bit-identical to the helper formulation.
        """
        if size_bytes <= 0:
            raise NetworkError(f"size_bytes must be positive, got "
                               f"{size_bytes!r}")
        fault = self.fault
        if fault is not None:
            verdict = fault.classify(now)
            if verdict is not None:
                self.packets_faulted += 1
                if verdict == "loss":
                    # Burst corruption: the frame occupies airtime and is
                    # then lost, like the independent loss_rate path.
                    start = max(now, self._next_free)
                    self._next_free = start + self.serialization_delay(
                        size_bytes)
                return None
        rate = self.rate_bps
        next_free = self._next_free
        waiting = next_free - now
        if waiting < 0.0:
            waiting = 0.0
        if waiting * rate / 8.0 + size_bytes > self.buffer_bytes:
            self.packets_dropped += 1
            return None
        start = now if now > next_free else next_free
        if self.loss_rate > 0 and self.rng.random() < self.loss_rate:
            # The frame still occupies air time before being lost.
            self.packets_lost += 1
            self._next_free = start + size_bytes * 8.0 / rate
            return None
        self._next_free = next_free = start + size_bytes * 8.0 / rate
        self.packets_sent += 1
        self.bytes_sent += size_bytes
        return next_free + self.delay

    def utilization(self, now: float, since: float = 0.0) -> float:
        """Approximate long-run utilization: bytes sent over elapsed time."""
        elapsed = now - since
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.bytes_sent * 8.0 / (self.rate_bps * elapsed))

    def reset_counters(self) -> None:
        self.packets_sent = 0
        self.packets_dropped = 0
        self.packets_lost = 0
        self.bytes_sent = 0
        self.packets_faulted = 0
