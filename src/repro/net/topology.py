"""Experiment topologies.

:func:`deter_topology` reproduces the paper's Figure 16 setup: a backbone of
three routers fully connected with 1 Gbps links; the server attached at
1 Gbps; every client and attacker host attached at 100 Mbps. Paths are
static shortest paths (hop count), computed with :mod:`networkx` and cached
per (attachment, attachment) pair.

Each undirected cable is a pair of independent :class:`~repro.net.link.Link`
objects (full duplex).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

import networkx as nx

from repro.errors import NetworkError
from repro.net.link import Link

GBPS = 1e9
MBPS = 1e6


class Topology:
    """Routers, attachment points, and directed links between them.

    Nodes are string names. Hosts are *attached* to router nodes through
    their own access links; the path for a packet is
    ``access-up + backbone hops + access-down``.
    """

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._links: Dict[Tuple[str, str], Link] = {}
        self._attachment: Dict[str, str] = {}  # host node -> router node
        self._path_cache: Dict[Tuple[str, str], List[Link]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_router(self, name: str) -> None:
        self._graph.add_node(name, kind="router")

    def connect(self, a: str, b: str, rate_bps: float,
                delay: float = 0.0005,
                buffer_bytes: int = 256 * 1024) -> None:
        """Join two nodes with a full-duplex link pair."""
        for node in (a, b):
            if node not in self._graph:
                raise NetworkError(f"unknown node {node!r}")
        self._graph.add_edge(a, b)
        self._links[(a, b)] = Link(rate_bps=rate_bps, delay=delay,
                                   buffer_bytes=buffer_bytes,
                                   name=f"{a}->{b}")
        self._links[(b, a)] = Link(rate_bps=rate_bps, delay=delay,
                                   buffer_bytes=buffer_bytes,
                                   name=f"{b}->{a}")
        self._path_cache.clear()

    def attach_host(self, host_name: str, router: str, rate_bps: float,
                    delay: float = 0.0005,
                    buffer_bytes: int = 256 * 1024) -> None:
        """Attach a host to a router through its own access link pair."""
        if router not in self._graph or \
                self._graph.nodes[router].get("kind") != "router":
            raise NetworkError(f"unknown router {router!r}")
        if host_name in self._graph:
            raise NetworkError(f"duplicate host {host_name!r}")
        self._graph.add_node(host_name, kind="host")
        self._graph.add_edge(host_name, router)
        self._links[(host_name, router)] = Link(
            rate_bps=rate_bps, delay=delay, buffer_bytes=buffer_bytes,
            name=f"{host_name}->{router}")
        self._links[(router, host_name)] = Link(
            rate_bps=rate_bps, delay=delay, buffer_bytes=buffer_bytes,
            name=f"{router}->{host_name}")
        self._attachment[host_name] = router
        self._path_cache.clear()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def link(self, a: str, b: str) -> Link:
        try:
            return self._links[(a, b)]
        except KeyError:
            raise NetworkError(f"no link {a!r} -> {b!r}")

    def host_names(self) -> List[str]:
        return sorted(self._attachment)

    def path_links(self, src_host: str, dst_host: str) -> List[Link]:
        """Directed links a packet crosses from *src_host* to *dst_host*."""
        key = (src_host, dst_host)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        for host in key:
            if host not in self._attachment:
                raise NetworkError(f"host {host!r} is not attached")
        try:
            nodes = nx.shortest_path(self._graph, src_host, dst_host)
        except nx.NetworkXNoPath:
            raise NetworkError(
                f"no path between {src_host!r} and {dst_host!r}")
        links = [self._links[(a, b)] for a, b in zip(nodes, nodes[1:])]
        self._path_cache[key] = links
        return links

    def all_links(self) -> List[Link]:
        return list(self._links.values())


def deter_topology(n_client_hosts: int, n_attacker_hosts: int,
                   backbone_rate: float = GBPS,
                   server_rate: float = GBPS,
                   host_rate: float = 100 * MBPS) -> Topology:
    """The Figure 16 scenario topology.

    Three fully connected backbone routers; the server hangs off ``r1``;
    clients alternate between ``r2``/``r3`` and attackers between
    ``r3``/``r2`` — spreading load like the testbed did. Host names are
    ``server``, ``client<i>``, ``attacker<i>``.
    """
    topo = Topology()
    routers = ["r1", "r2", "r3"]
    for router in routers:
        topo.add_router(router)
    for a, b in itertools.combinations(routers, 2):
        topo.connect(a, b, rate_bps=backbone_rate)
    topo.attach_host("server", "r1", rate_bps=server_rate)
    for i in range(n_client_hosts):
        topo.attach_host(f"client{i}", routers[1 + i % 2],
                         rate_bps=host_rate)
    for i in range(n_attacker_hosts):
        topo.attach_host(f"attacker{i}", routers[1 + (i + 1) % 2],
                         rate_bps=host_rate)
    return topo
