"""Packet model: IPv4 + TCP headers with structured options.

Packets carry *structured* option objects (challenge/solution instances)
rather than raw bytes — the byte-exact wire formats live in
:mod:`repro.puzzles.codec` and are exercised by tests, while the simulator
avoids serialise/parse work per packet. Byte accounting is still faithful:
:attr:`Packet.size_bytes` includes the padded on-wire size of every option
block, so link serialization and throughput numbers match what the real
encodings would produce.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.puzzles.codec import challenge_wire_size, solution_wire_size

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.puzzles.juels import Challenge, Solution

IP_HEADER_BYTES = 20
TCP_HEADER_BYTES = 20
#: Minimum on-wire frame: the paper's §7 uses "at least 60 bytes for IP and
#: TCP headers" when costing a solution flood.
MIN_FRAME_BYTES = 60


class TCPFlags(enum.IntFlag):
    """The TCP flags the handshake machinery needs."""

    NONE = 0
    FIN = 1
    SYN = 2
    RST = 4
    PSH = 8
    ACK = 16


# Plain-int mirrors for hot-path flag tests: IntFlag's operators construct
# enum instances per call, which dominates profiles at flood rates.
_FIN = 1
_SYN = 2
_RST = 4
_PSH = 8
_ACK = 16


@dataclass
class TCPOptions:
    """Structured TCP options.

    ``mss``/``wscale`` are carried on SYN and SYN-ACK; ``ts_val``/``ts_ecr``
    model the timestamps option; ``challenge``/``solution`` are the paper's
    0xfc/0xfd blocks. ``None`` means the option is absent.
    """

    mss: Optional[int] = None
    wscale: Optional[int] = None
    ts_val: Optional[int] = None
    ts_ecr: Optional[int] = None
    challenge: Optional["Challenge"] = None
    solution: Optional["Solution"] = None

    @property
    def wire_bytes(self) -> int:
        """Padded on-wire size of all present options."""
        size = 0
        if self.mss is not None:
            size += 4  # kind, len, 2 value bytes
        if self.wscale is not None:
            size += 4  # kind, len, value, NOP
        if self.ts_val is not None or self.ts_ecr is not None:
            size += 12  # kind, len, two 4-byte stamps, 2 NOPs
        has_timestamps = self.ts_val is not None
        if self.challenge is not None:
            # With timestamps negotiated the challenge timestamp rides there
            # and the block drops its embedded copy (§5).
            _, padded = challenge_wire_size(
                self.challenge.params, embed_timestamp=not has_timestamps)
            size += padded
        if self.solution is not None:
            _, padded = solution_wire_size(
                self.solution.params, embed_timestamp=not has_timestamps)
            size += padded
        return size


def flip_bit(data: bytes, bit: int) -> bytes:
    """*data* with one bit inverted — the fault-injection corruption
    primitive. The bit index wraps, so any non-negative *bit* is valid;
    the length is preserved so size accounting and codec framing hold."""
    if not data:
        return data
    index, shift = divmod(bit % (len(data) * 8), 8)
    corrupted = bytearray(data)
    corrupted[index] ^= 1 << shift
    return bytes(corrupted)


_packet_counter = 0


@dataclass
class Packet:
    """One simulated IP/TCP packet (or an aggregated data burst).

    ``payload_bytes`` is the application payload carried; for data transfer
    the hosts aggregate a whole response into one packet whose
    ``extra_frames`` records how many MSS-sized segments it stands for, so
    per-frame header overhead still lands in :attr:`size_bytes`.
    """

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: TCPFlags = TCPFlags.NONE
    options: TCPOptions = field(default_factory=TCPOptions)
    payload_bytes: int = 0
    extra_frames: int = 0
    sent_at: float = 0.0
    app_data: object = None
    uid: int = field(default=0)
    _size_cache: Optional[int] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        global _packet_counter
        _packet_counter += 1
        self.uid = _packet_counter
        # Store flags as a plain int: every demux consults them and
        # IntFlag arithmetic allocates an enum object per operation.
        self.flags = int(self.flags)

    @property
    def size_bytes(self) -> int:
        """Total on-wire bytes, headers included (per represented frame).

        Cached on first access: options do not change once the packet is
        injected into the fabric, and the fabric asks repeatedly (per link,
        per tap).
        """
        if self._size_cache is None:
            headers = (IP_HEADER_BYTES + TCP_HEADER_BYTES
                       + self.options.wire_bytes)
            total = headers * (1 + self.extra_frames) + self.payload_bytes
            self._size_cache = max(total, MIN_FRAME_BYTES)
        return self._size_cache

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & _SYN) and not (self.flags & _ACK)

    @property
    def is_synack(self) -> bool:
        return bool(self.flags & _SYN) and bool(self.flags & _ACK)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & _RST)

    @property
    def has_ack(self) -> bool:
        return bool(self.flags & _ACK)

    @property
    def flow(self) -> tuple:
        """(src_ip, src_port, dst_ip, dst_port) — the demux key."""
        return (self.src_ip, self.src_port, self.dst_ip, self.dst_port)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        from repro.net.addresses import format_ip

        names = []
        for flag in (TCPFlags.SYN, TCPFlags.ACK, TCPFlags.RST, TCPFlags.FIN,
                     TCPFlags.PSH):
            if self.flags & flag:
                names.append(flag.name)
        extras = []
        if self.options.challenge is not None:
            extras.append("chal")
        if self.options.solution is not None:
            extras.append("sol")
        return (f"<Packet {format_ip(self.src_ip)}:{self.src_port} -> "
                f"{format_ip(self.dst_ip)}:{self.dst_port} "
                f"[{'|'.join(names) or 'none'}"
                f"{' ' + '+'.join(extras) if extras else ''}] "
                f"{self.payload_bytes}B>")
