"""Packet model: IPv4 + TCP headers with structured options.

Packets carry *structured* option objects (challenge/solution instances)
rather than raw bytes — the byte-exact wire formats live in
:mod:`repro.puzzles.codec` and are exercised by tests, while the simulator
avoids serialise/parse work per packet. Byte accounting is still faithful:
:attr:`Packet.size_bytes` includes the padded on-wire size of every option
block, so link serialization and throughput numbers match what the real
encodings would produce.

Flood workloads construct millions of near-identical packets, so the
model is built for allocation thrift rather than dataclass convenience:

* :class:`Packet` and :class:`TCPOptions` are ``__slots__`` classes —
  no per-instance ``__dict__``, roughly half the memory and measurably
  faster attribute access;
* ``size_bytes`` is precomputed at construction (options never change
  once a packet is injected into the fabric) and option byte accounting
  is cached per :class:`TCPOptions` instance, so the fabric's repeated
  per-link/per-tap size queries are plain attribute reads;
* the flood-dominant bare-SYN option shape (MSS only, or nothing) is
  interned via :func:`mss_options` — one shared immutable instance per
  MSS value instead of one allocation per SYN;
* flags are stored as plain ints and the ``FLAG_*`` constants mirror
  :class:`TCPFlags` because IntFlag operators construct an enum object
  per call, which dominates profiles at flood rates.
"""

from __future__ import annotations

import enum
from itertools import count
from typing import Dict, Optional, TYPE_CHECKING

from repro.puzzles.codec import challenge_wire_size, solution_wire_size

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.puzzles.juels import Challenge, Solution

IP_HEADER_BYTES = 20
TCP_HEADER_BYTES = 20
#: Minimum on-wire frame: the paper's §7 uses "at least 60 bytes for IP and
#: TCP headers" when costing a solution flood.
MIN_FRAME_BYTES = 60


class TCPFlags(enum.IntFlag):
    """The TCP flags the handshake machinery needs."""

    NONE = 0
    FIN = 1
    SYN = 2
    RST = 4
    PSH = 8
    ACK = 16


# Plain-int mirrors for hot paths: IntFlag's operators construct enum
# instances per call, which dominates profiles at flood rates. The
# ``FLAG_*`` names (including the pre-combined handshake shapes) are the
# public spelling for packet construction sites; the underscored ones
# remain for the demux predicates below.
FLAG_FIN = 1
FLAG_SYN = 2
FLAG_RST = 4
FLAG_PSH = 8
FLAG_ACK = 16
FLAG_SYNACK = FLAG_SYN | FLAG_ACK
FLAG_PSHACK = FLAG_PSH | FLAG_ACK

_FIN = FLAG_FIN
_SYN = FLAG_SYN
_RST = FLAG_RST
_PSH = FLAG_PSH
_ACK = FLAG_ACK


class TCPOptions:
    """Structured TCP options.

    ``mss``/``wscale`` are carried on SYN and SYN-ACK; ``ts_val``/``ts_ecr``
    model the timestamps option; ``challenge``/``solution`` are the paper's
    0xfc/0xfd blocks. ``None`` means the option is absent.

    Instances are treated as immutable once attached to a packet (the
    interned bare-SYN shapes from :func:`mss_options` are shared), and
    :attr:`wire_bytes` is cached on first computation.
    """

    __slots__ = ("mss", "wscale", "ts_val", "ts_ecr", "challenge",
                 "solution", "_wire_cache")

    def __init__(self,
                 mss: Optional[int] = None,
                 wscale: Optional[int] = None,
                 ts_val: Optional[int] = None,
                 ts_ecr: Optional[int] = None,
                 challenge: Optional["Challenge"] = None,
                 solution: Optional["Solution"] = None) -> None:
        self.mss = mss
        self.wscale = wscale
        self.ts_val = ts_val
        self.ts_ecr = ts_ecr
        self.challenge = challenge
        self.solution = solution
        self._wire_cache: Optional[int] = None

    @property
    def wire_bytes(self) -> int:
        """Padded on-wire size of all present options (cached)."""
        size = self._wire_cache
        if size is None:
            size = 0
            if self.mss is not None:
                size += 4  # kind, len, 2 value bytes
            if self.wscale is not None:
                size += 4  # kind, len, value, NOP
            if self.ts_val is not None or self.ts_ecr is not None:
                size += 12  # kind, len, two 4-byte stamps, 2 NOPs
            has_timestamps = self.ts_val is not None
            if self.challenge is not None:
                # With timestamps negotiated the challenge timestamp rides
                # there and the block drops its embedded copy (§5).
                _, padded = challenge_wire_size(
                    self.challenge.params, embed_timestamp=not has_timestamps)
                size += padded
            if self.solution is not None:
                _, padded = solution_wire_size(
                    self.solution.params, embed_timestamp=not has_timestamps)
                size += padded
            self._wire_cache = size
        return size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TCPOptions):
            return NotImplemented
        return (self.mss == other.mss and self.wscale == other.wscale
                and self.ts_val == other.ts_val
                and self.ts_ecr == other.ts_ecr
                and self.challenge == other.challenge
                and self.solution == other.solution)

    __hash__ = None  # type: ignore[assignment] - mutable container semantics

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = [f"{name}={getattr(self, name)!r}"
                 for name in ("mss", "wscale", "ts_val", "ts_ecr",
                              "challenge", "solution")
                 if getattr(self, name) is not None]
        return f"TCPOptions({', '.join(parts)})"


#: The shared no-options instance every option-less packet carries.
_EMPTY_OPTIONS = TCPOptions()

#: Interned MSS-only shapes (the bare SYN / cookie SYN-ACK fast path).
_MSS_OPTIONS: Dict[int, TCPOptions] = {}


def mss_options(mss: int) -> TCPOptions:
    """The interned MSS-only :class:`TCPOptions` for *mss*.

    SYN floods emit millions of packets whose options are exactly
    ``TCPOptions(mss=...)``; this returns one shared immutable instance
    per MSS value (with its byte accounting pre-warmed) instead of
    allocating per packet. Callers must not mutate the result.
    """
    options = _MSS_OPTIONS.get(mss)
    if options is None:
        options = TCPOptions(mss=mss)
        options.wire_bytes  # warm the cache on the shared instance
        _MSS_OPTIONS[mss] = options
    return options


def flip_bit(data: bytes, bit: int) -> bytes:
    """*data* with one bit inverted — the fault-injection corruption
    primitive. The bit index wraps, so any non-negative *bit* is valid;
    the length is preserved so size accounting and codec framing hold."""
    if not data:
        return data
    index, shift = divmod(bit % (len(data) * 8), 8)
    corrupted = bytearray(data)
    corrupted[index] ^= 1 << shift
    return bytes(corrupted)


_uid_counter = count(1)


class Packet:
    """One simulated IP/TCP packet (or an aggregated data burst).

    ``payload_bytes`` is the application payload carried; for data transfer
    the hosts aggregate a whole response into one packet whose
    ``extra_frames`` records how many MSS-sized segments it stands for, so
    per-frame header overhead still lands in :attr:`size_bytes`.

    ``size_bytes`` is computed at construction: options do not change once
    the packet is injected into the fabric, and the fabric asks repeatedly
    (per link, per tap), so it is a plain attribute rather than a property.
    """

    __slots__ = ("src_ip", "dst_ip", "src_port", "dst_port", "seq", "ack",
                 "flags", "options", "payload_bytes", "extra_frames",
                 "sent_at", "app_data", "uid", "size_bytes")

    def __init__(self,
                 src_ip: int,
                 dst_ip: int,
                 src_port: int,
                 dst_port: int,
                 seq: int = 0,
                 ack: int = 0,
                 flags: int = 0,
                 options: Optional[TCPOptions] = None,
                 payload_bytes: int = 0,
                 extra_frames: int = 0,
                 sent_at: float = 0.0,
                 app_data: object = None) -> None:
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        # Store flags as a plain int: every demux consults them and
        # IntFlag arithmetic allocates an enum object per operation.
        self.flags = flags if type(flags) is int else int(flags)
        if options is None:
            options = _EMPTY_OPTIONS
        self.options = options
        self.payload_bytes = payload_bytes
        self.extra_frames = extra_frames
        self.sent_at = sent_at
        self.app_data = app_data
        self.uid = next(_uid_counter)
        # Read the option-size cache directly: the interned/shared shapes
        # are pre-warmed, so the common case skips the property frame.
        wire = options._wire_cache
        if wire is None:
            wire = options.wire_bytes
        headers = IP_HEADER_BYTES + TCP_HEADER_BYTES + wire
        total = headers * (1 + extra_frames) + payload_bytes
        self.size_bytes = total if total > MIN_FRAME_BYTES else MIN_FRAME_BYTES

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & _SYN) and not (self.flags & _ACK)

    @property
    def is_synack(self) -> bool:
        return bool(self.flags & _SYN) and bool(self.flags & _ACK)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & _RST)

    @property
    def has_ack(self) -> bool:
        return bool(self.flags & _ACK)

    @property
    def flow(self) -> tuple:
        """(src_ip, src_port, dst_ip, dst_port) — the demux key."""
        return (self.src_ip, self.src_port, self.dst_ip, self.dst_port)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        from repro.net.addresses import format_ip

        names = []
        for flag in (TCPFlags.SYN, TCPFlags.ACK, TCPFlags.RST, TCPFlags.FIN,
                     TCPFlags.PSH):
            if self.flags & flag:
                names.append(flag.name)
        extras = []
        if self.options.challenge is not None:
            extras.append("chal")
        if self.options.solution is not None:
            extras.append("sol")
        return (f"<Packet {format_ip(self.src_ip)}:{self.src_port} -> "
                f"{format_ip(self.dst_ip)}:{self.dst_port} "
                f"[{'|'.join(names) or 'none'}"
                f"{' ' + '+'.join(extras) if extras else ''}] "
                f"{self.payload_bytes}B>")
