"""tcpdump-like capture utilities.

The paper deploys ``tcpdump`` on every machine and post-processes the
captures into throughput, connection-time and drop statistics. We expose
the same two styles:

* :class:`PacketCapture` — streaming observer; metrics subscribe with
  predicates and aggregate online (no packet storage), which is what the
  experiments use;
* :class:`RingCapture` — bounded in-memory capture of recent records, for
  tests and debugging.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from repro.net.packet import Packet


@dataclass(frozen=True)
class CaptureRecord:
    """One observed fabric event."""

    time: float
    packet: Packet
    event: str  # "send" | "deliver" | "drop" | "blackhole"


Predicate = Callable[[CaptureRecord], bool]
Sink = Callable[[CaptureRecord], None]


class PacketCapture:
    """Streaming capture: routes fabric events to filtered sinks."""

    def __init__(self) -> None:
        self._subscriptions: List[tuple] = []

    def subscribe(self, sink: Sink,
                  predicate: Optional[Predicate] = None) -> None:
        self._subscriptions.append((predicate, sink))

    def tap(self, time: float, packet: Packet, event: str) -> None:
        """Network tap entry point (install via ``Network.add_tap``)."""
        if not self._subscriptions:
            return
        record = CaptureRecord(time=time, packet=packet, event=event)
        for predicate, sink in self._subscriptions:
            if predicate is None or predicate(record):
                sink(record)


class RingCapture:
    """Keeps the last *capacity* records; handy in unit tests."""

    def __init__(self, capacity: int = 4096,
                 predicate: Optional[Predicate] = None) -> None:
        self.records: Deque[CaptureRecord] = deque(maxlen=capacity)
        self._predicate = predicate

    def tap(self, time: float, packet: Packet, event: str) -> None:
        record = CaptureRecord(time=time, packet=packet, event=event)
        if self._predicate is None or self._predicate(record):
            self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def filter(self, predicate: Predicate) -> List[CaptureRecord]:
        return [r for r in self.records if predicate(r)]

    def clear(self) -> None:
        self.records.clear()
