"""Fabric-fold acceleration: a whole path's ``Link.offer`` chain in one call.

``Network.send`` folds every packet through the directed links of its
(static) path. The per-link arithmetic is tiny — a droptail check, a
serialization update, an optional loss draw — but at flood rates the
Python frames around it dominate. A :class:`FabricPath` caches a path's
link sequence once and exposes ``fold(now, size_bytes)``, which performs
the entire chain:

* :class:`PyFabricPath` is the pure-Python fold — exactly the historical
  per-link ``link.offer`` loop, one frame instead of one per link. It is
  the always-available fallback, so ``REPRO_ENGINE=py`` stays first-class.
* The compiled core (``repro.sim._cengine.FabricPath``) performs the same
  arithmetic in C, reading and writing each link's ``__dict__`` so the
  Python ``Link`` objects remain the single source of truth (fault
  injectors, ``reset_counters`` and direct ``offer`` calls all keep
  working). Loss draws call the link's own ``rng.random()``, so the
  Mersenne stream is consumed CPython-exactly. C doubles evaluated in the
  same order as CPython floats are bit-identical, so drop decisions and
  arrival times match to the last ulp.

The compiled class is adopted only after :func:`_fabric_gate` — a
randomized differential self-test against :class:`PyFabricPath` — passes,
mirroring how :mod:`repro.sim.engine` gates its compiled engine.

A C fold returns ``NotImplemented`` instead of touching any state when it
cannot reproduce Python semantics exactly (a link-level fault hook is
installed, or the size would raise): callers then re-fold through
:func:`fold_links`, the per-link reference loop.

``REPRO_FABRIC`` controls the whole batched flood fast path:

* ``auto`` (default) — batched; compiled fold only if the engine's
  compiled core was itself built and adopted (``REPRO_ENGINE`` not py);
* ``py`` — batched, pure-Python fold, never builds C;
* ``c`` — batched, compiled fold required (build or gate failure fatal);
* ``packet`` / ``off`` — the historical per-packet path: pure-Python
  folds and no flyweight SYN/reply fast paths (see
  :mod:`repro.net.floodpath`). Used by the differential suite to prove
  the batched path byte-identical.
"""

from __future__ import annotations

import os
import sys
from typing import List, Optional

from repro.errors import SimulationError


def fold_links(links, now: float, size_bytes: int) -> Optional[float]:
    """Reference per-link fold: offer to each link in order.

    Returns the far-end arrival time, or ``None`` once any link drops
    (droptail, loss or fault) — the same contract as ``FabricPath.fold``.
    """
    arrival = now
    for link in links:
        offered = link.offer(arrival, size_bytes)
        if offered is None:
            return None
        arrival = offered
    return arrival


class PyFabricPath:
    """Pure-Python cached-path fold (the reference implementation)."""

    __slots__ = ("links",)

    def __init__(self, links) -> None:
        self.links = tuple(links)

    def fold(self, now: float, size_bytes: int) -> Optional[float]:
        arrival = now
        for link in self.links:
            offered = link.offer(arrival, size_bytes)
            if offered is None:
                return None
            arrival = offered
        return arrival


def _fabric_gate(cfabric_cls) -> bool:
    """Adoption gate for a compiled fabric fold: randomized offer
    streams over a mixed path (queueing, droptail, loss draws) must
    leave bit-identical results and link state versus the Python
    reference, and a faulted link must push the whole fold back to the
    per-link path without touching any state."""
    import random as _random

    from repro.net.link import Link

    def build(seed):
        return [
            Link(rate_bps=100e6, delay=5e-4, buffer_bytes=64 * 1024),
            Link(rate_bps=1e9, delay=2e-4, loss_rate=0.05,
                 rng=_random.Random(seed * 7 + 1)),
            Link(rate_bps=10e6, delay=1e-3, buffer_bytes=16 * 1024),
        ]

    def state(links):
        return [(lk._next_free, lk.packets_sent, lk.packets_dropped,
                 lk.packets_lost, lk.bytes_sent, lk.packets_faulted)
                for lk in links]

    def drive(path_cls, seed):
        links = build(seed)
        path = path_cls(links)
        rng = _random.Random(seed + 99)
        out = []
        now = 0.0
        for _ in range(4000):
            result = path.fold(now, rng.randint(60, 1514))
            if result is NotImplemented:
                return None
            out.append(result)
            now += rng.random() * 2e-4
        return out, state(links)

    try:
        for seed in (1, 20260808):
            if drive(cfabric_cls, seed) != drive(PyFabricPath, seed):
                return False
        # Fault pre-scan: any installed link fault must yield
        # NotImplemented before any state mutation, so the caller's
        # re-fold through the per-link path never double-counts.
        links = build(3)
        links[1].fault = object()
        before = state(links)
        path = cfabric_cls(links)
        if path.fold(0.0, 100) is not NotImplemented:
            return False
        if path.fold(0.0, 0) is not NotImplemented:  # raise-in-Python case
            return False
        if state(links) != before:
            return False
        # Instance-level ``offer`` monkeypatches (fault-injection tests)
        # must likewise escape to the interpreted path untouched.
        links = build(3)
        links[0].offer = lambda now, size: None
        before = state(links)
        path = cfabric_cls(links)
        if path.fold(0.0, 100) is not NotImplemented:
            return False
        return state(links) == before
    except Exception:
        return False


CFabricPath = None
FabricPath = PyFabricPath
_FABRIC_MODE = os.environ.get("REPRO_FABRIC", "auto").strip().lower()
#: Whether the flyweight flood fast paths (repro.net.floodpath) engage.
#: "packet"/"off" forces the historical per-packet pipeline end to end.
BATCHED = _FABRIC_MODE not in ("packet", "off")
if BATCHED and _FABRIC_MODE not in ("py", "python"):
    # Reuse the extension module the engine already built; in auto mode
    # never trigger a build the engine's own REPRO_ENGINE policy skipped.
    import repro.sim.engine  # noqa: F401  (runs the engine's adoption tail)

    _cmod = sys.modules.get("repro.sim._cengine")
    if _cmod is None and _FABRIC_MODE == "c":
        from repro.sim.accel import load_cengine as _load_cengine

        _cmod = _load_cengine()
    if _cmod is not None and hasattr(_cmod, "FabricPath"):
        if _fabric_gate(_cmod.FabricPath):
            CFabricPath = _cmod.FabricPath
            FabricPath = _cmod.FabricPath  # type: ignore[misc]
        elif _FABRIC_MODE == "c":
            raise SimulationError(
                "REPRO_FABRIC=c but the compiled fabric fold failed the "
                "differential self-test against the Python reference")
    elif _FABRIC_MODE == "c":
        raise SimulationError(
            "REPRO_FABRIC=c but the compiled core exports no FabricPath")
