"""The network fabric: delivers packets between attached hosts.

``Network`` owns the topology and the engine reference; hosts register with
their address and receive callbacks. Sending folds the packet through every
directed link on its path (see :mod:`repro.net.link` for why that is exact)
and schedules one delivery event. Path folds go through cached
:class:`~repro.net.fabric.FabricPath` objects — one object per (src, dst)
pair — so the whole ``Link.offer`` chain is a single call (compiled when
the accelerated core is adopted, a one-frame Python loop otherwise).

Packets addressed to unregistered addresses — e.g. SYN-ACKs answering
spoofed SYN floods — still consume link capacity on the path toward the
destination's *presumed* attachment and are then blackholed, mirroring what
spoofed-source replies do on a real network. A reply that the uplink's
droptail queue rejects never reaches the backbone, so it counts as a
``drop`` (and taps as one), not as blackholed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol

from repro.errors import NetworkError
from repro.net.fabric import BATCHED, FabricPath, fold_links
from repro.net.packet import Packet
from repro.net.topology import Topology
from repro.sim.engine import Engine


class Attachable(Protocol):
    """What the network needs from a host."""

    address: int
    name: str

    def receive(self, packet: Packet) -> None: ...  # noqa: E704


#: Tap signature: (time, packet, event) with event in
#: {"send", "deliver", "drop", "blackhole"}.
Tap = Callable[[float, Packet, str], None]


class Network:
    """Packet delivery fabric over a :class:`Topology`."""

    def __init__(self, engine: Engine, topology: Topology) -> None:
        self.engine = engine
        self.topology = topology
        # Bound-method cache: ``send`` schedules one delivery per packet
        # and the engine never changes after construction.
        self._schedule_at = engine.schedule_at
        self._hosts_by_ip: Dict[int, Attachable] = {}
        self._hosts_by_name: Dict[str, Attachable] = {}
        self._taps: List[Tap] = []
        # Hot-path caches over the (static-after-setup) topology — the
        # same assumption Topology's own path cache already makes. Keyed
        # by host *names* so they survive re-registration in tests.
        self._paths: Dict[tuple, FabricPath] = {}
        self._blackhole_paths: Dict[str, FabricPath] = {}
        # Address-indexed throughput accounting (see add_throughput_tap).
        self._tx_taps: Dict[int, list] = {}
        self._rx_taps: Dict[int, list] = {}
        #: Optional fault-injection hook called as ``(now, packet)`` on
        #: every send before path folding. Unlike taps (pure observers)
        #: it may mutate the packet's *options* in place — the bit-flip
        #: corruption injector rewrites challenge/solution blocks here.
        self.packet_fault: Optional[Callable[[float, Packet], None]] = None
        self.packets_delivered = 0
        self.packets_dropped = 0
        self.packets_blackholed = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, host: Attachable) -> None:
        """Register a host already attached in the topology."""
        if host.name not in self.topology.host_names():
            raise NetworkError(
                f"host {host.name!r} is not attached to the topology")
        if host.address in self._hosts_by_ip:
            raise NetworkError(
                f"duplicate address registration: {host.address!r}")
        self._hosts_by_ip[host.address] = host
        self._hosts_by_name[host.name] = host

    def host_for(self, address: int) -> Optional[Attachable]:
        return self._hosts_by_ip.get(address)

    def add_tap(self, tap: Tap) -> None:
        """Install a tcpdump-like observer over all fabric events."""
        self._taps.append(tap)

    def add_throughput_tap(self, throughput) -> None:
        """Install a :class:`~repro.metrics.throughput.HostThroughput`
        on its host's address.

        Equivalent to ``add_tap(throughput.tap)`` but dispatched through
        an address-indexed table: packets for other hosts cost one dict
        miss instead of a Python call per tap per fabric event — the
        difference is measurable at flood rates with several hosts
        instrumented.
        """
        self._tx_taps.setdefault(throughput.address, []).append(
            throughput.on_tx)
        self._rx_taps.setdefault(throughput.address, []).append(
            throughput.on_rx)

    def _emit(self, packet: Packet, event: str) -> None:
        if self._taps:
            now = self.engine.now
            for tap in self._taps:
                tap(now, packet, event)

    # ------------------------------------------------------------------
    # Path caches
    # ------------------------------------------------------------------
    def _path_for(self, src_name: str, dst_name: str) -> FabricPath:
        key = (src_name, dst_name)
        path = self._paths.get(key)
        if path is None:
            path = FabricPath(self.topology.path_links(src_name, dst_name))
            self._paths[key] = path
        return path

    def _blackhole_path_for(self, src_name: str) -> FabricPath:
        path = self._blackhole_paths.get(src_name)
        if path is None:
            # Replies to spoofed sources consume the sender's uplink
            # (the first hop toward the core), then vanish.
            uplink = self.topology.path_links(src_name, "server")[:1] \
                if src_name != "server" else \
                self.topology.path_links(
                    "server", self._any_other_host(src_name))[:1]
            path = FabricPath(uplink)
            self._blackhole_paths[src_name] = path
        return path

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: Attachable, packet: Packet) -> None:
        """Inject *packet* from *src*; delivery is scheduled on the engine.

        The source *host* determines the ingress path regardless of the
        packet's source address — that is what makes spoofing possible.
        """
        now = self.engine.now
        packet.sent_at = now
        if self.packet_fault is not None:
            self.packet_fault(now, packet)
        # Tap loops inlined: with no taps installed (most sweeps) the hot
        # path is one truthiness check; with taps it skips the _emit frame.
        taps = self._taps
        if taps:
            for tap in taps:
                tap(now, packet, "send")
        tx = self._tx_taps.get(packet.src_ip)
        if tx is not None:
            for on_tx in tx:
                on_tx(now, packet)

        size = packet.size_bytes
        dst_host = self._hosts_by_ip.get(packet.dst_ip)
        if dst_host is None:
            # Replies to spoofed sources: consume the sender's uplink,
            # then vanish in the backbone.
            path = self._blackhole_paths.get(src.name)
            if path is None:
                path = self._blackhole_path_for(src.name)
            arrival = path.fold(now, size)
            if arrival is NotImplemented:
                arrival = fold_links(path.links, now, size)
            if arrival is None:
                # Droptailed on the uplink: the reply never reached the
                # backbone to be blackholed — it is an ordinary drop.
                self.packets_dropped += 1
                if taps:
                    for tap in taps:
                        tap(now, packet, "drop")
                return
            self.packets_blackholed += 1
            if taps:
                for tap in taps:
                    tap(now, packet, "blackhole")
            return

        key = (src.name, dst_host.name)
        path = self._paths.get(key)
        if path is None:
            path = self._path_for(*key)
        arrival = path.fold(now, size)
        if arrival is NotImplemented:
            arrival = fold_links(path.links, now, size)
        if arrival is None:
            self.packets_dropped += 1
            if taps:
                for tap in taps:
                    tap(now, packet, "drop")
            return
        self._schedule_at(arrival, self._deliver, dst_host, packet)

    def _any_other_host(self, not_this: str) -> str:
        for name in self.topology.host_names():
            if name != not_this:
                return name
        raise NetworkError("topology has a single host; nowhere to route")

    def _deliver(self, host: Attachable, packet: Packet) -> None:
        self.packets_delivered += 1
        taps = self._taps
        if taps:
            now = self.engine.now
            for tap in taps:
                tap(now, packet, "deliver")
        rx = self._rx_taps.get(packet.dst_ip)
        if rx is not None:
            now = self.engine.now
            for on_rx in rx:
                on_rx(now, packet)
        host.receive(packet)

    # ------------------------------------------------------------------
    # Flyweight fast paths (see repro.net.floodpath)
    # ------------------------------------------------------------------
    def syn_fast_path(self, src: Attachable, dst_ip: int, dst_port: int):
        """A :class:`~repro.net.floodpath.SynFastPath` for bulk spoofed
        SYNs from *src* to the listener at (dst_ip, dst_port), or None
        when the batched path is disabled or the target is not (yet) a
        registered host with a listener on that port."""
        if not BATCHED:
            return None
        dst_host = self._hosts_by_ip.get(dst_ip)
        if dst_host is None:
            return None
        stack = getattr(dst_host, "tcp", None)
        if stack is None or stack.listener(dst_port) is None:
            return None
        from repro.net.floodpath import SynFastPath

        return SynFastPath(self, src, dst_host, dst_port)

    def reply_fast_path(self, host: Attachable):
        """A :class:`~repro.net.floodpath.ReplyFastPath` for *host*'s
        replies to unregistered (spoofed) addresses, or None when the
        batched path is disabled."""
        if not BATCHED:
            return None
        from repro.net.floodpath import ReplyFastPath

        return ReplyFastPath(self, host)
