"""Binary pcap export of simulated traffic.

The paper post-processes real tcpdump captures; this module closes the loop
in the other direction — simulated traffic can be written as a standard
little-endian pcap file (magic ``0xa1b2c3d4``, LINKTYPE_RAW/101) with real
IPv4+TCP headers, including the byte-exact 0xfc/0xfd puzzle option blocks
from :mod:`repro.puzzles.codec`. The files open in Wireshark/tcpdump, which
is both a demo nicety and a serious cross-check that our wire formats are
well-formed.

Only what the simulation models is emitted: header fields the simulator
does not track (IP id, checksums) are zeroed — Wireshark flags checksums as
unvalidated, which is conventional for synthetic captures.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Optional

from repro.errors import NetworkError
from repro.net.packet import Packet
from repro.puzzles.codec import encode_challenge, encode_solution

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_RAW = 101  # raw IPv4/IPv6


def _tcp_options_bytes(packet: Packet) -> bytes:
    """Serialise the structured options into real TCP option bytes."""
    options = packet.options
    out = b""
    if options.mss is not None:
        out += struct.pack("!BBH", 2, 4, options.mss & 0xFFFF)
    if options.wscale is not None:
        out += struct.pack("!BBB", 3, 3, options.wscale) + b"\x01"
    if options.ts_val is not None or options.ts_ecr is not None:
        out += b"\x01\x01" + struct.pack(
            "!BBII", 8, 10, options.ts_val or 0, options.ts_ecr or 0)
    has_ts = options.ts_val is not None
    if options.challenge is not None:
        out += encode_challenge(options.challenge,
                                embed_timestamp=not has_ts)
    if options.solution is not None:
        out += encode_solution(options.solution,
                               embed_timestamp=not has_ts)
    if len(out) % 4:
        out += b"\x01" * (4 - len(out) % 4)
    if len(out) > 40:
        raise NetworkError(
            f"serialised options are {len(out)} bytes > 40; this packet "
            f"cannot exist on the wire")
    return out


def packet_to_bytes(packet: Packet, payload_fill: bytes = b"x") -> bytes:
    """One on-wire frame: IPv4 header + TCP header/options + payload.

    Aggregated burst packets (``extra_frames > 0``) are rendered as a
    single frame carrying the full payload — pcap frames may exceed the
    MSS; consumers treat it like a GRO'd capture.
    """
    options = _tcp_options_bytes(packet)
    data_offset_words = 5 + len(options) // 4
    payload = (payload_fill * packet.payload_bytes)[:packet.payload_bytes]
    tcp = struct.pack(
        "!HHIIBBHHH",
        packet.src_port, packet.dst_port,
        packet.seq & 0xFFFFFFFF, packet.ack & 0xFFFFFFFF,
        data_offset_words << 4, int(packet.flags) & 0x3F,
        65535, 0, 0) + options + payload
    total_length = 20 + len(tcp)
    ip = struct.pack(
        "!BBHHHBBHII",
        (4 << 4) | 5, 0, total_length & 0xFFFF, 0, 0,
        64, 6, 0,
        packet.src_ip & 0xFFFFFFFF, packet.dst_ip & 0xFFFFFFFF)
    return ip + tcp


class PcapWriter:
    """Streams capture records into a pcap file.

    Use as a network tap::

        writer = PcapWriter(open("run.pcap", "wb"))
        network.add_tap(writer.tap)      # records "send" events
        ...
        writer.close()
    """

    def __init__(self, stream: BinaryIO, snaplen: int = 65535) -> None:
        self.stream = stream
        self.snaplen = snaplen
        self.frames_written = 0
        self._write_global_header()

    def _write_global_header(self) -> None:
        self.stream.write(struct.pack(
            "<IHHiIII", PCAP_MAGIC, *PCAP_VERSION, 0, 0, self.snaplen,
            LINKTYPE_RAW))

    def write(self, time: float, packet: Packet) -> None:
        frame = packet_to_bytes(packet)
        captured = frame[:self.snaplen]
        seconds = int(time)
        micros = int(round((time - seconds) * 1e6))
        self.stream.write(struct.pack("<IIII", seconds, micros,
                                      len(captured), len(frame)))
        self.stream.write(captured)
        self.frames_written += 1

    def tap(self, time: float, packet: Packet, event: str) -> None:
        """Network-tap entry point; records packets as they are sent."""
        if event == "send":
            self.write(time, packet)

    def close(self) -> None:
        self.stream.close()


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
from dataclasses import dataclass as _dataclass
from typing import Iterator, List, Tuple


@_dataclass(frozen=True)
class ParsedOption:
    """One TCP option block from a parsed frame."""

    kind: int
    data: bytes  # the whole block including kind/length


@_dataclass(frozen=True)
class ParsedFrame:
    """A dissected raw-IPv4 frame from a pcap file."""

    time: float
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    options: Tuple[ParsedOption, ...]
    payload_bytes: int

    def option(self, kind: int) -> "ParsedOption | None":
        for option in self.options:
            if option.kind == kind:
                return option
        return None


def parse_frame(time: float, frame: bytes) -> ParsedFrame:
    """Dissect one raw IPv4+TCP frame as written by :class:`PcapWriter`."""
    if len(frame) < 40:
        raise NetworkError(f"frame too short: {len(frame)} bytes")
    ihl = (frame[0] & 0x0F) * 4
    if frame[0] >> 4 != 4 or frame[9] != 6:
        raise NetworkError("not an IPv4/TCP frame")
    src_ip, dst_ip = struct.unpack("!II", frame[12:20])
    tcp = frame[ihl:]
    src_port, dst_port, seq, ack = struct.unpack("!HHII", tcp[:12])
    data_offset = (tcp[12] >> 4) * 4
    flags = tcp[13]
    raw_options = tcp[20:data_offset]
    options: List[ParsedOption] = []
    i = 0
    while i < len(raw_options):
        kind = raw_options[i]
        if kind == 0x00:          # end of options
            break
        if kind == 0x01:          # NOP
            i += 1
            continue
        if i + 1 >= len(raw_options):
            raise NetworkError("truncated TCP option")
        length = raw_options[i + 1]
        if length < 2 or i + length > len(raw_options):
            raise NetworkError(f"bad TCP option length {length}")
        options.append(ParsedOption(kind=kind,
                                    data=raw_options[i:i + length]))
        i += length
    payload = len(tcp) - data_offset
    return ParsedFrame(time=time, src_ip=src_ip, dst_ip=dst_ip,
                       src_port=src_port, dst_port=dst_port, seq=seq,
                       ack=ack, flags=flags, options=tuple(options),
                       payload_bytes=payload)


def read_pcap(stream) -> Iterator[ParsedFrame]:
    """Iterate the frames of a pcap file written by :class:`PcapWriter`."""
    header = stream.read(24)
    if len(header) < 24:
        raise NetworkError("truncated pcap global header")
    magic, = struct.unpack("<I", header[:4])
    if magic != PCAP_MAGIC:
        raise NetworkError(f"unsupported pcap magic {magic:#x}")
    linktype, = struct.unpack("<I", header[20:24])
    if linktype != LINKTYPE_RAW:
        raise NetworkError(f"unsupported linktype {linktype}")
    while True:
        record = stream.read(16)
        if not record:
            return
        if len(record) < 16:
            raise NetworkError("truncated pcap record header")
        sec, usec, caplen, _ = struct.unpack("<IIII", record)
        frame = stream.read(caplen)
        if len(frame) < caplen:
            raise NetworkError("truncated pcap frame")
        yield parse_frame(sec + usec / 1e6, frame)
