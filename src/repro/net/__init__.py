"""Network substrate: addresses, packets, links, topology, capture.

Substitutes for the paper's DETER testbed network (Figure 16): three fully
connected backbone routers at 1 Gbps, the server on a 1 Gbps access link,
every other host on 100 Mbps. Links model serialization, propagation and
bounded FIFO queueing; a packet traverses its whole precomputed path with a
single engine event (per-link FIFO order is preserved because sends are
processed in global time order — see :mod:`repro.net.link`).
"""

from repro.net.addresses import (
    AddressAllocator,
    SpoofingPool,
    format_ip,
    parse_ip,
)
from repro.net.packet import Packet, TCPFlags, TCPOptions
from repro.net.link import Link
from repro.net.network import Network
from repro.net.topology import Topology, deter_topology
from repro.net.pcap import PacketCapture, RingCapture

__all__ = [
    "AddressAllocator",
    "SpoofingPool",
    "format_ip",
    "parse_ip",
    "Packet",
    "TCPFlags",
    "TCPOptions",
    "Link",
    "Network",
    "Topology",
    "deter_topology",
    "PacketCapture",
    "RingCapture",
]
