"""IPv4 addresses as plain integers, plus allocation and spoofing pools.

Addresses are ``int`` everywhere in the simulator (hashable, compact, and
byte-packable for puzzle pre-images); these helpers convert to and from
dotted-quad notation and hand out experiment address space.
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import NetworkError


def parse_ip(dotted: str) -> int:
    """``"10.1.0.1" -> 0x0A010001``."""
    parts = dotted.split(".")
    if len(parts) != 4:
        raise NetworkError(f"malformed IPv4 address {dotted!r}")
    value = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError:
            raise NetworkError(f"malformed IPv4 address {dotted!r}")
        if not 0 <= octet <= 255:
            raise NetworkError(f"malformed IPv4 address {dotted!r}")
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """``0x0A010001 -> "10.1.0.1"``."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise NetworkError(f"IPv4 address out of range: {value!r}")
    return ".".join(str((value >> shift) & 0xFF)
                    for shift in (24, 16, 8, 0))


class AddressAllocator:
    """Sequential allocation from a /16-style experiment block."""

    def __init__(self, base: str = "10.1.0.0") -> None:
        self._base = parse_ip(base)
        self._next = 1

    def allocate(self) -> int:
        """Next unused address in the block."""
        if self._next >= 0xFFFF:
            raise NetworkError("experiment address block exhausted")
        address = self._base + self._next
        self._next += 1
        return address

    def allocate_many(self, count: int) -> List[int]:
        return [self.allocate() for _ in range(count)]


class SpoofingPool:
    """Random source addresses for the hping3-style spoofed SYN flood.

    Draws from a block disjoint from the experiment's real hosts so replies
    to spoofed sources are blackholed — exactly what happens to a spoofed
    SYN-ACK on a real network with no egress filtering.
    """

    def __init__(self, rng: random.Random, base: str = "172.16.0.0",
                 span: int = 1 << 20) -> None:
        if span <= 0:
            raise NetworkError(f"span must be positive, got {span}")
        self._rng = rng
        self._base = parse_ip(base)
        self._span = span
        self._span_bits = span.bit_length()  # _randbelow's k

    def draw(self) -> int:
        # Inlined random.randrange(span): identical getrandbits rejection
        # sampling to the stdlib's _randbelow, so the RNG stream (and every
        # spoofed address) is unchanged — minus two Python frames per SYN.
        grb = self._rng.getrandbits
        span = self._span
        bits = self._span_bits
        value = grb(bits)
        while value >= span:
            value = grb(bits)
        return self._base + value
