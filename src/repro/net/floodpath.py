"""Flyweight flood fast paths: SYN descriptors and blackholed replies.

Flood workloads spend most of their wall time crossing Python frames that
exist only to carry three integers from the attacker's RNG to the
listener's triage: build a ``Packet``, ``Host.send`` it, fold it link by
link, deliver it, demultiplex it, and then build and send a response
``Packet`` that a spoofed source can never receive. The two classes here
collapse those frames while preserving the exact observable semantics —
every counter, RNG draw, tracepoint, engine event time and sequence
number matches the per-packet pipeline byte for byte (the differential
suite in ``tests/sim/`` proves it across the full fig7 matrix).

* :class:`SynFastPath` — the attacker side. A bulk sender
  (:class:`~repro.hosts.attacker.SynFlooder`) passes the per-SYN fields
  ``(src_ip, src_port, seq)`` as a flyweight descriptor; the path's
  ``Link.offer`` chain is folded in one (optionally compiled) call and a
  single delivery event is scheduled, exactly like ``Network.send``
  would. At dispatch the descriptor is triaged straight into the
  listener: the tap checks, TCP demux dict probes and ``handle_syn``
  lookup are resolved once per path instead of once per packet, and the
  SYN the listener sees is one reused packet object (safe because the
  listener copies every field it keeps — see the contract below).
* :class:`ReplyFastPath` — the server side. SYN-ACKs answering spoofed
  sources are blackholed after consuming the server's uplink; their
  bytes matter (throughput taps, link accounting) but their contents are
  never read. The listener keeps every side effect of issuing the
  response (hash and CPU accounting, stats, MIB, tracer, the ISN draw)
  and then folds just the precomputed on-wire size through the uplink.

Contract for flyweight reuse: the fast paths engage only while the
fabric has no packet-level observers (``Network.packet_fault`` unset, no
``add_tap`` captures — those may retain packets). Address-indexed
throughput taps (``add_throughput_tap``) are served: they read only
``size_bytes``/``payload_bytes`` per call and retain nothing. Both
classes re-check the observer set on every send and fall back to the
materialized per-packet path the moment one appears.

``REPRO_FABRIC=packet`` disables both classes (see
:mod:`repro.net.fabric`), which is how the differential suite runs the
reference pipeline.
"""

from __future__ import annotations

from functools import lru_cache

from repro.metrics.throughput import HostThroughput
from repro.net.fabric import fold_links
from repro.net.packet import (FLAG_SYN, FLAG_SYNACK, IP_HEADER_BYTES,
                              MIN_FRAME_BYTES, TCP_HEADER_BYTES, Packet,
                              mss_options)
from repro.puzzles.codec import challenge_wire_size
from repro.tcp.constants import DEFAULT_MSS


def _frame_size(wire_bytes: int) -> int:
    """``Packet.size_bytes`` for a bare segment with *wire_bytes* of
    options — the same header-plus-minimum arithmetic as the packet
    model, kept in lockstep by ``tests/net/test_floodpath.py``."""
    total = IP_HEADER_BYTES + TCP_HEADER_BYTES + wire_bytes
    return total if total > MIN_FRAME_BYTES else MIN_FRAME_BYTES


#: Cookie SYN-ACK (interned MSS-only options): 4 option bytes.
MSS_SYNACK_SIZE = _frame_size(4)


def plain_synack_size(wscale) -> int:
    """On-wire size of a stock SYN-ACK (MSS always, wscale echoed)."""
    return _frame_size(4 + (4 if wscale is not None else 0))


@lru_cache(maxsize=None)
def challenge_synack_size(params) -> int:
    """On-wire size of a challenge SYN-ACK for *params* (MSS option plus
    the padded challenge block with its embedded timestamp)."""
    _, padded = challenge_wire_size(params, embed_timestamp=True)
    return _frame_size(4 + padded)


class SynFastPath:
    """Per-(source-host, listener) spoofed-SYN pipeline."""

    __slots__ = ("network", "src", "path", "dst_host", "dst_ip",
                 "dst_port", "stack", "handle_syn", "_mib_values",
                 "_servers", "_clients", "flyweight", "size", "_rx_key",
                 "_rx_len", "_rx_adds")

    def __init__(self, network, src, dst_host, dst_port: int) -> None:
        self.network = network
        self.src = src
        self.path = network._path_for(src.name, dst_host.name)
        self.dst_host = dst_host
        self.dst_ip = dst_host.address
        self.dst_port = dst_port
        self.stack = dst_host.tcp
        self.handle_syn = self.stack.listener(dst_port).handle_syn
        # The stack's demux tables and the host MIB's backing dict are
        # created once in their constructors and never reassigned —
        # caching them turns the per-SYN demux into plain dict probes.
        self._mib_values = self.stack._mib._values
        self._servers = self.stack._servers
        self._clients = self.stack._clients
        # One reused SYN packet: per-delivery fields are overwritten in
        # _deliver; everything else (flags, options, sizes) is constant
        # across a flood.
        self.flyweight = Packet(
            src_ip=0, dst_ip=self.dst_ip, src_port=0, dst_port=dst_port,
            flags=FLAG_SYN, options=mss_options(DEFAULT_MSS))
        self.size = self.flyweight.size_bytes
        # Rx-tap specialization cache (see _specialize_rx).
        self._rx_key = None
        self._rx_len = 0
        self._rx_adds = None

    def send(self, src_ip: int, src_port: int, seq: int) -> bool:
        """Fold and schedule one spoofed SYN; False → the caller must
        take the materialized per-packet path for this send."""
        net = self.network
        if (net.packet_fault is not None or net._taps
                or net._tx_taps.get(src_ip) is not None
                or "send" in self.src.__dict__):
            return False
        now = net.engine.now
        arrival = self.path.fold(now, self.size)
        if arrival is NotImplemented:
            # A link-level fault hook is installed; nothing was mutated,
            # so the per-packet path replays this send exactly.
            return False
        if arrival is None:
            net.packets_dropped += 1
            return True
        net._schedule_at(arrival, self._deliver, src_ip, src_port, seq,
                         now)
        return True

    def _materialize(self, src_ip: int, src_port: int, seq: int,
                     sent_at: float) -> Packet:
        return Packet(src_ip=src_ip, dst_ip=self.dst_ip,
                      src_port=src_port, dst_port=self.dst_port, seq=seq,
                      flags=FLAG_SYN, options=mss_options(DEFAULT_MSS),
                      sent_at=sent_at)

    def _deliver(self, src_ip: int, src_port: int, seq: int,
                 sent_at: float) -> None:
        net = self.network
        net.packets_delivered += 1
        if (net._taps or "receive" in self.dst_host.__dict__
                or "receive" in self.stack.__dict__):
            # A capture tap or an instance-level receive override
            # appeared between send and delivery: those may retain or
            # inspect packets, so hand them a real one.
            packet = self._materialize(src_ip, src_port, seq, sent_at)
            now = net.engine.now
            for tap in net._taps:
                tap(now, packet, "deliver")
            rx = net._rx_taps.get(self.dst_ip)
            if rx is not None:
                for on_rx in rx:
                    on_rx(now, packet)
            self.dst_host.receive(packet)
            return
        fw = self.flyweight
        fw.src_ip = src_ip
        fw.src_port = src_port
        fw.seq = seq
        fw.sent_at = sent_at
        rx = net._rx_taps.get(self.dst_ip)
        if rx is not None:
            now = net.engine.now
            if rx is self._rx_key and len(rx) == self._rx_len:
                adds = self._rx_adds
            else:
                adds = self._specialize_rx(rx)
            if adds is not None:
                # All taps are stock HostThroughput: a zero-payload SYN
                # reduces on_rx to one BinnedSeries accumulation of its
                # size, inlined here (same arithmetic as ``add``).
                size = self.size
                for bins, t0, width, series in adds:
                    index = int((now - t0) // width)
                    bins[index] = bins.get(index, 0.0) + size
                    series.total += size
            else:
                for on_rx in rx:
                    on_rx(now, fw)
        # Inlined TCPStack.receive demux for a SYN: same counters, same
        # table probes, with the listener lookup resolved at setup.
        key = (self.dst_port, src_ip, src_port)
        if key in self._servers or key in self._clients:
            # A live connection owns this exact flow (possible only when
            # the spoofing pool overlaps real addresses): replay through
            # the full demux with a materialized packet.
            self.stack.receive(self._materialize(src_ip, src_port, seq,
                                                 sent_at))
            return
        self.stack.segments_received += 1
        values = self._mib_values
        values["InSegs"] = values.get("InSegs", 0) + 1
        self.handle_syn(fw)

    def _specialize_rx(self, rx):
        """Re-resolve the rx-tap list (identity/length changed): a list
        of ``(bins, t0, bin_width, series)`` accumulator tuples when
        every tap is an unmodified :class:`HostThroughput`, else None →
        generic ``on_rx`` loop."""
        adds = []
        for on_rx in rx:
            if (type(getattr(on_rx, "__self__", None)) is HostThroughput
                    and getattr(on_rx, "__func__", None)
                    is HostThroughput.on_rx):
                series = on_rx.__self__.rx
                adds.append((series._bins, series.t0, series.bin_width,
                             series))
            else:
                adds = None
                break
        self._rx_key = rx
        self._rx_len = len(rx)
        self._rx_adds = adds
        return adds


class ReplyFastPath:
    """Per-host pipeline for replies that will be blackholed."""

    __slots__ = ("network", "host", "path", "src_ip", "flyweight",
                 "_tx_key", "_tx_len", "_tx_adds")

    def __init__(self, network, host) -> None:
        self.network = network
        self.host = host
        self.path = network._blackhole_path_for(host.name)
        self.src_ip = host.address
        self.flyweight = Packet(
            src_ip=host.address, dst_ip=0, src_port=0, dst_port=0,
            flags=FLAG_SYNACK)
        # Tx-tap specialization cache (mirror of SynFastPath's rx one).
        self._tx_key = None
        self._tx_len = 0
        self._tx_adds = None

    def sendable(self, dst_ip: int) -> bool:
        """True while the reply to *dst_ip* may skip materialization:
        the destination is unregistered (so the reply is blackholed and
        its contents never read) and no packet-retaining observers are
        installed. An instance-level ``host.send`` override (tests spy
        on outgoing packets that way) also disables the shortcut."""
        net = self.network
        return (net.packet_fault is None and not net._taps
                and dst_ip not in net._hosts_by_ip
                and "send" not in self.host.__dict__)

    def send(self, size: int, dst_ip: int, dst_port: int) -> None:
        """Account one *size*-byte reply toward the uplink blackhole —
        the tail of ``Network.send`` for an unregistered destination,
        without the packet."""
        net = self.network
        now = net.engine.now
        tx = net._tx_taps.get(self.src_ip)
        if tx is not None:
            if tx is self._tx_key and len(tx) == self._tx_len:
                adds = self._tx_adds
            else:
                adds = self._specialize_tx(tx)
            if adds is not None:
                for bins, t0, width, series in adds:
                    index = int((now - t0) // width)
                    bins[index] = bins.get(index, 0.0) + size
                    series.total += size
            else:
                fw = self.flyweight
                fw.sent_at = now
                fw.size_bytes = size
                fw.dst_ip = dst_ip
                fw.dst_port = dst_port
                for on_tx in tx:
                    on_tx(now, fw)
        arrival = self.path.fold(now, size)
        if arrival is NotImplemented:
            arrival = fold_links(self.path.links, now, size)
        if arrival is None:
            # Droptailed on the uplink before reaching the backbone.
            net.packets_dropped += 1
        else:
            net.packets_blackholed += 1

    def _specialize_tx(self, tx):
        adds = []
        for on_tx in tx:
            if (type(getattr(on_tx, "__self__", None)) is HostThroughput
                    and getattr(on_tx, "__func__", None)
                    is HostThroughput.on_tx):
                series = on_tx.__self__.tx
                adds.append((series._bins, series.t0, series.bin_width,
                             series))
            else:
                adds = None
                break
        self._tx_key = tx
        self._tx_len = len(tx)
        self._tx_adds = adds
        return adds
