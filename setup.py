"""Legacy shim so `pip install -e .` works offline.

The environment ships setuptools without the `wheel` package, so the PEP 660
editable-install path (which needs bdist_wheel) fails; with this shim pip
can fall back to `setup.py develop` (--no-use-pep517). All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
