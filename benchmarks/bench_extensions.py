"""Benches for the §7 extensions (adaptive tuning, solution floods,
memory-bound fairness)."""

import pytest

from benchmarks.conftest import bench_scenario_config, emit
from repro.experiments.extensions import (
    adaptive_difficulty_experiment,
    pow_fairness_table,
    solution_flood_experiment,
)
from repro.experiments.report import render_table
from repro.hosts.cpu import SERVER_CPU
from repro.tcp.adaptive import AdaptiveConfig


def test_extension_adaptive_difficulty(benchmark):
    """Closed-loop tuning from a too-easy start, under attack."""
    outcome = benchmark.pedantic(
        adaptive_difficulty_experiment,
        kwargs=dict(base=bench_scenario_config(time_scale=0.03),
                    start_m=8,
                    controller=AdaptiveConfig(interval=1.0,
                                              target_inflow=60.0,
                                              m_floor=8)),
        rounds=1, iterations=1)
    trajectory = [(f"{t:.0f}s", m) for t, m, _ in outcome.m_trajectory]
    emit("extension_adaptive", render_table(
        ["time", "m"], trajectory)
        + f"\nstatic m=8 attacker steady cps: "
        f"{outcome.static.attacker_steady_state_rate():.1f}\n"
        f"adaptive attacker steady cps: "
        f"{outcome.adaptive.attacker_steady_state_rate():.1f}\n"
        f"final m: {outcome.final_m}")
    assert outcome.final_m > 8
    assert outcome.adaptive.attacker_steady_state_rate() <= \
        outcome.static.attacker_steady_state_rate()


def test_extension_solution_flood(benchmark):
    """§7's verification-exhaustion analysis, measured."""
    points = benchmark.pedantic(
        solution_flood_experiment,
        kwargs=dict(rates=(1_000.0, 5_000.0, 20_000.0),
                    base=bench_scenario_config(time_scale=0.03)),
        rounds=1, iterations=1)
    # Extrapolate to the §7 closed form with the *marginal* CPU cost per
    # bogus packet (the baseline ~3% is regular request processing).
    low, high = points[0], points[-1]
    slope = ((high.server_cpu_percent - low.server_cpu_percent)
             / (high.flood_rate - low.flood_rate))
    saturation_pps = ((100.0 - low.server_cpu_percent) / slope
                      if slope > 0 else float("inf"))
    emit("extension_solution_flood", render_table(
        ["bogus pps", "server CPU %", "rejected", "client completion %"],
        [(p.flood_rate, p.server_cpu_percent, p.rejected,
          p.client_completion_percent) for p in points])
        + f"\nextrapolated saturation rate: {saturation_pps:,.0f} pps "
        f"(paper's closed form: ~5,400,000 pps at "
        f"{SERVER_CPU.hash_rate:,.0f} hashes/s)")
    for point in points:
        assert point.server_cpu_percent < 5.0
        assert point.client_completion_percent > 80.0
    # Within an order of magnitude of the paper's closed form.
    assert saturation_pps > 500_000


def test_extension_pow_fairness(benchmark):
    """Hashcash vs memory-bound solve-time spread across the catalog."""
    report = benchmark(pow_fairness_table)
    emit("extension_pow_fairness", render_table(
        ["device", "hashcash solve (s)", "membound solve (s)"],
        [(r.device, r.hashcash_solve_s, r.membound_solve_s)
         for r in report.rows])
        + f"\nhash-rate spread: {report.hashcash_spread:.1f}x; "
        f"memory-rate spread: {report.membound_spread:.1f}x")
    assert report.membound_spread < report.hashcash_spread / 2


def test_extension_fair_queuing(benchmark):
    """Puzzle Fair Queuing vs uniform Nash pricing under the flood."""
    from repro.experiments.extensions import fair_queuing_experiment

    outcome = benchmark.pedantic(
        fair_queuing_experiment,
        args=(bench_scenario_config(time_scale=0.03),),
        rounds=1, iterations=1)
    emit("extension_fair_queuing", render_table(
        ["pricing", "client cost (hashes/conn)", "client completion %",
         "attacker steady cps"],
        [("uniform Nash (2,17)", outcome.uniform_client_cost,
          outcome.uniform.client_completion_percent(),
          outcome.uniform.attacker_steady_state_rate()),
         ("fair queuing (base 1,12)", outcome.fair_client_cost,
          outcome.fair.client_completion_percent(),
          outcome.fair.attacker_steady_state_rate())]))
    assert outcome.fair_client_cost < outcome.uniform_client_cost


def test_extension_keepalive(benchmark):
    """HTTP/1.1 persistence: pay the puzzle once per session (§4.2)."""
    from repro.experiments.extensions import keepalive_experiment

    outcome = benchmark.pedantic(
        keepalive_experiment,
        args=(bench_scenario_config(time_scale=0.03),),
        rounds=1, iterations=1)
    emit("extension_keepalive", render_table(
        ["client mode", "completion %", "puzzles paid"],
        [("per-request connections", outcome.per_request_completion,
          outcome.per_request_challenged),
         ("keep-alive sessions", outcome.keepalive_completion,
          outcome.keepalive_challenged)]))
    assert outcome.keepalive_challenged < outcome.per_request_challenged


def test_extension_heterogeneous_clientele(benchmark):
    """The §7 power-mix problem: theory's dropout table + the simulated
    mixed Xeon/Pi population under attack."""
    from repro.experiments.heterogeneous import (
        dropout_prediction_table,
        mixed_clientele_experiment,
    )
    from repro.puzzles.params import PuzzleParams

    def run():
        theory = dropout_prediction_table(
            difficulties=(1_000.0, 8_000.0, 30_000.0, 67_000.0))
        system = mixed_clientele_experiment(
            bench_scenario_config(time_scale=0.03),
            params=PuzzleParams(k=2, m=16))
        return theory, system

    theory, system = benchmark.pedantic(run, rounds=1, iterations=1)
    theory_table = render_table(
        ["difficulty", "cpu1 rate", "cpu3 rate", "D1 rate"],
        [(row.difficulty, row.rates_by_class["cpu1"],
          row.rates_by_class["cpu3"], row.rates_by_class["D1"])
         for row in theory])
    system_table = render_table(
        ["class", "completion %", "mean connect (s)", "challenged"],
        [(o.device_class, o.completion_percent, o.mean_connect_time,
          o.challenged) for o in system.per_class])
    emit("extension_heterogeneous",
         "theory (equilibrium rates):\n" + theory_table
         + "\n\nsimulation (under connection flood):\n" + system_table)
    # Theory: the Pi class exits as price rises. Simulation: the Pi class
    # self-throttles — its CPU defers most attempts, so it sustains a
    # fraction of the Xeons' connection throughput and pays much longer
    # handshakes (its completion % of *attempted* requests stays fine,
    # which is precisely why completion alone under-states the unfairness).
    assert theory[0].rates_by_class["D1"] > 0
    assert theory[-1].rates_by_class["D1"] == 0.0
    by_class = {o.device_class: o for o in system.per_class}
    assert by_class["cpu1"].challenged > by_class["D1"].challenged * 3
    assert by_class["D1"].mean_connect_time > \
        by_class["cpu1"].mean_connect_time
