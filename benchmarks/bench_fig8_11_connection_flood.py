"""Figures 8–11: the connection-flood experiment.

One suite run covers all four figures (as in the paper, where they are
different measurements of the same experiment):

* Figure 8 — client/server throughput per defense;
* Figure 9 — CPU utilisation (client / server / attacker) under puzzles;
* Figure 10 — listen/accept queue occupancy, challenges vs cookies;
* Figure 11 — effective (established-connection) attack rate.
"""

import numpy as np
import pytest

from benchmarks.conftest import bench_scenario_config, emit
from repro.experiments.exp2_floods import (
    CHALLENGES_M17,
    COOKIES,
    NODEFENSE,
    run_connection_flood_suite,
)
from repro.experiments.report import render_table


@pytest.fixture(scope="module")
def suite():
    return run_connection_flood_suite(
        bench_scenario_config(attack_style="connect"))


def test_fig8_connection_flood_throughput(benchmark, suite):
    def extract():
        rows = []
        for label, result in suite.items():
            rows.append((
                label,
                result.client_throughput_before_attack().mean,
                result.client_throughput_during_attack().mean,
                result.server_throughput_during_attack().mean,
                result.client_completion_percent()))
        return rows

    rows = benchmark(extract)
    emit("fig8_connection_flood", render_table(
        ["defense", "client Mbps (pre)", "client Mbps (attack)",
         "server Mbps (attack)", "client completion %"], rows))
    by_label = {row[0]: row for row in rows}
    # Cookies are ineffective against a connection flood; puzzles at the
    # Nash difficulty preserve (reduced) service.
    assert by_label[COOKIES][4] < 25.0
    assert by_label[NODEFENSE][4] < 35.0
    assert by_label[CHALLENGES_M17][4] > 60.0


def test_fig9_cpu_utilization(benchmark, suite):
    result = suite[CHALLENGES_M17]
    start, end = result.attack_window()

    def extract():
        return [(name,
                 result.cpu.mean_in(name, 0.0, start),
                 result.cpu.mean_in(name, start, end),
                 result.cpu.max_in(name, start, end))
                for name in ("client0", "server", "attacker0")]

    rows = benchmark(extract)
    emit("fig9_cpu_utilization", render_table(
        ["host", "% CPU pre-attack", "% CPU during attack (mean)",
         "% CPU during attack (max)"], rows))
    by_host = {row[0]: row for row in rows}
    # Server's puzzle work is negligible; attackers burn the most.
    assert by_host["server"][2] < 5.0
    assert by_host["attacker0"][2] > 50.0
    assert by_host["attacker0"][2] >= by_host["client0"][2] * 0.9


def test_fig10_queue_occupancy(benchmark, suite):
    challenges = suite[CHALLENGES_M17]
    cookies = suite[COOKIES]
    start, end = challenges.attack_window()
    mid = (start + end) / 2.0

    def extract():
        rows = []
        for label, result in ((CHALLENGES_M17, challenges),
                              (COOKIES, cookies)):
            rows.append((
                label,
                result.queues.listen_depth.mean_in(mid, end),
                result.queues.accept_depth.mean_in(mid, end)))
        return rows

    rows = benchmark(extract)
    emit("fig10_queue_occupancy", render_table(
        ["defense", "listen depth (attack steady)",
         "accept depth (attack steady)"], rows))
    challenges_row, cookies_row = rows
    backlog = challenges.config.backlog
    accept_backlog = challenges.config.accept_backlog
    # Challenges: listen saturated (strands), accept near-empty.
    assert challenges_row[1] > 0.9 * backlog
    assert challenges_row[2] < 0.4 * accept_backlog
    # Cookies: both queues pinned full.
    assert cookies_row[1] > 0.9 * backlog
    assert cookies_row[2] > 0.9 * accept_backlog


def test_fig11_effective_attack_rate(benchmark, suite):
    def extract():
        rows = []
        for label in (COOKIES, CHALLENGES_M17):
            result = suite[label]
            rows.append((label,
                         result.attacker_established_rate(),
                         result.attacker_steady_state_rate()))
        return rows

    rows = benchmark(extract)
    emit("fig11_effective_attack_rate", render_table(
        ["defense", "attacker cps (whole attack)",
         "attacker cps (steady state)"], rows))
    cookies_row, challenges_row = rows
    # The paper: 225 cps under cookies vs 4 cps under puzzles (×37+).
    # At benchmark scale the engagement transient weighs more; the steady
    # state reproduces a large reduction factor.
    assert challenges_row[2] < cookies_row[2] / 5.0
