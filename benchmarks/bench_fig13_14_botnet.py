"""Figures 13–14: botnet effectiveness sweeps at the Nash difficulty."""

import pytest

from benchmarks.conftest import bench_scenario_config, emit
from repro.experiments.exp4_botnet import (
    botnet_size_sweep,
    per_node_rate_sweep,
)
from repro.experiments.report import render_table

SWEEP_SCALE = 0.03


def _rows(points):
    return [(p.n_bots, p.configured_rate_per_node,
             p.configured_rate_total, p.measured_attack_rate,
             p.completion_rate, p.completion_rate_steady)
            for p in points]


def test_fig13_per_node_rate_sweep(benchmark):
    # Queue bounds scale with the timeline so the lowest-rate points still
    # engage the protection within the shortened attack window.
    base = bench_scenario_config(time_scale=SWEEP_SCALE, backlog=256,
                                 accept_backlog=256)
    points = benchmark.pedantic(
        per_node_rate_sweep,
        kwargs=dict(rates=(100, 200, 400, 600, 800, 1000), n_bots=5,
                    base=base),
        rounds=1, iterations=1)
    emit("fig13_rate_sweep", render_table(
        ["bots", "rate/node (pps)", "configured total", "measured (pps)",
         "completed (cps)", "completed steady (cps)"], _rows(points)))
    # 13(a): the measured rate saturates below the configured rate as the
    # bots' CPUs stall the tool.
    assert points[-1].measured_attack_rate < \
        points[-1].configured_rate_total * 0.8
    # 13(b): the completion rate is flat-ish — a 10× rate buys << 10×.
    assert points[-1].completion_rate < points[0].completion_rate * 5 + 10


def test_fig14_botnet_size_sweep(benchmark):
    base = bench_scenario_config(time_scale=SWEEP_SCALE, backlog=256,
                                 accept_backlog=256)
    points = benchmark.pedantic(
        botnet_size_sweep,
        kwargs=dict(sizes=(2, 4, 6, 8, 10, 12, 14), total_rate=5000.0,
                    base=base),
        rounds=1, iterations=1)
    emit("fig14_size_sweep", render_table(
        ["bots", "rate/node (pps)", "configured total", "measured (pps)",
         "completed (cps)", "completed steady (cps)"], _rows(points)))
    # 14(a): more machines → more measured pps (each bot's pool bounds it).
    assert points[-1].measured_attack_rate > points[0].measured_attack_rate
    # 14(b): the steady effective rate grows with fleet size (each machine
    # adds its CPU-bound solving trickle) but stays far below measured pps.
    assert points[-1].completion_rate_steady >= \
        points[0].completion_rate_steady
    for point in points[2:]:
        assert point.completion_rate < point.measured_attack_rate / 5.0
