"""Figure 6: CDF of client connection time over the (k, m) grid."""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.experiments.exp1_connection_time import (
    DEFAULT_K_VALUES,
    DEFAULT_M_VALUES,
    connection_time_cdf_grid,
)
from repro.experiments.report import render_table


def test_fig6_connection_time_grid(benchmark):
    grid = benchmark.pedantic(
        connection_time_cdf_grid,
        kwargs=dict(samples=40), rounds=1, iterations=1)
    rows = []
    for (k, m), cell in sorted(grid.items()):
        summary = cell.summary
        rows.append((k, m, summary.mean * 1e3, summary.median * 1e3,
                     float(np.percentile(cell.times, 95)) * 1e3))
    emit("fig6_connection_time", render_table(
        ["k", "m", "mean (ms)", "median (ms)", "p95 (ms)"], rows))

    means = {key: cell.summary.mean for key, cell in grid.items()}
    # Shape 1: exponential growth in m (for every k, m=20 >> m=10).
    for k in DEFAULT_K_VALUES:
        assert means[(k, 20)] > means[(k, 10)] * 8
    # Shape 2: roughly linear growth in k at fixed (large) m.
    for m in (16, 20):
        ratio = means[(4, m)] / means[(1, m)]
        assert 2.0 < ratio < 8.0
    # Every cell produced a full CDF.
    for cell in grid.values():
        values, probs = cell.cdf()
        assert probs[-1] == pytest.approx(1.0)
