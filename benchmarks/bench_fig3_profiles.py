"""Figure 3: model-parameter estimation — w_av (3a) and α (3b)."""

import pytest

from benchmarks.conftest import emit
from repro.experiments.profiling_fig3 import (
    client_profile_table,
    server_stress_test,
)
from repro.experiments.report import render_table


def test_fig3a_client_profiles(benchmark):
    """Figure 3(a): hashes-per-400ms per client CPU, and w_av."""
    rows, w_av = benchmark(client_profile_table)
    emit("fig3a_client_profiles", render_table(
        ["cpu", "hash rate (/s)", "hashes in 400 ms"],
        [(r.name, r.hash_rate, r.hashes_in_budget) for r in rows])
        + f"\nw_av = {w_av:.0f}  (paper: 140630)")
    assert w_av == pytest.approx(140630.0)
    assert len(rows) == 3


def test_fig3b_server_stress_test(benchmark):
    """Figure 3(b): service rate µ and service parameter α vs load."""
    profile = benchmark.pedantic(
        server_stress_test,
        kwargs=dict(concurrency_levels=(1, 10, 50, 100, 200, 400, 600,
                                        800, 1000),
                    measure_seconds=6.0, service_rate=1100.0),
        rounds=1, iterations=1)
    alphas = profile.alpha_curve()
    emit("fig3b_server_stress", render_table(
        ["concurrent requests", "service rate (req/s)",
         "service parameter alpha"],
        [(c, r, a) for c, r, a in
         zip(profile.concurrency, profile.service_rate, alphas)])
        + f"\nmu = {profile.mu:.0f} (paper: ~1100); "
        f"alpha converges to {profile.alpha:.2f} (paper: 1.1)")
    # Shape: the served rate saturates near µ and α converges downward.
    assert profile.mu == pytest.approx(1100.0, rel=0.15)
    assert profile.alpha == pytest.approx(1.1, rel=0.15)
    assert alphas[0] > alphas[-1]
