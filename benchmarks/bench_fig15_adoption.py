"""Figure 15: partial-adoption study — % of client connections established
for each (attacker-solves, client-solves) combination."""

import numpy as np
import pytest

from benchmarks.conftest import bench_scenario_config, emit
from repro.experiments.exp5_adoption import adoption_study, grouped_series
from repro.experiments.report import render_table


@pytest.fixture(scope="module")
def outcomes():
    return adoption_study(bench_scenario_config())


def test_fig15_adoption(benchmark, outcomes):
    def extract():
        return [(label, o.mean_completion_percent)
                for label, o in outcomes.items()]

    rows = benchmark(extract)
    emit("fig15_adoption", render_table(
        ["scenario", "mean % connections established (attack window)"],
        rows))
    by_label = dict(rows)
    # Solving clients are (almost) always served, against either attacker.
    assert by_label["NA,SC"] > 60.0
    assert by_label["SA,SC"] > 60.0
    # A non-solving client against a non-solving attacker gets almost none.
    assert by_label["NA,NC"] < 25.0
    # ... and erratic-at-best service against a solving attacker.
    assert by_label["SA,NC"] <= by_label["SA,SC"]


def test_fig15_grouped_series(benchmark, outcomes):
    series = benchmark(grouped_series, outcomes)
    lines = []
    for label, (times, percent) in series.items():
        with np.errstate(invalid="ignore"):
            mean = float(np.nanmean(percent))
        lines.append((label, mean))
    emit("fig15_grouped", render_table(
        ["series", "mean % established (whole run)"], lines))
    assert set(series) == {"(NA, NC)", "(SA, NC)", "(*A, SC)"}
