"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures and prints
the corresponding rows (run with ``-s`` to see them inline; they are also
written under ``benchmarks/output/``). Scenario benches run at
``BENCH_TIME_SCALE`` of the paper's 600 s timeline — rates are
paper-identical, so shapes (who wins, by what factor) are preserved; see
DESIGN.md's scale-down convention.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.scenario import ScenarioConfig

#: 0.05 → 30 s simulated scenarios (attack 6 s–24 s).
BENCH_TIME_SCALE = float(os.environ.get("REPRO_BENCH_TIME_SCALE", "0.05"))

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def bench_scenario_config(**overrides) -> ScenarioConfig:
    """The §6 scenario at benchmark scale."""
    defaults = dict(time_scale=BENCH_TIME_SCALE)
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def emit(name: str, text: str) -> None:
    """Print a figure/table reproduction and persist it for EXPERIMENTS.md."""
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR
