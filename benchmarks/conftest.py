"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures and prints
the corresponding rows (run with ``-s`` to see them inline; they are also
written under ``benchmarks/output/``). Scenario benches run at
``BENCH_TIME_SCALE`` of the paper's 600 s timeline — rates are
paper-identical, so shapes (who wins, by what factor) are preserved; see
DESIGN.md's scale-down convention.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.scenario import ScenarioConfig

#: 0.05 → 30 s simulated scenarios (attack 6 s–24 s).
BENCH_TIME_SCALE = float(os.environ.get("REPRO_BENCH_TIME_SCALE", "0.05"))

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def bench_scenario_config(**overrides) -> ScenarioConfig:
    """The §6 scenario at benchmark scale."""
    defaults = dict(time_scale=BENCH_TIME_SCALE)
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def emit(name: str, text: str) -> None:
    """Print a figure/table reproduction and persist it for EXPERIMENTS.md."""
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


#: Manifests written this session, for the BENCH_session.json roll-up.
_MANIFESTS_WRITTEN = []


def record_manifest(name: str, result=None, extra=None,
                    runner_stats=None) -> pathlib.Path:
    """Persist a run manifest as ``benchmarks/output/BENCH_<name>.json``.

    Pass a :class:`~repro.experiments.scenario.ScenarioResult` or a
    :class:`~repro.experiments.summary.ScenarioSummary` to capture its
    counters, engine statistics and (if profiling was on) callback
    profile; pass a :class:`~repro.runner.RunnerStats` as *runner_stats*
    to persist the sweep's perf trajectory (per-cell wall time,
    events/sec, sim_wall_ratio, cache hits); *extra* merges additional
    keys in.
    """
    from repro.obs.manifest import (
        runner_payload,
        scenario_payload,
        write_manifest,
    )

    payload = scenario_payload(result) if result is not None else {}
    if runner_stats is not None:
        payload["runner"] = runner_payload(runner_stats)
    if extra:
        payload.update(extra)
    payload["name"] = name
    payload["bench_time_scale"] = BENCH_TIME_SCALE
    payload.setdefault("perf", _perf_block(payload))
    path = write_manifest(OUTPUT_DIR / f"BENCH_{name}.json", payload)
    _MANIFESTS_WRITTEN.append(name)
    return path


def _perf_block(payload) -> dict:
    """The manifest's top-level perf figures (the bench trajectory).

    Prefers the sweep runner's aggregate accounting; falls back to the
    single run's engine statistics.
    """
    runner = payload.get("runner")
    if runner:
        return {
            "wall_seconds": runner.get("wall_seconds"),
            "events_per_second": runner.get("events_per_second"),
            "sim_wall_ratio": runner.get("sim_wall_ratio"),
            "cells_run": runner.get("cells_run"),
            "cache_hits": runner.get("cache_hits"),
        }
    engine = payload.get("engine")
    if engine:
        wall = engine.get("wall_seconds") or 0.0
        events = engine.get("events_processed") or 0
        return {
            "wall_seconds": wall,
            "events_per_second": (events / wall) if wall > 0 else 0.0,
            "sim_wall_ratio": engine.get("sim_wall_ratio", 0.0),
        }
    return {}


def pytest_sessionfinish(session, exitstatus):
    """Roll up which manifests this benchmark session produced."""
    if not _MANIFESTS_WRITTEN:
        return
    from repro.obs.manifest import write_manifest

    write_manifest(OUTPUT_DIR / "BENCH_session.json", {
        "name": "session",
        "exit_status": int(exitstatus),
        "manifests": sorted(_MANIFESTS_WRITTEN),
    })


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR
