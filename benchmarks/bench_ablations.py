"""Ablation benches for the design choices DESIGN.md calls out."""

import pytest

from benchmarks.conftest import bench_scenario_config, emit
from repro.experiments.ablations import (
    controller_ablation,
    expiry_window_ablation,
    finite_n_convergence,
    syncache_ablation,
)
from repro.experiments.report import render_table


def test_ablation_opportunistic_controller(benchmark):
    """Opportunistic vs always-on challenges, with and without attack.

    The opportunistic controller's payoff: zero challenges (and full-speed
    handshakes) when there is no attack."""
    base = bench_scenario_config(time_scale=0.03)
    rows = benchmark.pedantic(controller_ablation, args=(base,),
                              rounds=1, iterations=1)
    emit("ablation_controller", render_table(
        ["controller", "attack", "client Mbps", "completion %",
         "challenges sent", "attacker cps"],
        [(r.controller, r.attack, r.client_mean_mbps,
          r.client_completion_percent, r.challenges_sent,
          r.attacker_established_rate) for r in rows]))
    by_key = {(r.controller, r.attack): r for r in rows}
    # No attack: opportunistic sends no challenges; always-on taxes every
    # handshake.
    assert by_key[("opportunistic", False)].challenges_sent == 0
    assert by_key[("always-on", False)].challenges_sent > 0
    # Under attack both protect.
    assert by_key[("opportunistic", True)].client_completion_percent > 40
    assert by_key[("always-on", True)].client_completion_percent > 40


def test_ablation_expiry_window(benchmark):
    """Replay defence: windows shorter than the replay delay reject all."""
    rows = benchmark.pedantic(
        expiry_window_ablation,
        kwargs=dict(windows=(0.5, 2.0, 8.0, 32.0), replay_delay=4.0),
        rounds=1, iterations=1)
    emit("ablation_expiry", render_table(
        ["window (s)", "replays", "accepted", "acceptance rate"],
        [(r.window, r.replayed, r.accepted, r.acceptance_rate)
         for r in rows]))
    by_window = {r.window: r for r in rows}
    assert by_window[0.5].accepted == 0
    assert by_window[2.0].accepted == 0
    assert by_window[8.0].accepted > 0   # replay within window succeeds...
    # ...which is why the paper pairs expiry with per-flow binding: a
    # replayed solution occupies at most one queue slot.


def test_ablation_syncache_churn(benchmark):
    """§2.1: SYN caches churn under rates beyond their capacity."""
    rows = benchmark.pedantic(syncache_ablation, rounds=1, iterations=1)
    emit("ablation_syncache", render_table(
        ["capacity", "attack rate (pps)", "evictions",
         "benign survival fraction"],
        [(r.capacity, r.attack_rate, r.evictions, r.survival_fraction)
         for r in rows]))
    # Bigger caches survive a given rate better; higher rates hurt.
    small_fast = [r for r in rows
                  if r.capacity == min(x.capacity for x in rows)
                  and r.attack_rate == max(x.attack_rate for x in rows)][0]
    big_slow = [r for r in rows
                if r.capacity == max(x.capacity for x in rows)
                and r.attack_rate == min(x.attack_rate for x in rows)][0]
    assert big_slow.survival_fraction >= small_fast.survival_fraction


def test_ablation_synack_retries(benchmark):
    """DESIGN.md's protection-locking analysis: short half-open lifetimes
    let strands expire and leak unchallenged attackers."""
    from dataclasses import replace

    from repro.experiments.scenario import Scenario
    from repro.tcp.constants import DefenseMode

    def run(retries: int):
        config = bench_scenario_config(time_scale=0.03,
                                       defense=DefenseMode.PUZZLES)
        scenario = Scenario(config)
        result = scenario.build()
        result.server_app.listener.config.synack_retries = retries
        from repro.experiments.ablations import _run_built

        _run_built(scenario, result)
        return result.attacker_steady_state_rate()

    def both():
        return run(1), run(5)

    short, linux_default = benchmark.pedantic(both, rounds=1, iterations=1)
    emit("ablation_synack_retries", render_table(
        ["synack_retries", "half-open lifetime", "attacker steady cps"],
        [(1, "~3 s", short), (5, "~63 s (Linux default)",
                              linux_default)]))
    assert linux_default <= short + 5.0


def test_ablation_parameter_sensitivity(benchmark):
    """Operator guidance: how wrong can the §4.3 estimates be?"""
    from repro.core.sensitivity import (
        alpha_misestimation_sweep,
        safe_estimate_band,
        w_av_misestimation_sweep,
    )

    def run():
        return (w_av_misestimation_sweep(),
                alpha_misestimation_sweep(),
                safe_estimate_band())

    w_rows, a_rows, band = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_sensitivity",
         "w_av misestimation (tune for factor x true):\n"
         + render_table(
             ["factor", "(k, m)", "feasible", "x_bar", "bot solves/s"],
             [(r.estimate_factor, f"({r.params.k}, {r.params.m})",
               r.feasible, r.total_rate, r.attacker_solves_per_second)
              for r in w_rows])
         + "\n\nalpha misestimation:\n"
         + render_table(
             ["factor", "(k, m)", "feasible", "x_bar", "bot solves/s"],
             [(r.estimate_factor, f"({r.params.k}, {r.params.m})",
               r.feasible, r.total_rate, r.attacker_solves_per_second)
              for r in a_rows])
         + f"\n\nsafe w_av over-estimation band: {band[0]:.2f}x to "
         f"{band[1]:.2f}x")
    # The asymmetry: overestimating w_av 4x ejects the clientele;
    # misestimating alpha 4x either way never does.
    assert not [r for r in w_rows if r.estimate_factor == 4.0][0].feasible
    assert all(r.feasible for r in a_rows)
