"""Figure 12: client-throughput boxplots across puzzle difficulties under
the connection flood (the Nash-equilibrium-strategy experiment)."""

import pytest

from benchmarks.conftest import bench_scenario_config, emit, record_manifest
from repro.experiments.exp3_nash import (
    DEFAULT_K_VALUES,
    DEFAULT_M_VALUES,
    difficulty_sweep_report,
    in_nash_band,
    rate_limiting_cells,
    stability_ranking,
)
from repro.experiments.report import render_table

#: A scenario per cell is expensive; the sweep runs at a reduced scale.
SWEEP_SCALE = 0.03


@pytest.fixture(scope="module")
def report():
    base = bench_scenario_config(time_scale=SWEEP_SCALE)
    return difficulty_sweep_report(base=base)


@pytest.fixture(scope="module")
def grid(report):
    return report[0]


def test_fig12_sweep_runner_accounting(report):
    """The 24-cell sweep ran through the runner; persist its wall-time /
    events-per-second trajectory as ``BENCH_fig12_sweep.json``."""
    grid, stats = report
    assert stats.cells_total == len(grid) == \
        len(DEFAULT_K_VALUES) * len(DEFAULT_M_VALUES)
    assert stats.cells_run + stats.cache_hits == stats.cells_total
    assert stats.events_processed > 0
    record_manifest("fig12_sweep", runner_stats=stats)
    emit("fig12_sweep_runner", stats.render())


def test_fig12_throughput_boxplots(benchmark, grid):
    def extract():
        rows = []
        for (k, m), cell in sorted(grid.items()):
            s = cell.throughput
            rows.append((k, m, s.mean, s.std, s.q1, s.median, s.q3,
                         cell.attacker_steady_rate))
        return rows

    rows = benchmark(extract)
    emit("fig12_difficulty_boxplots", render_table(
        ["k", "m", "thr mean (Mbps)", "std", "q1", "median", "q3",
         "attacker steady cps"], rows))

    # §6.3's finding 1: m below ~12 fails to slow the attackers.
    easy = [cell for (k, m), cell in grid.items() if m == 12]
    hard = [cell for (k, m), cell in grid.items() if m >= 17]
    mean_easy = sum(c.attacker_steady_rate for c in easy) / len(easy)
    mean_hard = sum(c.attacker_steady_rate for c in hard) / len(hard)
    assert mean_hard < mean_easy / 3

    # §6.3's finding 2: among the cells that actually contain the attack,
    # the best client service sits in the Nash price band (the paper
    # itself notes (2,16) edges out (2,17) on raw throughput — the band,
    # not one rounding, is the reproduction target).
    contained = rate_limiting_cells(grid, max_attacker_cps=80.0)
    assert (2, 17) in contained
    best_key = max(contained, key=lambda key:
                   contained[key].throughput.mean)
    assert in_nash_band(*best_key), best_key
    # ...and over-pricing visibly strangles throughput: the band's best
    # beats every cell at >= 4x the Nash price.
    band_best = contained[best_key].throughput.mean
    for (k, m), cell in grid.items():
        from repro.puzzles.params import PuzzleParams

        if PuzzleParams(k=k, m=m).expected_hashes >= 4 * 66_966:
            assert cell.throughput.mean < band_best


def test_fig12_rate_limits_all_users(benchmark, grid):
    """§6.2's companion claim: at Nash difficulty every user is limited to
    a few requests/second (hash_rate / ℓ)."""
    cell = grid[(2, 17)]

    def compute():
        return cell.attacker_measured_rate, cell.attacker_steady_rate

    measured, steady = benchmark(compute)
    emit("fig12_nash_rate_limit",
         f"measured attack pps: {measured:.0f}; "
         f"steady established cps: {steady:.1f}")
    assert steady < measured / 20.0
