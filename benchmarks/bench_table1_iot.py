"""Table 1: IoT device profiles, plus the Experiment 6 claim that puzzles
blunt IoT-based connection floods."""

import pytest

from benchmarks.conftest import bench_scenario_config, emit
from repro.experiments.exp6_iot import iot_botnet_scenario, \
    iot_profile_table
from repro.experiments.report import render_table


def test_table1_iot_profiles(benchmark):
    rows = benchmark(iot_profile_table)
    emit("table1_iot_profiles", render_table(
        ["device", "avg hashing rate (/s)", "hashes in 400 ms",
         "paper hashes in 400 ms", "Nash solves/s"],
        [(r.device, r.average_hashing_rate, r.hashes_in_400ms,
          r.paper_hashes_in_400ms, r.nash_solves_per_second)
         for r in rows]))
    assert [r.device for r in rows] == ["D1", "D2", "D3", "D4"]
    for row in rows:
        assert row.hashes_in_400ms == pytest.approx(
            row.paper_hashes_in_400ms, rel=0.05)
        # The section's point: a Pi cannot complete even one Nash-difficulty
        # handshake per second — useless as a connection-flood bot.
        assert row.nash_solves_per_second < 1.0


def test_exp6_iot_botnet_scenario(benchmark):
    result = benchmark.pedantic(
        iot_botnet_scenario, args=(bench_scenario_config(),),
        rounds=1, iterations=1)
    emit("exp6_iot_botnet",
         f"measured attack pps: {result.attacker_measured_rate():.0f}\n"
         f"effective cps (whole attack): "
         f"{result.attacker_established_rate():.1f}\n"
         f"effective cps (steady): "
         f"{result.attacker_steady_state_rate():.1f}\n"
         f"client completion %: "
         f"{result.client_completion_percent():.1f}")
    # Pi bots at Nash difficulty: the steady-state flood is negligible and
    # clients keep getting served.
    assert result.attacker_steady_state_rate() < 40.0
    assert result.client_completion_percent() > 60.0
