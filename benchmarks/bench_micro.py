"""Micro-benchmarks of the substrate hot paths.

Not paper figures — these keep the simulator's performance visible (§7's
solution-flood analysis turns on the server's hashes/second, benchmarked
here for real).
"""

import random

import pytest

from repro.crypto.hashcash import find_partial_preimage
from repro.crypto.sha256 import sha256
from repro.puzzles.codec import (
    decode_challenge,
    decode_solution,
    encode_challenge,
    encode_solution,
)
from repro.puzzles.juels import (
    FlowBinding,
    JuelsBrainardScheme,
    ModeledSolver,
    RealSolver,
)
from repro.puzzles.params import PuzzleParams
from repro.sim.engine import Engine

BINDING = FlowBinding(src_ip=0x0A000002, dst_ip=0x0A000001,
                      src_port=43210, dst_port=80, isn=7)


def test_sha256_rate(benchmark):
    """Raw hash rate of this machine (cf. Figure 3(a) and §7's 10.8 M/s)."""
    payload = b"\x5a" * 64
    benchmark(sha256, payload)


def test_challenge_generation(benchmark):
    """g(p) = 1 hash: challenge generation must be cheap (§4.1)."""
    scheme = JuelsBrainardScheme(mode="real")
    params = PuzzleParams(k=2, m=17)
    benchmark(scheme.make_challenge, params, BINDING, 1.0)


def test_real_solve_m12(benchmark):
    """Actual brute force at m=12 (≈2048 expected hashes per solution)."""
    scheme = JuelsBrainardScheme(mode="real")
    challenge = scheme.make_challenge(PuzzleParams(k=1, m=12), BINDING,
                                      1.0)
    rng = random.Random(5)
    benchmark.pedantic(RealSolver().solve, args=(challenge, rng),
                       rounds=3, iterations=1)


def test_real_verification(benchmark):
    """d(p) = 1 + k/2 hashes: verification must stay cheap (§4.1)."""
    scheme = JuelsBrainardScheme(mode="real")
    params = PuzzleParams(k=2, m=10)
    challenge = scheme.make_challenge(params, BINDING, 1.0)
    solution = RealSolver().solve(challenge, random.Random(5))
    result = benchmark(scheme.verify, solution, BINDING, 1.5, params)
    assert result.ok


def test_modeled_solve(benchmark):
    """The simulator's per-connection solve cost (sampling, no hashing)."""
    scheme = JuelsBrainardScheme(mode="modeled")
    challenge = scheme.make_challenge(PuzzleParams(k=2, m=17), BINDING,
                                      1.0)
    rng = random.Random(5)
    benchmark(ModeledSolver().solve, challenge, rng)


def test_codec_roundtrip(benchmark):
    scheme = JuelsBrainardScheme(mode="modeled")
    params = PuzzleParams(k=2, m=17)
    challenge = scheme.make_challenge(params, BINDING, 1.0)
    solution = ModeledSolver().solve(challenge, random.Random(5))

    def roundtrip():
        blob = encode_challenge(challenge)
        decode_challenge(blob, BINDING)
        sblob = encode_solution(solution)
        decode_solution(sblob, params)

    benchmark(roundtrip)


def test_handshake_throughput(benchmark):
    """Stock three-way handshakes/second end to end (tracing off).

    The observability acceptance bar: with tracepoints at their default
    (disabled), the counters-only instrumentation must cost the hot path
    <5% — this benchmark is where that shows up.
    """
    from repro.hosts.cpu import CPU_CATALOG, SERVER_CPU
    from repro.hosts.host import Host
    from repro.net.addresses import AddressAllocator
    from repro.net.network import Network
    from repro.net.topology import deter_topology
    from repro.sim.rng import RngStreams

    def run_handshakes():
        engine = Engine()
        streams = RngStreams(7)
        network = Network(engine, deter_topology(1, 0))
        allocator = AddressAllocator()
        server = Host("server", allocator.allocate(), engine, network,
                      SERVER_CPU, streams.get("server"))
        client = Host("client0", allocator.allocate(), engine, network,
                      next(iter(CPU_CATALOG.values())),
                      streams.get("client0"))
        listener = server.tcp.listen(80)
        for i in range(200):
            engine.schedule_at(i * 0.001, client.tcp.connect,
                               server.address, 80)
        engine.run(until=5.0)
        return listener.stats.established_total()

    established = benchmark(run_handshakes)
    assert established == 200


def test_engine_event_throughput(benchmark):
    """Events/second of the DES core (drives scenario wall time)."""

    def run_10k():
        engine = Engine()

        def chain(remaining: int):
            if remaining:
                engine.schedule(0.001, chain, remaining - 1)

        chain(10_000)
        engine.run()
        return engine.events_processed

    count = benchmark(run_10k)
    assert count == 10_000


def test_brute_force_hash_rate(benchmark):
    """Sustained hashcash search rate (the attacker's real-world cost)."""
    puzzle = b"\x42" * 8

    def solve():
        return find_partial_preimage(puzzle, 0, 10, 8)

    solution, attempts = benchmark(solve)
    assert attempts >= 1
