"""Micro-benchmarks of the substrate hot paths.

Not paper figures — these keep the simulator's performance visible (§7's
solution-flood analysis turns on the server's hashes/second, benchmarked
here for real).

The substrate workloads (timer churn, codec roundtrips, syncache churn,
packet construction, histogram recording, engine dispatch) are defined
once in :mod:`repro.obs.microbench` and shared with ``tcp-puzzles perf
micro``: the pytest-benchmark tests below time the *registered* workload
functions, and :func:`test_micro_manifests` runs the whole registry
through the self-timing harness so the numbers land as versioned
``benchmarks/output/BENCH_micro_*.json`` manifests instead of staying
pytest-only terminal output. The raw-crypto benchmarks (hash rate,
real solve/verify) stay local — they measure the machine, not the
package's hot paths.
"""

import random

import pytest

from repro.crypto.hashcash import find_partial_preimage
from repro.crypto.sha256 import sha256
from repro.obs.microbench import (
    REGISTRY,
    render_results,
    run_micro,
    self_check,
    write_micro_manifests,
)
from repro.puzzles.juels import (
    FlowBinding,
    JuelsBrainardScheme,
    RealSolver,
)
from repro.puzzles.params import PuzzleParams
from repro.sim.engine import Engine

BINDING = FlowBinding(src_ip=0x0A000002, dst_ip=0x0A000001,
                      src_port=43210, dst_port=80, isn=7)

#: pytest-benchmark iteration counts per registered workload — small
#: enough to keep the benchmark session quick; ``perf micro`` runs the
#: full default_iterations.
BENCH_ITERATIONS = {
    "timer_churn": 20_000,
    "engine_dispatch": 30_000,
    "puzzle_codec": 5_000,
    "syncache_churn": 10_000,
    "packet_churn": 5_000,
    "hist_record": 40_000,
}


# ----------------------------------------------------------------------
# Raw crypto (machine-level rates; not registry workloads)
# ----------------------------------------------------------------------
def test_sha256_rate(benchmark):
    """Raw hash rate of this machine (cf. Figure 3(a) and §7's 10.8 M/s)."""
    payload = b"\x5a" * 64
    benchmark(sha256, payload)


def test_challenge_generation(benchmark):
    """g(p) = 1 hash: challenge generation must be cheap (§4.1)."""
    scheme = JuelsBrainardScheme(mode="real")
    params = PuzzleParams(k=2, m=17)
    benchmark(scheme.make_challenge, params, BINDING, 1.0)


def test_real_solve_m12(benchmark):
    """Actual brute force at m=12 (≈2048 expected hashes per solution)."""
    scheme = JuelsBrainardScheme(mode="real")
    challenge = scheme.make_challenge(PuzzleParams(k=1, m=12), BINDING,
                                      1.0)
    rng = random.Random(5)
    benchmark.pedantic(RealSolver().solve, args=(challenge, rng),
                       rounds=3, iterations=1)


def test_real_verification(benchmark):
    """d(p) = 1 + k/2 hashes: verification must stay cheap (§4.1)."""
    scheme = JuelsBrainardScheme(mode="real")
    params = PuzzleParams(k=2, m=10)
    challenge = scheme.make_challenge(params, BINDING, 1.0)
    solution = RealSolver().solve(challenge, random.Random(5))
    result = benchmark(scheme.verify, solution, BINDING, 1.5, params)
    assert result.ok


def test_brute_force_hash_rate(benchmark):
    """Sustained hashcash search rate (the attacker's real-world cost)."""
    puzzle = b"\x42" * 8

    def solve():
        return find_partial_preimage(puzzle, 0, 10, 8)

    solution, attempts = benchmark(solve)
    assert attempts >= 1


# ----------------------------------------------------------------------
# Registered substrate workloads, timed by pytest-benchmark
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(BENCH_ITERATIONS))
def test_registered_workload(benchmark, name):
    """pytest-benchmark view of each registry workload (same code path
    ``perf micro`` manifests; numbers here are for interactive runs)."""
    bench = REGISTRY[name]
    counters = benchmark(bench.fn, BENCH_ITERATIONS[name])
    assert counters, f"workload {name} returned no work counters"


def test_handshake_throughput(benchmark):
    """Stock three-way handshakes/second end to end (tracing off).

    The observability acceptance bar: with tracepoints at their default
    (disabled), the counters-only instrumentation must cost the hot path
    <5% — this benchmark is where that shows up.
    """
    from repro.hosts.cpu import CPU_CATALOG, SERVER_CPU
    from repro.hosts.host import Host
    from repro.net.addresses import AddressAllocator
    from repro.net.network import Network
    from repro.net.topology import deter_topology
    from repro.sim.rng import RngStreams

    def run_handshakes():
        engine = Engine()
        streams = RngStreams(7)
        network = Network(engine, deter_topology(1, 0))
        allocator = AddressAllocator()
        server = Host("server", allocator.allocate(), engine, network,
                      SERVER_CPU, streams.get("server"))
        client = Host("client0", allocator.allocate(), engine, network,
                      next(iter(CPU_CATALOG.values())),
                      streams.get("client0"))
        listener = server.tcp.listen(80)
        for i in range(200):
            engine.schedule_at(i * 0.001, client.tcp.connect,
                               server.address, 80)
        engine.run(until=5.0)
        return listener.stats.established_total()

    established = benchmark(run_handshakes)
    assert established == 200


# ----------------------------------------------------------------------
# The manifest leg: registry -> BENCH_micro_*.json
# ----------------------------------------------------------------------
def test_micro_manifests(output_dir):
    """Run the full registry through the self-timing harness and persist
    one ``BENCH_micro_<name>.json`` per benchmark — the files the
    ``tcp-puzzles perf compare`` / CI gate diff."""
    from benchmarks.conftest import emit

    results = run_micro(repeats=3, scale=0.25)
    for result in results:
        self_check(result)
    paths = write_micro_manifests(results, output_dir)
    assert len(paths) == len(REGISTRY)
    assert any(path.name == "BENCH_micro_timer_churn.json"
               for path in paths)
    emit("micro_suite", render_results(results))
