"""Figure 7: client/server throughput during a spoofed SYN flood, under
no defense / SYN cookies / puzzles (1,8) / puzzles (2,17)."""

import pytest

from benchmarks.conftest import bench_scenario_config, emit, record_manifest
from repro.experiments.exp2_floods import run_syn_flood_suite
from repro.experiments.report import render_table
from repro.obs import drop_attribution, established_total, hub_for


@pytest.fixture(scope="module")
def suite():
    return run_syn_flood_suite(bench_scenario_config(attack_style="syn"))


def test_fig7_syn_flood_throughput(benchmark, suite):
    def extract():
        rows = []
        for label, result in suite.items():
            rows.append((
                label,
                result.client_throughput_before_attack().mean,
                result.client_throughput_during_attack().mean,
                result.server_throughput_during_attack().mean,
                result.client_completion_percent()))
        return rows

    rows = benchmark(extract)
    emit("fig7_syn_flood", render_table(
        ["defense", "client Mbps (pre)", "client Mbps (attack)",
         "server Mbps (attack)", "client completion %"], rows))

    by_label = {row[0]: row for row in rows}
    pre = by_label["nodefense"][1]
    # No defense collapses; cookies and easy puzzles hold; Nash puzzles
    # reduce but preserve service — the paper's Figure 7 story.
    assert by_label["nodefense"][2] < pre * 0.35
    assert by_label["cookies"][2] > pre * 0.7
    assert by_label["challenges-m8"][2] > pre * 0.7
    assert 0 < by_label["challenges-m17"][2] < pre
    assert by_label["challenges-m17"][4] > 90.0


def test_fig7_counters_attribute_every_drop(suite):
    """Observability acceptance: the SNMP counters account for every
    refused/failed handshake exactly once, and agree with the listener's
    own statistics. Also persists a ``BENCH_fig7_*.json`` run manifest
    per defense configuration."""
    for label, result in suite.items():
        server = hub_for(result.engine).counters.scope("server")
        stats = result.listener_stats

        # Counter/stat identities (one increment site per event).
        assert server.get("SynsRecv") == stats.syns_received
        assert server.get("SynAcksSent") == stats.synacks_plain
        assert server.get("PuzzlesIssued") == stats.synacks_challenge
        assert server.get("SynCookiesSent") == stats.synacks_cookie
        assert server.get("SynCookiesFailed") == stats.cookies_invalid
        assert server.get("ListenOverflows") == stats.syn_drops_queue_full
        assert server.get("HalfOpenExpired") == stats.half_open_expired
        assert server.get("AcceptOverflows") == stats.accept_drops_full
        assert (server.get("DeceptionAcksIgnored")
                == stats.acks_ignored_queue_full)
        assert (server.get("PuzzlesRejected") + server.get("ReplaysBlocked")
                + server.get("PlainAcksIgnored")
                == stats.solutions_invalid)
        assert established_total(server) == stats.established_total()

        # Exactly-one-cause attribution: the disjoint cause counters sum
        # to the same total the listener's own books arrive at.
        drops = drop_attribution(server)
        assert sum(drops.values()) == (
            stats.syn_drops_queue_full + stats.half_open_expired
            + stats.accept_drops_full + stats.acks_ignored_queue_full
            + stats.solutions_invalid + stats.cookies_invalid
            + server.get("SynCacheEvictions")
            + server.get("SynCacheMisses"))

        record_manifest(f"fig7_{label}", result=result)


def test_fig7_sparkline_challenged_fraction(benchmark, suite):
    """The sparkline: during the attack most SYN-ACKs carry challenges."""
    result = suite["challenges-m17"]

    def fractions():
        stats = result.listener_stats
        total = stats.synacks_plain + stats.synacks_challenge
        return stats.synacks_challenge / total

    challenged = benchmark(fractions)
    emit("fig7_sparkline",
         f"challenged SYN-ACK fraction (whole run): {challenged:.3f}")
    assert challenged > 0.5
