"""Figure 7: client/server throughput during a spoofed SYN flood, under
no defense / SYN cookies / puzzles (1,8) / puzzles (2,17)."""

import pytest

from benchmarks.conftest import bench_scenario_config, emit, record_manifest
from repro.experiments.exp2_floods import run_syn_flood_suite_report
from repro.experiments.report import render_table
from repro.obs import TelemetrySpec, drop_attribution, established_total


@pytest.fixture(scope="module")
def report():
    # Streaming telemetry rides the flood benchmark: the manifests gain
    # a deterministic "timeseries" block (rates/gauges per defense) and
    # a bounded-memory per-source "attribution" block.
    return run_syn_flood_suite_report(
        bench_scenario_config(attack_style="syn",
                              telemetry=TelemetrySpec(attribution=True)))


@pytest.fixture(scope="module")
def suite(report):
    return report[0]


def test_fig7_syn_flood_throughput(benchmark, suite):
    def extract():
        rows = []
        for label, result in suite.items():
            rows.append((
                label,
                result.client_throughput_before_attack().mean,
                result.client_throughput_during_attack().mean,
                result.server_throughput_during_attack().mean,
                result.client_completion_percent()))
        return rows

    rows = benchmark(extract)
    emit("fig7_syn_flood", render_table(
        ["defense", "client Mbps (pre)", "client Mbps (attack)",
         "server Mbps (attack)", "client completion %"], rows))

    by_label = {row[0]: row for row in rows}
    pre = by_label["nodefense"][1]
    # No defense collapses; cookies and easy puzzles hold; Nash puzzles
    # reduce but preserve service — the paper's Figure 7 story.
    assert by_label["nodefense"][2] < pre * 0.35
    assert by_label["cookies"][2] > pre * 0.7
    assert by_label["challenges-m8"][2] > pre * 0.7
    assert 0 < by_label["challenges-m17"][2] < pre
    assert by_label["challenges-m17"][4] > 90.0


def test_fig7_counters_attribute_every_drop(report):
    """Observability acceptance: the SNMP counters account for every
    refused/failed handshake exactly once, and agree with the listener's
    own statistics. Also persists a ``BENCH_fig7_*.json`` run manifest
    per defense configuration, carrying the sweep runner's accounting."""
    suite, runner_stats = report
    for label, result in suite.items():
        # Summaries carry the counter snapshot, not the live scope.
        server = result.counters["server"]
        stats = result.listener_stats

        def count(name):
            return server.get(name, 0)

        # Counter/stat identities (one increment site per event).
        assert count("SynsRecv") == stats.syns_received
        assert count("SynAcksSent") == stats.synacks_plain
        assert count("PuzzlesIssued") == stats.synacks_challenge
        assert count("SynCookiesSent") == stats.synacks_cookie
        assert count("SynCookiesFailed") == stats.cookies_invalid
        assert count("ListenOverflows") == stats.syn_drops_queue_full
        assert count("HalfOpenExpired") == stats.half_open_expired
        assert count("AcceptOverflows") == stats.accept_drops_full
        assert (count("DeceptionAcksIgnored")
                == stats.acks_ignored_queue_full)
        assert (count("PuzzlesRejected") + count("ReplaysBlocked")
                + count("PlainAcksIgnored")
                == stats.solutions_invalid)
        assert established_total(server) == stats.established_total()

        # Exactly-one-cause attribution: the disjoint cause counters sum
        # to the same total the listener's own books arrive at.
        drops = drop_attribution(server)
        assert sum(drops.values()) == (
            stats.syn_drops_queue_full + stats.half_open_expired
            + stats.accept_drops_full + stats.acks_ignored_queue_full
            + stats.solutions_invalid + stats.cookies_invalid
            + count("SynCacheEvictions")
            + count("SynCacheMisses"))

        record_manifest(f"fig7_{label}", result=result,
                        runner_stats=runner_stats)


def test_fig7_manifests_carry_streaming_telemetry(suite):
    """Telemetry acceptance: every fig7 defense summary carries the
    sim-time series (so its manifest gains the ``timeseries`` block) and
    the bounded-memory per-source attribution digest."""
    for label, result in suite.items():
        assert result.timeseries, label
        syn_rate = result.timeseries.get("rate.SynsRecv")
        assert syn_rate is not None and len(syn_rate) > 0
        # Samples land on exact cadence multiples (mergeable alignment).
        cadence = syn_rate.cadence
        for t, _value in syn_rate.samples():
            assert t == round(t / cadence) * cadence
        assert result.attribution is not None
        assert result.attribution["syns"]["top"], label


def test_fig7_sparkline_challenged_fraction(benchmark, suite):
    """The sparkline: during the attack most SYN-ACKs carry challenges."""
    result = suite["challenges-m17"]

    def fractions():
        stats = result.listener_stats
        total = stats.synacks_plain + stats.synacks_challenge
        return stats.synacks_challenge / total

    challenged = benchmark(fractions)
    emit("fig7_sparkline",
         f"challenged SYN-ACK fraction (whole run): {challenged:.3f}")
    assert challenged > 0.5
