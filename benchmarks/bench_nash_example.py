"""§4.4's worked example and Theorem 1's asymptotics (Eq. 6/17/18)."""

import pytest

from benchmarks.conftest import emit
from repro.core.equilibrium import ClientGame
from repro.core.stackelberg import StackelbergGame
from repro.core.theorem import equilibrium_difficulty, nash_difficulty
from repro.experiments.ablations import finite_n_convergence
from repro.experiments.report import render_table


def test_eq6_worked_example(benchmark):
    """w_av = 140630, α = 1.1 → ℓ* ≈ 66967 → (k*, m*) = (2, 17)."""
    params = benchmark(nash_difficulty, 140630.0, 1.1)
    target = equilibrium_difficulty(140630.0, 1.1)
    emit("eq6_nash_example", render_table(
        ["w_av", "alpha", "l* = w_av/(alpha+1)", "k*", "m*",
         "l(p*) hashes"],
        [(140630, 1.1, target, params.k, params.m,
          params.expected_hashes)]))
    assert (params.k, params.m) == (2, 17)


def test_eq17_finite_n_convergence(benchmark):
    """The exact finite-N optimum approaches w_av/(α+1) as N grows."""
    rows = benchmark.pedantic(finite_n_convergence, rounds=1, iterations=1)
    emit("eq17_convergence", render_table(
        ["N", "exact l*", "asymptotic l*", "relative gap"],
        [(r.n_users, r.exact_difficulty, r.asymptotic_difficulty,
          r.relative_gap) for r in rows]))
    gaps = [r.relative_gap for r in rows]
    assert all(a >= b for a, b in zip(gaps, gaps[1:]))
    assert gaps[-1] < 0.01


def test_provider_integer_optimum(benchmark):
    """Exact integer (k, m) optimisation for the testbed population."""
    game = ClientGame.homogeneous(15, 140630.0, 1100.0)
    provider = StackelbergGame(game)
    best = benchmark.pedantic(provider.solve_integer, rounds=1,
                              iterations=1)
    relaxed = provider.solve_relaxed()
    emit("provider_integer_optimum", render_table(
        ["solution", "difficulty (hashes)", "x_bar (req/s)", "objective"],
        [("continuous", relaxed.difficulty, relaxed.total_rate,
          relaxed.objective),
         (f"integer (k={best.params.k}, m={best.params.m})",
          best.difficulty, best.total_rate, best.objective)]))
    assert best.params is not None
