"""The reproduction gate as a benchmark: every claim, one run."""

import pytest

from benchmarks.conftest import emit
from repro.experiments.validation import run_validation


def test_reproduction_gate(benchmark):
    card = benchmark.pedantic(run_validation, rounds=1, iterations=1)
    emit("reproduction_gate", card.render())
    assert card.all_passed, card.render()
