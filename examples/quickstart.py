#!/usr/bin/env python3
"""Quickstart: pick a puzzle difficulty and watch it protect a server.

Walks the paper's workflow end to end:

1. profile the clientele  → w_av   (Figure 3a procedure)
2. profile the server     → α      (Figure 3b procedure, closed form here)
3. Theorem 1              → (k*, m*)
4. simulate a connection flood with and without the puzzles and compare.

Run:  python examples/quickstart.py
"""

from repro.core.theorem import equilibrium_difficulty, nash_difficulty
from repro.experiments.report import render_table
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.hosts.cpu import CPU_CATALOG, catalog_w_av
from repro.tcp.constants import DefenseMode


def main() -> None:
    # ------------------------------------------------------------------
    # 1–2. Model parameters (the §4.3 estimation procedures).
    # ------------------------------------------------------------------
    w_av = catalog_w_av()       # hashes a typical client spends in 400 ms
    alpha = 1.1                 # the paper's stress-tested service param
    print("clientele profile (Figure 3a):")
    print(render_table(
        ["cpu", "hash rate (/s)"],
        [(p.name, p.hash_rate) for p in CPU_CATALOG.values()]))
    print(f"w_av = {w_av:.0f} hashes, alpha = {alpha}\n")

    # ------------------------------------------------------------------
    # 3. The Nash difficulty (Theorem 1 + the §4.4 rounding rule).
    # ------------------------------------------------------------------
    target = equilibrium_difficulty(w_av, alpha)
    params = nash_difficulty(w_av, alpha)
    print(f"Theorem 1: l* = w_av/(alpha+1) = {target:.0f} hashes")
    print(f"practical parameters: (k*, m*) = ({params.k}, {params.m}) "
          f"-> l(p*) = {params.expected_hashes:.0f} expected hashes\n")

    # ------------------------------------------------------------------
    # 4. Simulate the §6 connection flood, undefended vs protected.
    #    (time_scale 0.05: a 30 s rendition of the paper's 600 s run.)
    # ------------------------------------------------------------------
    rows = []
    for defense in (DefenseMode.NONE, DefenseMode.PUZZLES):
        config = ScenarioConfig(time_scale=0.05, defense=defense,
                                puzzle_params=params,
                                attack_style="connect")
        print(f"simulating {defense.value!r} ...")
        result = Scenario(config).run()
        rows.append((
            defense.value,
            f"{result.client_throughput_before_attack().mean:.2f}",
            f"{result.client_throughput_during_attack().mean:.2f}",
            f"{result.client_completion_percent():.1f}",
        ))
    print()
    print(render_table(
        ["defense", "client Mbps (before)", "client Mbps (attack)",
         "client completion %"], rows))
    print("\nWith puzzles at the Nash difficulty the flood is rate-limited"
          "\nto the bots' own CPUs while solving clients keep connecting.")


if __name__ == "__main__":
    main()
