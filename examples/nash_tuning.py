#!/usr/bin/env python3
"""Explore the game theory: how the Nash difficulty responds to the
server's provisioning and the clients' hardware.

Reproduces the §4.2 analysis numerically:

* a well-provisioned server (α > 1) asks for easier puzzles;
* an overloaded server (α < 1) pushes the price toward w_av;
* heterogeneous clients: low-valuation users drop out as difficulty rises
  (the participation condition, Eq. 11);
* the provider's revenue-style objective Ĩ(ℓ) = ℓ·x̄*(ℓ) is single-peaked.

Run:  python examples/nash_tuning.py
"""

import numpy as np

from repro.core.equilibrium import ClientGame
from repro.core.stackelberg import StackelbergGame
from repro.core.theorem import equilibrium_difficulty, nash_difficulty
from repro.experiments.report import render_table
from repro.hosts.cpu import CPU_CATALOG, IOT_CATALOG


def alpha_sweep() -> None:
    print("## The provisioning trade-off (§4.2)")
    w_av = 140630.0
    rows = []
    for alpha in (0.25, 0.5, 1.0, 1.1, 2.0, 4.0):
        params = nash_difficulty(w_av, alpha)
        rows.append((alpha, equilibrium_difficulty(w_av, alpha),
                     f"(k={params.k}, m={params.m})",
                     f"{equilibrium_difficulty(w_av, alpha) / w_av:.0%}"))
    print(render_table(
        ["alpha (mu/N)", "l* (hashes)", "(k*, m*)", "l*/w_av"], rows))
    print("Overloaded servers (alpha<1) charge ~w_av; well-provisioned"
          " ones ask for much less.\n")


def clientele_sweep() -> None:
    print("## The clientele trade-off")
    rows = []
    for name, profile in {**CPU_CATALOG, **IOT_CATALOG}.items():
        w_av = profile.hash_rate * 0.4
        params = nash_difficulty(w_av, 1.1)
        rows.append((name, f"{profile.hash_rate:.0f}", f"{w_av:.0f}",
                     f"(k={params.k}, m={params.m})",
                     f"{params.expected_hashes / profile.hash_rate:.2f}"))
    print(render_table(
        ["clientele", "hash rate (/s)", "w_av", "(k*, m*)",
         "solve time (s)"], rows))
    print("Slower clienteles get proportionally easier puzzles — the"
          " solve time stays near the 400 ms budget.\n")


def dropout_demo() -> None:
    print("## Participation and dropout (Eq. 11)")
    # A mixed population: 10 laptops, 5 phones with a tenth the patience.
    weights = [140_000.0] * 10 + [14_000.0] * 5
    game = ClientGame(weights, mu=1100.0)
    rows = []
    for difficulty in (1_000.0, 10_000.0, 20_000.0, 60_000.0, 120_000.0):
        solution = game.solve(difficulty)
        rows.append((difficulty, solution.active_users,
                     f"{solution.total_rate:.2f}"))
    print(render_table(
        ["difficulty (hashes)", "active users (of 15)", "x_bar (req/s)"],
        rows))
    print("Past the phones' valuation the low-w users drop out; the"
          " laptops keep paying.\n")


def provider_curve() -> None:
    print("## The provider's objective is single-peaked (Eq. 13–15)")
    game = ClientGame.homogeneous(15, 140630.0, 1100.0)
    provider = StackelbergGame(game)
    optimum = provider.solve_relaxed()
    sweep = provider.sweep(np.geomspace(10, game.max_feasible_difficulty
                                        * 0.98, 12))
    print(render_table(
        ["difficulty", "x_bar*", "objective l*x_bar"],
        [(f"{d:.0f}", f"{x:.3f}", f"{o:.0f}") for d, x, o in sweep]))
    print(f"continuous optimum: l* = {optimum.difficulty:.0f} hashes "
          f"(objective {optimum.objective:.0f})")


def main() -> None:
    alpha_sweep()
    clientele_sweep()
    dropout_demo()
    provider_curve()


if __name__ == "__main__":
    main()
