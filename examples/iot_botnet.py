#!/usr/bin/env python3
"""Experiment 6 as a story: what puzzles do to an IoT botnet.

Profiles the paper's four Raspberry Pi bots (Table 1), derives each
device's ceiling as a connection-flood bot at the Nash difficulty, and
then actually runs the flood with Pi-class bot CPUs to show the botnet's
effective rate collapse — the "removing the low-cost assets from the
attacker's arsenal" claim.

Run:  python examples/iot_botnet.py
"""

from repro.experiments.exp6_iot import iot_botnet_scenario, \
    iot_profile_table
from repro.experiments.report import render_table
from repro.experiments.scenario import ScenarioConfig


def main() -> None:
    print("## Table 1: Raspberry Pi performance profiles")
    rows = iot_profile_table()
    print(render_table(
        ["device", "description", "hash rate (/s)",
         "hashes in 400 ms", "Nash solves/s"],
        [(r.device, r.description, f"{r.average_hashing_rate:.0f}",
          f"{r.hashes_in_400ms:.0f}", f"{r.nash_solves_per_second:.2f}")
         for r in rows]))
    print("\nNo Pi can complete even one Nash-difficulty handshake per"
          "\nsecond; a 10-device IoT botnet tops out near "
          f"{sum(r.nash_solves_per_second for r in rows) * 2.5:.0f} cps "
          "regardless of its bandwidth.\n")

    print("## Running the connection flood with Pi-class bots ...")
    result = iot_botnet_scenario(ScenarioConfig(time_scale=0.05))
    print(render_table(
        ["metric", "value"],
        [("configured attack rate (pps)",
          f"{result.config.attack_rate * result.config.n_attackers:.0f}"),
         ("measured attack rate (pps)",
          f"{result.attacker_measured_rate():.0f}"),
         ("effective rate, whole attack (cps)",
          f"{result.attacker_established_rate():.1f}"),
         ("effective rate, steady state (cps)",
          f"{result.attacker_steady_state_rate():.1f}"),
         ("client completion %",
          f"{result.client_completion_percent():.1f}")]))
    print("\nThe paper's conclusion: to attack a puzzle-protected server"
          "\nthe botmaster must recruit real computers — the cheap IoT"
          "\nfleet no longer works. (§6.6: 'an attacker recruiting IoT"
          "\ndevices needs to employ much more resources'.)")


if __name__ == "__main__":
    main()
